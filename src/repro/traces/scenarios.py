"""The paper's named experiment scenarios, as one-call presets.

Each preset reproduces one of the motion regimes in Section VI-B,
returning a sensed :class:`FoVTrace` (noise applied) or, with
``noise=SensorNoiseModel.ideal()``, the theoretical trace:

* :func:`rotation_scenario`  -- Fig. 5(a): pivot in place;
* :func:`translation_scenario` -- Figs. 4 / 5(b): straight line with the
  camera at theta_p = 0 or 90 deg to the motion;
* :func:`bike_turn_scenario` -- Fig. 5(c): ride with a right turn;
* :func:`walk_scenario` / :func:`drive_scenario` -- generic pedestrian /
  vehicle captures used by the examples and integration tests.

The shared anchor :data:`CITY_ORIGIN` is the Tsinghua campus area the
authors would have walked.
"""

from __future__ import annotations

import numpy as np

from repro.core.fov import FoVTrace
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.traces.noise import SensorNoiseModel
from repro.traces.trajectory import Trajectory
from repro.traces.walkers import bike_ride_with_turn, rotate_in_place, straight_line

__all__ = [
    "CITY_ORIGIN",
    "rotation_scenario",
    "translation_scenario",
    "bike_turn_scenario",
    "walk_scenario",
    "drive_scenario",
    "stadium_scenario",
]

#: Anchor of the local plane for all presets (Beijing, Tsinghua area).
CITY_ORIGIN = GeoPoint(lat=40.003, lng=116.326)


def _sense(trajectory: Trajectory, noise: SensorNoiseModel | None,
           seed: int, projection: LocalProjection | None) -> FoVTrace:
    model = noise if noise is not None else SensorNoiseModel()
    rng = np.random.default_rng(seed)
    return model.apply(trajectory, CITY_ORIGIN, rng, projection=projection)


def rotation_scenario(rate_deg_s: float = 12.0, duration_s: float = 30.0,
                      fps: float = 30.0, noise: SensorNoiseModel | None = None,
                      seed: int = 0,
                      projection: LocalProjection | None = None) -> FoVTrace:
    """Fig. 5(a): the user stands still and pans the camera."""
    traj = rotate_in_place(rate_deg_s=rate_deg_s, duration_s=duration_s, fps=fps)
    return _sense(traj, noise, seed, projection)


def translation_scenario(theta_p: float = 0.0, speed_mps: float = 1.4,
                         duration_s: float = 60.0, fps: float = 30.0,
                         noise: SensorNoiseModel | None = None, seed: int = 0,
                         projection: LocalProjection | None = None) -> FoVTrace:
    """Figs. 4 / 5(b): straight-line motion, camera offset ``theta_p``.

    ``theta_p = 0`` films forward (parallel translation); ``theta_p =
    90`` films sideways (perpendicular translation).  The camera moves
    *away* from the initially filmed scene relative to its optical axis
    when filming backward; the similarity model is symmetric in that
    regard, so forward suffices.
    """
    traj = straight_line(speed_mps=speed_mps, duration_s=duration_s, fps=fps,
                         heading_deg=0.0, camera_offset_deg=theta_p)
    return _sense(traj, noise, seed, projection)


def bike_turn_scenario(speed_mps: float = 4.0, leg_s: float = 15.0,
                       turn_s: float = 2.0, fps: float = 30.0,
                       noise: SensorNoiseModel | None = None, seed: int = 0,
                       projection: LocalProjection | None = None) -> FoVTrace:
    """Fig. 5(c): residential bike ride with a right turn halfway."""
    traj = bike_ride_with_turn(speed_mps=speed_mps, leg_s=leg_s,
                               turn_s=turn_s, turn_deg=90.0, fps=fps)
    return _sense(traj, noise, seed, projection)


def walk_scenario(duration_s: float = 60.0, fps: float = 30.0,
                  noise: SensorNoiseModel | None = None, seed: int = 0,
                  projection: LocalProjection | None = None) -> FoVTrace:
    """A pedestrian filming forward at walking speed (quickstart trace)."""
    traj = straight_line(speed_mps=1.4, duration_s=duration_s, fps=fps,
                         heading_deg=30.0, camera_offset_deg=0.0)
    return _sense(traj, noise, seed, projection)


def stadium_scenario(n_cameras: int = 20, stage_xy=(0.0, 0.0),
                     ring_radius_m: float = 60.0, duration_s: float = 30.0,
                     fps: float = 5.0, facing_fraction: float = 0.5,
                     noise: SensorNoiseModel | None = None, seed: int = 0,
                     projection: LocalProjection | None = None
                     ) -> list[tuple[FoVTrace, bool]]:
    """Section V-B's grandstand example: a ring of cameras around a stage.

    ``n_cameras`` phones stand on a circle of radius ``ring_radius_m``
    around ``stage_xy``; a ``facing_fraction`` of them film the stage
    (the match), the rest film outward (Chancellor Merkel on the
    grandstand).  Returns ``(sensed_trace, faces_stage)`` pairs -- the
    orientation-filter tests use the boolean as ground truth.
    """
    if not 0.0 <= facing_fraction <= 1.0:
        raise ValueError("facing_fraction must be in [0, 1]")
    if n_cameras < 1:
        raise ValueError("need at least one camera")
    rng = np.random.default_rng(seed)
    model = noise if noise is not None else SensorNoiseModel()
    proj = projection or LocalProjection(CITY_ORIGIN)
    sx, sy = float(stage_xy[0]), float(stage_xy[1])
    n_facing = int(round(facing_fraction * n_cameras))
    out: list[tuple[FoVTrace, bool]] = []
    for k in range(n_cameras):
        phi = 360.0 * k / n_cameras
        x = sx + ring_radius_m * np.sin(np.radians(phi))
        y = sy + ring_radius_m * np.cos(np.radians(phi))
        faces_stage = k < n_facing
        azimuth = (phi + 180.0) % 360.0 if faces_stage else phi
        # Spectators sway a little but hold their aim.
        traj = rotate_in_place(rate_deg_s=float(rng.uniform(-1.0, 1.0)),
                               duration_s=duration_s, fps=fps,
                               start_azimuth_deg=azimuth, position=(x, y))
        trace = model.apply(traj, CITY_ORIGIN, rng, projection=proj)
        out.append((trace, faces_stage))
    return out


def drive_scenario(speed_mps: float = 12.0, duration_s: float = 60.0,
                   fps: float = 30.0, noise: SensorNoiseModel | None = None,
                   seed: int = 0,
                   projection: LocalProjection | None = None) -> FoVTrace:
    """Dash-cam style capture down a street (the paper's R = 100 m case)."""
    traj = straight_line(speed_mps=speed_mps, duration_s=duration_s, fps=fps,
                         heading_deg=0.0, camera_offset_deg=0.0)
    return _sense(traj, noise, seed, projection)
