"""Ideal (noise-free) motion: the ground truth behind a sensor trace.

A :class:`Trajectory` is the true camera path in local metres --
timestamps, positions and camera azimuths -- before GPS/compass error
is applied.  It is what the world renderer consumes (pixels do not
jitter with GPS error; sensors do), and what the noise models perturb
to produce the :class:`repro.core.fov.FoVTrace` the system ingests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fov import FoVTrace
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection

__all__ = ["Trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """True camera motion sampled at frame instants.

    Attributes
    ----------
    t : ndarray, shape (n,)
        Strictly increasing timestamps, seconds.
    xy : ndarray, shape (n, 2)
        Positions in local metres (x=East, y=North).
    azimuth : ndarray, shape (n,)
        Camera compass azimuth per frame, degrees in ``[0, 360)``.
    """

    t: np.ndarray
    xy: np.ndarray
    azimuth: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "t", np.ascontiguousarray(self.t, dtype=float))
        object.__setattr__(self, "xy", np.ascontiguousarray(self.xy, dtype=float))
        object.__setattr__(
            self, "azimuth",
            np.mod(np.ascontiguousarray(self.azimuth, dtype=float), 360.0),
        )
        n = self.t.shape[0]
        if n == 0:
            raise ValueError("a trajectory needs at least one sample")
        if self.xy.shape != (n, 2):
            raise ValueError(f"xy shape {self.xy.shape} != ({n}, 2)")
        if self.azimuth.shape != (n,):
            raise ValueError(f"azimuth shape {self.azimuth.shape} != ({n},)")
        if n > 1 and not np.all(np.diff(self.t) > 0):
            raise ValueError("timestamps must be strictly increasing")

    def __len__(self) -> int:
        return int(self.t.shape[0])

    @property
    def duration(self) -> float:
        return float(self.t[-1] - self.t[0])

    def travel_headings(self) -> np.ndarray:
        """Per-sample direction of travel (degrees); repeats the last
        segment's heading for the final sample, 0 where stationary."""
        d = np.diff(self.xy, axis=0)
        heading = np.degrees(np.arctan2(d[:, 0], d[:, 1]))
        heading = np.where(np.linalg.norm(d, axis=-1) < 1e-12, 0.0, heading)
        if len(self) == 1:
            return np.zeros(1)
        return np.mod(np.concatenate([heading, heading[-1:]]), 360.0)

    def path_length(self) -> float:
        """Total distance travelled, metres."""
        if len(self) < 2:
            return 0.0
        return float(np.sum(np.linalg.norm(np.diff(self.xy, axis=0), axis=-1)))

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Append another trajectory (its clock must start after ours ends)."""
        if other.t[0] <= self.t[-1]:
            raise ValueError("concatenated trajectory must start later")
        return Trajectory(
            t=np.concatenate([self.t, other.t]),
            xy=np.concatenate([self.xy, other.xy]),
            azimuth=np.concatenate([self.azimuth, other.azimuth]),
        )

    def shifted(self, dt: float = 0.0, dxy=(0.0, 0.0)) -> "Trajectory":
        """Copy displaced in time and/or space (fleet generation)."""
        return Trajectory(
            t=self.t + dt,
            xy=self.xy + np.asarray(dxy, dtype=float),
            azimuth=self.azimuth.copy(),
        )

    def to_fov_trace(self, origin: GeoPoint,
                     projection: LocalProjection | None = None) -> FoVTrace:
        """Lift the *ideal* motion to GPS space (no sensor noise).

        ``origin`` anchors the local plane at a real-world location;
        pass an existing ``projection`` to place several trajectories in
        one shared frame.
        """
        proj = projection or LocalProjection(origin)
        return FoVTrace.from_local(self.t, self.xy, self.azimuth, proj)
