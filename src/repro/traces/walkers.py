"""Ideal motion generators: walking, driving, rotating, wandering.

Each generator returns a noise-free :class:`Trajectory` sampled at the
video frame rate.  The paper's three experiment motions map to:

* ``rotate_in_place`` -- Fig. 5(a), the user pivots holding the phone;
* ``straight_line`` with ``camera_offset`` 0 or 90 -- Figs. 4 / 5(b),
  walking or driving with the camera along or across the motion;
* ``bike_ride_with_turn`` -- Fig. 5(c), straight, a right turn, straight.

``random_waypoint`` is the classic mobility model used to populate
citywide datasets with background providers.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.angles import normalize_angle
from repro.geometry.vec import heading_to_unit
from repro.traces.trajectory import Trajectory

__all__ = [
    "straight_line",
    "rotate_in_place",
    "random_waypoint",
    "bike_ride_with_turn",
]


def _timeline(duration_s: float, fps: float, t0: float) -> np.ndarray:
    if duration_s <= 0 or fps <= 0:
        raise ValueError("duration and fps must be positive")
    n = max(2, int(round(duration_s * fps)) + 1)
    return t0 + np.arange(n) / fps


def straight_line(speed_mps: float = 1.4, duration_s: float = 30.0,
                  fps: float = 30.0, heading_deg: float = 0.0,
                  camera_offset_deg: float = 0.0,
                  start_xy=(0.0, 0.0), t0: float = 0.0) -> Trajectory:
    """Constant-velocity motion with the camera at a fixed offset.

    ``camera_offset_deg`` is the angle from the travel heading to the
    camera azimuth: 0 films forward (the paper's theta_p = 0 walk), 90
    films out the side window (theta_p = 90).
    """
    t = _timeline(duration_s, fps, t0)
    u = heading_to_unit(heading_deg)
    s = speed_mps * (t - t[0])
    xy = np.asarray(start_xy, dtype=float) + s[:, None] * u
    azimuth = np.full(t.shape, normalize_angle(heading_deg + camera_offset_deg))
    return Trajectory(t=t, xy=xy, azimuth=azimuth)


def rotate_in_place(rate_deg_s: float = 12.0, duration_s: float = 30.0,
                    fps: float = 30.0, start_azimuth_deg: float = 0.0,
                    position=(0.0, 0.0), t0: float = 0.0) -> Trajectory:
    """Pivot at a fixed spot, panning the camera at a constant rate."""
    t = _timeline(duration_s, fps, t0)
    azimuth = normalize_angle(start_azimuth_deg + rate_deg_s * (t - t[0]))
    xy = np.tile(np.asarray(position, dtype=float), (t.shape[0], 1))
    return Trajectory(t=t, xy=xy, azimuth=np.atleast_1d(azimuth))


def bike_ride_with_turn(speed_mps: float = 4.0, leg_s: float = 15.0,
                        turn_s: float = 2.0, turn_deg: float = 90.0,
                        fps: float = 30.0, heading_deg: float = 0.0,
                        start_xy=(0.0, 0.0), t0: float = 0.0) -> Trajectory:
    """Straight leg, a smooth turn (default 90 deg right), straight leg.

    The camera films forward throughout, so the azimuth sweeps with the
    handlebars during the turn -- producing the four-quadrant similarity
    pattern of Fig. 5(c).
    """
    if leg_s <= 0 or turn_s <= 0:
        raise ValueError("leg and turn durations must be positive")
    t = _timeline(2 * leg_s + turn_s, fps, t0)
    rel = t - t[0]
    # Heading as a function of time: constant, linear ramp, constant.
    heading = np.piecewise(
        rel,
        [rel < leg_s, (rel >= leg_s) & (rel < leg_s + turn_s), rel >= leg_s + turn_s],
        [
            lambda _: heading_deg,
            lambda x: heading_deg + turn_deg * (x - leg_s) / turn_s,
            lambda _: heading_deg + turn_deg,
        ],
    )
    # Integrate velocity along the instantaneous heading.
    u = heading_to_unit(heading)              # (n, 2)
    dt = np.diff(t)
    steps = speed_mps * dt[:, None] * u[:-1]
    xy = np.vstack([np.zeros((1, 2)), np.cumsum(steps, axis=0)])
    xy = xy + np.asarray(start_xy, dtype=float)
    return Trajectory(t=t, xy=xy, azimuth=normalize_angle(heading))


def random_waypoint(rng: np.random.Generator, area_m: float = 1000.0,
                    speed_range=(0.8, 2.0), pause_range=(0.0, 5.0),
                    duration_s: float = 60.0, fps: float = 1.0,
                    camera_offset_deg: float = 0.0,
                    t0: float = 0.0) -> Trajectory:
    """Random-waypoint mobility inside a square of side ``area_m``.

    Sampled at ``fps`` (1 Hz default -- GPS rate; the segmenter does not
    need per-frame fixes for background providers).  The camera points
    along travel plus a fixed offset and holds its last azimuth while
    paused.
    """
    t = _timeline(duration_s, fps, t0)
    n = t.shape[0]
    xy = np.empty((n, 2))
    azimuth = np.empty(n)
    pos = rng.uniform(0.0, area_m, size=2)
    target = rng.uniform(0.0, area_m, size=2)
    speed = float(rng.uniform(*speed_range))
    pause_left = 0.0
    current_azimuth = float(rng.uniform(0.0, 360.0))
    for i in range(n):
        xy[i] = pos
        if i == n - 1:
            azimuth[i] = current_azimuth
            break
        dt = t[i + 1] - t[i]
        if pause_left > 0.0:
            azimuth[i] = current_azimuth   # hold the last view while paused
            pause_left = max(0.0, pause_left - dt)
            continue
        to_target = target - pos
        dist = float(np.hypot(*to_target))
        step = speed * dt
        heading = float(np.degrees(np.arctan2(to_target[0], to_target[1])))
        current_azimuth = float(normalize_angle(heading + camera_offset_deg))
        azimuth[i] = current_azimuth       # the step leaving this sample
        if step >= dist:
            pos = target.copy()
            target = rng.uniform(0.0, area_m, size=2)
            speed = float(rng.uniform(*speed_range))
            pause_left = float(rng.uniform(*pause_range))
        else:
            pos = pos + to_target / dist * step
    return Trajectory(t=t, xy=xy, azimuth=azimuth)
