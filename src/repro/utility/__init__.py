"""Section VII: video utility and the budgeted incentive mechanism.

A video's utility for a query is the area of its *utility rectangle* --
(angular coverage) x (temporal coverage) -- inside the query's global
``360 deg x (t_e - t_s)`` frame; a set's utility is the area of the
union of its rectangles, a non-negative monotone submodular function.
:mod:`repro.utility.incentive` implements the classic cost-benefit
greedy selection under a reserved budget, with the brute-force optimum
for verification at small scale.
"""

from repro.utility.coverage import (
    fov_utility_rectangles,
    marginal_utility,
    set_utility,
    single_utility,
)
from repro.utility.incentive import (
    PricedVideo,
    SelectionResult,
    brute_force_selection,
    greedy_budgeted_selection,
    random_selection,
)

__all__ = [
    "fov_utility_rectangles",
    "set_utility",
    "single_utility",
    "marginal_utility",
    "PricedVideo",
    "SelectionResult",
    "greedy_budgeted_selection",
    "brute_force_selection",
    "random_selection",
]
