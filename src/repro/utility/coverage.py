"""Utility rectangles: angular x temporal coverage (paper Section VII).

For a query ``Q`` spanning ``[t_s, t_e]`` the global utility frame is
the rectangle ``[0, 360) x [t_s, t_e]``.  A representative FoV with
orientation ``theta`` covers the angular interval ``(theta - alpha,
theta + alpha)`` during its own time interval clipped to the query's;
its utility is that sub-rectangle's area.  Because the angular axis is
circular, an interval that wraps past 360 splits into two rectangles --
handled here so the union area stays exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.geometry.angles import normalize_angle
from repro.geometry.polygon import rectangle_union_area

__all__ = [
    "fov_utility_rectangles",
    "single_utility",
    "set_utility",
    "marginal_utility",
    "global_utility",
]


def global_utility(query: Query) -> float:
    """The query's total utility frame area: ``360 * (t_e - t_s)``."""
    return 360.0 * (query.t_end - query.t_start)


def fov_utility_rectangles(fov: RepresentativeFoV, camera: CameraModel,
                           query: Query) -> list[tuple[float, float, float, float]]:
    """Utility rectangle(s) of one FoV inside the query frame.

    Returns 0, 1 or 2 ``(angle_lo, t_lo, angle_hi, t_hi)`` rectangles:
    empty when the FoV's time interval misses the query's, two when the
    angular interval wraps across 0/360.
    """
    t_lo = max(fov.t_start, query.t_start)
    t_hi = min(fov.t_end, query.t_end)
    if t_hi <= t_lo:
        return []
    a_lo = normalize_angle(fov.theta - camera.half_angle)
    a_hi = a_lo + camera.viewing_angle
    if a_hi <= 360.0:
        return [(float(a_lo), t_lo, float(a_hi), t_hi)]
    return [
        (float(a_lo), t_lo, 360.0, t_hi),
        (0.0, t_lo, float(a_hi - 360.0), t_hi),
    ]


def single_utility(fov: RepresentativeFoV, camera: CameraModel,
                   query: Query) -> float:
    """Utility of one FoV: area of its clipped rectangle(s)."""
    return float(sum((r[2] - r[0]) * (r[3] - r[1])
                     for r in fov_utility_rectangles(fov, camera, query)))


def set_utility(fovs, camera: CameraModel, query: Query) -> float:
    """Utility ``U(S)`` of a set: area of the union of its rectangles.

    Non-negative, monotone and submodular (rectangles union), as the
    paper observes; the property tests verify all three numerically.
    """
    rects = []
    for fov in fovs:
        for a_lo, t_lo, a_hi, t_hi in fov_utility_rectangles(fov, camera, query):
            rects.append((a_lo, t_lo, a_hi, t_hi))
    if not rects:
        return 0.0
    return rectangle_union_area(np.asarray(rects, dtype=float))


def marginal_utility(fov: RepresentativeFoV, selected, camera: CameraModel,
                     query: Query) -> float:
    """``U(S + {f}) - U(S)``: the greedy selection's scoring function."""
    base = set_utility(selected, camera, query)
    return set_utility(list(selected) + [fov], camera, query) - base
