"""Budgeted incentive mechanism over the submodular utility.

Section VII sketches an incentive scheme for the "zero arrival-departure
interval" case with a reserved budget: the inquirer pays providers for
segments, maximising covered utility subject to total cost <= budget --
budgeted maximum coverage.  The classic treatment:

* :func:`greedy_budgeted_selection` -- cost-benefit greedy, taking the
  better of (greedy solution, best single affordable item), which
  guarantees a ``(1 - 1/e) / 2`` approximation for monotone submodular
  utility (Khuller-Moss-Naor / Leskovec et al.);
* :func:`brute_force_selection` -- the exact optimum by subset
  enumeration, used by tests to check the guarantee at small scale;
* :func:`random_selection` -- the ablation's naive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.utility.coverage import set_utility

__all__ = [
    "PricedVideo",
    "SelectionResult",
    "greedy_budgeted_selection",
    "brute_force_selection",
    "random_selection",
]


@dataclass(frozen=True)
class PricedVideo:
    """A candidate segment with the provider's asking price."""

    fov: RepresentativeFoV
    cost: float

    def __post_init__(self):
        if self.cost <= 0:
            raise ValueError("cost must be positive")


@dataclass(frozen=True)
class SelectionResult:
    """Chosen set with its utility and spend."""

    chosen: tuple[PricedVideo, ...]
    utility: float
    spent: float


def _utility_of(videos, camera: CameraModel, query: Query) -> float:
    return set_utility([v.fov for v in videos], camera, query)


def greedy_budgeted_selection(candidates: list[PricedVideo], budget: float,
                              camera: CameraModel, query: Query) -> SelectionResult:
    """Cost-benefit greedy with the best-single-item safeguard."""
    if budget <= 0:
        raise ValueError("budget must be positive")
    remaining = list(candidates)
    chosen: list[PricedVideo] = []
    spent = 0.0
    current = 0.0
    while remaining:
        best_i = -1
        best_ratio = 0.0
        best_util = current
        for i, cand in enumerate(remaining):
            if spent + cand.cost > budget:
                continue
            util = _utility_of([*chosen, cand], camera, query)
            ratio = (util - current) / cand.cost
            if ratio > best_ratio:
                best_i, best_ratio, best_util = i, ratio, util
        if best_i < 0:
            break
        chosen.append(remaining.pop(best_i))
        spent += chosen[-1].cost
        current = best_util

    # Safeguard: the single affordable item with the highest utility.
    best_single = None
    best_single_util = 0.0
    for cand in candidates:
        if cand.cost <= budget:
            u = _utility_of([cand], camera, query)
            if u > best_single_util:
                best_single, best_single_util = cand, u
    if best_single is not None and best_single_util > current:
        return SelectionResult(chosen=(best_single,), utility=best_single_util,
                               spent=best_single.cost)
    return SelectionResult(chosen=tuple(chosen), utility=current, spent=spent)


def brute_force_selection(candidates: list[PricedVideo], budget: float,
                          camera: CameraModel, query: Query) -> SelectionResult:
    """Exact optimum by enumeration; exponential -- tests only."""
    if len(candidates) > 16:
        raise ValueError("brute force limited to 16 candidates")
    best = SelectionResult(chosen=(), utility=0.0, spent=0.0)
    for k in range(1, len(candidates) + 1):
        for subset in combinations(candidates, k):
            cost = sum(v.cost for v in subset)
            if cost > budget:
                continue
            util = _utility_of(list(subset), camera, query)
            if util > best.utility:
                best = SelectionResult(chosen=subset, utility=util, spent=cost)
    return best


def random_selection(candidates: list[PricedVideo], budget: float,
                     camera: CameraModel, query: Query,
                     rng: np.random.Generator) -> SelectionResult:
    """Pick affordable items in random order until the budget runs out."""
    order = rng.permutation(len(candidates))
    chosen: list[PricedVideo] = []
    spent = 0.0
    for i in order:
        cand = candidates[int(i)]
        if spent + cand.cost <= budget:
            chosen.append(cand)
            spent += cand.cost
    return SelectionResult(chosen=tuple(chosen),
                           utility=_utility_of(chosen, camera, query),
                           spent=spent)
