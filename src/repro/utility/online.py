"""Online budgeted selection: the paper's zero arrival-departure case.

Section VII frames the incentive interaction as a *zero
arrival-departure interval* mechanism: each provider shows up once,
quotes a price, and the server must accept or reject immediately --
no revisiting.  The classic treatment is threshold-based: accept a
candidate iff its marginal utility per unit cost clears a density
threshold, while the budget lasts.  With a submodular objective this
family gives constant-factor competitive ratios; here the threshold is
either fixed or adaptively estimated from a rejected prefix
(secretary-style), and the ablation bench measures the competitive
ratio against the offline greedy on identical instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.camera import CameraModel
from repro.core.query import Query
from repro.utility.coverage import global_utility, set_utility
from repro.utility.incentive import PricedVideo, SelectionResult

__all__ = ["OnlineSelection", "online_threshold_selection"]


@dataclass
class OnlineSelection:
    """Streaming selection state; feed candidates in arrival order."""

    budget: float
    camera: CameraModel
    query: Query
    density_threshold: float
    chosen: list[PricedVideo] = field(default_factory=list)
    spent: float = 0.0
    utility: float = 0.0
    seen: int = 0

    def __post_init__(self):
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.density_threshold < 0:
            raise ValueError("density threshold must be non-negative")

    def offer(self, candidate: PricedVideo) -> bool:
        """One take-it-or-leave-it arrival; returns the decision."""
        self.seen += 1
        if self.spent + candidate.cost > self.budget:
            return False
        new_utility = set_utility(
            [v.fov for v in self.chosen] + [candidate.fov],
            self.camera, self.query)
        gain = new_utility - self.utility
        if gain / candidate.cost < self.density_threshold:
            return False
        self.chosen.append(candidate)
        self.spent += candidate.cost
        self.utility = new_utility
        return True

    def result(self) -> SelectionResult:
        """The selection made so far as a SelectionResult."""
        return SelectionResult(chosen=tuple(self.chosen),
                               utility=self.utility, spent=self.spent)


def online_threshold_selection(arrivals: list[PricedVideo], budget: float,
                               camera: CameraModel, query: Query,
                               density_threshold: float | None = None,
                               sample_fraction: float = 0.25
                               ) -> SelectionResult:
    """Run the online mechanism over an arrival sequence.

    Parameters
    ----------
    arrivals : list of PricedVideo
        Candidates in arrival order (the order *is* the adversary).
    budget : float
    density_threshold : float, optional
        Utility-per-cost floor for acceptance.  When omitted, the first
        ``sample_fraction`` of arrivals is observed-and-rejected and the
        threshold is set so the remaining budget would be exhausted at
        the sample's mean density (the standard sample-and-price trick).
    """
    if density_threshold is None:
        n_sample = max(1, int(len(arrivals) * sample_fraction)) \
            if arrivals else 0
        sample = arrivals[:n_sample]
        rest = arrivals[n_sample:]
        if sample:
            densities = []
            for cand in sample:
                u = set_utility([cand.fov], camera, query)
                densities.append(u / cand.cost)
            densities.sort(reverse=True)
            # Price at the density of the better half of the sample:
            # strict enough to skip junk, loose enough to spend.
            k = max(0, len(densities) // 2 - 1)
            density_threshold = densities[k] * 0.5
        else:
            density_threshold = 0.0
        state = OnlineSelection(budget=budget, camera=camera, query=query,
                                density_threshold=density_threshold)
        state.seen = len(sample)     # the observed prefix was rejected
        for cand in rest:
            state.offer(cand)
        return state.result()

    state = OnlineSelection(budget=budget, camera=camera, query=query,
                            density_threshold=density_threshold)
    for cand in arrivals:
        state.offer(cand)
    return state.result()
