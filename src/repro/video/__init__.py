"""Video-to-video retrieval: trajectory similarity and POI discovery.

The point-query system answers ``Q = (p, r, [t_s, t_e])``; this package
composes those answers into a *sequence-level* workload: given a query
video's trajectory of representative FoVs, find the stored videos
sharing the largest common view (Ding, Yang & Nam's LCV measure) or
the best monotonic alignment (a DTW-style score), and aggregate what
the harvested crowd actually observed into top-k points of interest
(Lu & Colmenares).

Pipeline (``docs/VIDEO_RETRIEVAL.md``):

1. **harvest** -- the query trajectory's FoVs go out as ONE batched
   ``query_many`` call against the (packed, optionally sharded)
   engine; hits are grouped per stored ``video_id``;
2. **score** -- each candidate video's harvested segments form an
   asymmetric Eq. 10 similarity matrix against the query trajectory
   (``cross_similarity``), reduced by :func:`lcv_run_length` /
   :func:`alignment_score`;
3. **rank** -- candidates order under the canonical
   ``(-score, video_id)`` total order, bit-identical between dynamic,
   packed and sharded execution;
4. **POI** -- harvested coverage rasterises into most-observed cells,
   weighted by the Section VII submodular utility.
"""

from repro.video.poi import POICell, discover_pois
from repro.video.retrieval import (
    SCORERS,
    VideoMatch,
    VideoQuery,
    VideoQueryResult,
    VideoQueryStats,
    retrieve_videos,
)
from repro.video.scoring import (
    alignment_score,
    alignment_score_ref,
    lcv_run_length,
    lcv_run_length_ref,
    lcv_score,
)

__all__ = [
    "POICell",
    "discover_pois",
    "SCORERS",
    "VideoMatch",
    "VideoQuery",
    "VideoQueryResult",
    "VideoQueryStats",
    "retrieve_videos",
    "alignment_score",
    "alignment_score_ref",
    "lcv_run_length",
    "lcv_run_length_ref",
    "lcv_score",
]
