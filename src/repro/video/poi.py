"""POI discovery: where did the harvested crowd actually look?

The aggregate dual of video retrieval (Lu & Colmenares): instead of
ranking whole videos, rasterise the harvested segments' viewing
sectors over the area (:func:`repro.eval.coverage_map.build_coverage_map`)
and surface the top-k most-observed cell centres.  Each cell also
carries the paper's Section VII submodular utility
(:mod:`repro.utility.coverage`) of the segments covering it --
normalised angular x temporal coverage in ``[0, 1]`` -- so a cell seen
by many near-identical FoVs ranks below one seen from diverse angles
at equal observer count.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.eval.coverage_map import build_coverage_map
from repro.geo.earth import LocalProjection
from repro.geometry.sector import sector_contains_points
from repro.utility.coverage import global_utility, set_utility

__all__ = ["POICell", "discover_pois"]


class POICell(NamedTuple):
    """One most-observed cell centre.

    ``x, y`` are local metres in the projection the discovery ran
    under; ``lat, lng`` the same point in GPS degrees.  ``observers``
    counts segments whose sector covers the centre; ``utility`` their
    normalised Section VII set utility in ``[0, 1]``.
    """

    lat: float
    lng: float
    x: float
    y: float
    observers: int
    utility: float


def discover_pois(fovs: list[RepresentativeFoV], camera: CameraModel,
                  projection: LocalProjection | None = None,
                  cell_m: float = 25.0, top_k: int = 5,
                  t_window: tuple[float, float] | None = None
                  ) -> list[POICell]:
    """Top-k most-observed cells of a harvested segment set.

    Deterministic: cells order by coverage count descending with the
    raster's stable cell order breaking ties.  Zero-coverage cells are
    never reported, so fewer than ``top_k`` rows may return.  The
    utility is computed over exactly the covering segments, against a
    virtual query spanning ``t_window`` (default: the segments' own
    time span).
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if not fovs:
        return []
    if projection is None:
        projection = LocalProjection(fovs[0].point)
    active = [f for f in fovs
              if t_window is None
              or (f.t_end >= t_window[0] and f.t_start <= t_window[1])]
    if not active:
        return []
    xy = projection.to_local_arrays([f.lat for f in active],
                                    [f.lng for f in active])
    pad = camera.radius
    extent = (float(xy[:, 0].min() - pad), float(xy[:, 1].min() - pad),
              float(xy[:, 0].max() + pad), float(xy[:, 1].max() + pad))
    cmap = build_coverage_map(active, projection, camera, extent,
                              cell_m=cell_m, t_window=t_window)
    if t_window is None:
        t_window = (min(f.t_start for f in active),
                    max(f.t_end for f in active))
    azimuths = np.array([f.theta for f in active], dtype=float)
    frame = Query(t_start=t_window[0], t_end=t_window[1],
                  center=projection.to_geo(*cmap.hotspots(1)[0][:2]),
                  radius=max(cell_m, 1.0))
    denom = global_utility(frame)
    out: list[POICell] = []
    for x, y, count in cmap.hotspots(top_k):
        if count <= 0:
            break  # hotspots are count-descending; the rest are empty too
        covered = sector_contains_points(
            xy, azimuths, camera.half_angle, camera.radius,
            np.array([[x, y]], dtype=float))[:, 0]
        observers = [f for f, hit in zip(active, covered.tolist()) if hit]
        util = (set_utility(observers, camera, frame) / denom
                if denom > 0.0 else 0.0)
        point = projection.to_geo(x, y)
        out.append(POICell(lat=point.lat, lng=point.lng, x=x, y=y,
                           observers=int(count), utility=float(util)))
    return out
