"""The harvest -> score -> rank pipeline for video-to-video retrieval.

Engine-agnostic: :func:`retrieve_videos` takes any ``query_many``
callable -- :meth:`repro.core.server.CloudServer.query_many` or the
sharded router's -- and the guarantee it needs from it is exactly the
one the engine-parity suite already pins for point queries: identical
ranked lists across dynamic, packed and sharded execution.  Harvest
grouping, similarity scoring and the canonical ``(-score, video_id)``
ranking are all deterministic functions of those lists, so the video
top-k inherits the bit-identical parity for free
(``docs/VIDEO_RETRIEVAL.md`` spells out the argument).

The harvest is ONE batched call: every representative FoV of the query
trajectory becomes one point query, and the whole batch goes through
the engine's vectorised ``execute_many`` funnel in a single pass --
the benchmark gates this at >= 5x the per-segment sequential loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple

import numpy as np

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query, QueryResult
from repro.core.similarity import cross_similarity
from repro.geo.earth import LocalProjection
from repro.net.clock import default_timer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.video.scoring import alignment_score, lcv_run_length

__all__ = [
    "SCORERS",
    "VideoQuery",
    "VideoMatch",
    "VideoQueryResult",
    "VideoQueryStats",
    "retrieve_videos",
]

#: Sequence scorers a :class:`VideoQuery` may name.
SCORERS = ("lcv", "dtw")


@dataclass(frozen=True)
class VideoQuery:
    """A query video's trajectory plus retrieval parameters.

    Hashable (all fields are), so the request itself is its cache key
    -- the epoch-tagged result caches store it exactly like a point
    query's key tuple.

    Parameters
    ----------
    segments : tuple of RepresentativeFoV
        The query trajectory, in segment order (at least one).
    t_start, t_end : float
        Time window every harvest query carries; stored segments
        outside it are invisible to the harvest.
    radius : float
        Harvest radius in metres around each query segment.
    top_k : int
        How many ranked videos to return.
    scorer : {"lcv", "dtw"}
        Sequence reduction: LCV run-fraction or the DTW-style
        alignment score (:mod:`repro.video.scoring`).
    sim_threshold : float
        Per-pair similarity threshold the LCV run must clear (also
        reported alongside DTW scores), in ``[0, 1]``.
    per_segment_top_n : int
        ``top_n`` of each harvest point query -- the candidate budget
        per query segment.
    exclude : frozenset of str
        Video ids invisible to the harvest (typically the query
        video's own id for leave-one-out retrieval).
    """

    segments: tuple[RepresentativeFoV, ...]
    t_start: float
    t_end: float
    radius: float = 100.0
    top_k: int = 10
    scorer: str = "lcv"
    sim_threshold: float = 0.25
    per_segment_top_n: int = 32
    exclude: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a video query needs at least one segment")
        if self.t_end < self.t_start:
            raise ValueError(
                f"query window ends ({self.t_end}) before it starts "
                f"({self.t_start})")
        if self.radius <= 0.0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.scorer not in SCORERS:
            raise ValueError(
                f"unknown scorer {self.scorer!r}; choose from {SCORERS}")
        if not 0.0 <= self.sim_threshold <= 1.0:
            raise ValueError(
                f"sim_threshold must be in [0, 1], got {self.sim_threshold}")
        if self.per_segment_top_n < 1:
            raise ValueError(
                f"per_segment_top_n must be >= 1, got {self.per_segment_top_n}")

    def harvest_queries(self) -> list[Query]:
        """One point query per trajectory segment (the batched harvest)."""
        return [
            Query(t_start=self.t_start, t_end=self.t_end, center=seg.point,
                  radius=self.radius, top_n=self.per_segment_top_n)
            for seg in self.segments
        ]


class VideoMatch(NamedTuple):
    """One ranked stored video with its scoring evidence.

    ``lcv`` is the largest-common-view run length in segment pairs
    (reported for both scorers); ``segments_matched`` how many of the
    video's stored segments the harvest surfaced.  Result lists are
    totally ordered by ``(-score, video_id)``.
    """

    video_id: str
    score: float
    lcv: int
    segments_matched: int


class VideoQueryResult(NamedTuple):
    """Ranked videos plus the funnel counters and harvested coverage.

    ``harvested`` is every distinct stored segment the harvest
    surfaced (canonically ordered by ``(video_id, segment_id)``) --
    the input to POI aggregation (:mod:`repro.video.poi`);
    ``videos_considered`` how many candidate videos were scored.
    """

    query: VideoQuery
    ranked: list[VideoMatch]
    harvested: list[RepresentativeFoV]
    videos_considered: int
    segments_harvested: int
    elapsed_s: float

    def keys(self) -> list[str]:
        """Ranked video ids, best first."""
        return [match.video_id for match in self.ranked]


class VideoQueryStats:
    """Read-through facade over the ``video.*`` metric families.

    One class registers the families (single registration site, RF013)
    and both the single server and the sharded router instantiate it
    on their own registries, exactly like
    :class:`~repro.core.server.ServerStats`.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._queries = reg.counter(
            "video.queries", "Video-to-video retrieval requests answered")
        self._cache_hits = reg.counter(
            "video.cache_hits", "Video queries answered from the result cache")
        self._cache_misses = reg.counter(
            "video.cache_misses", "Video queries that ran the full pipeline")
        self._segments_harvested = reg.counter(
            "video.segments_harvested",
            "Distinct stored segments surfaced by harvest batches")
        self._videos_ranked = reg.counter(
            "video.videos_ranked", "Candidate videos scored and ranked")

    @property
    def queries(self) -> int:
        """Video retrieval requests answered (cache hits included)."""
        return int(self._queries.value)

    @property
    def cache_hits(self) -> int:
        """Video queries answered from the result cache."""
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        """Video queries that ran the full pipeline."""
        return int(self._cache_misses.value)

    @property
    def segments_harvested(self) -> int:
        """Distinct stored segments surfaced by harvest batches."""
        return int(self._segments_harvested.value)

    @property
    def videos_ranked(self) -> int:
        """Candidate videos scored and ranked (lifetime)."""
        return int(self._videos_ranked.value)


def _match_key(match: VideoMatch) -> tuple[float, str]:
    """The canonical total order videos rank under."""
    return (-match.score, match.video_id)


def _harvest(video_query: VideoQuery,
             query_many: Callable[[list[Query]], list[QueryResult]],
             ) -> dict[str, dict[int, RepresentativeFoV]]:
    """Run the batched harvest and group hits per stored video.

    Deduplication is by ``(video_id, segment_id)``: a stored segment
    surfaced by several query segments counts once.
    """
    answers = query_many(video_query.harvest_queries())
    by_video: dict[str, dict[int, RepresentativeFoV]] = {}
    for answer in answers:
        for row in answer.ranked:
            rep = row.fov
            if rep.video_id in video_query.exclude:
                continue
            by_video.setdefault(rep.video_id, {})[rep.segment_id] = rep
    return by_video


def _score_video(video_query: VideoQuery, projection: LocalProjection,
                 xy_q: np.ndarray, theta_q: np.ndarray,
                 segs: list[RepresentativeFoV],
                 camera: CameraModel) -> tuple[float, int]:
    """``(score, lcv_run)`` of one candidate video's harvested segments."""
    xy_s = projection.to_local_arrays([f.lat for f in segs],
                                      [f.lng for f in segs])
    theta_s = np.array([f.theta for f in segs], dtype=float)
    sim = cross_similarity(xy_q, theta_q, xy_s, theta_s, camera)
    run = lcv_run_length(sim, video_query.sim_threshold)
    if video_query.scorer == "lcv":
        score = run / sim.shape[0]
    else:
        score = alignment_score(sim)
    return score, run


def retrieve_videos(video_query: VideoQuery,
                    query_many: Callable[[list[Query]], list[QueryResult]],
                    camera: CameraModel,
                    clock: Callable[[], float] | None = None,
                    tracer: TracerLike = NULL_TRACER) -> VideoQueryResult:
    """Answer one video query against any engine's ``query_many``.

    Three spans cover the pipeline stages (``video.harvest``,
    ``video.score``, ``video.rank``); the caller wraps the whole call
    in ``video.query`` and owns caching and counters.
    """
    timer = clock if clock is not None else default_timer
    t0 = timer()
    with tracer.span("video.harvest", segments=len(video_query.segments)):
        by_video = _harvest(video_query, query_many)
    with tracer.span("video.score", videos=len(by_video)):
        projection = LocalProjection(video_query.segments[0].point)
        xy_q = projection.to_local_arrays(
            [s.lat for s in video_query.segments],
            [s.lng for s in video_query.segments])
        theta_q = np.array([s.theta for s in video_query.segments],
                           dtype=float)
        matches: list[VideoMatch] = []
        for vid in sorted(by_video):
            segs = [by_video[vid][sid] for sid in sorted(by_video[vid])]
            score, run = _score_video(video_query, projection, xy_q, theta_q,
                                      segs, camera)
            matches.append(VideoMatch(video_id=vid, score=score, lcv=run,
                                      segments_matched=len(segs)))
    with tracer.span("video.rank", videos=len(matches)):
        matches.sort(key=_match_key)
        top = matches[:video_query.top_k]
        harvested = sorted(
            (rep for segs in by_video.values() for rep in segs.values()),
            key=RepresentativeFoV.key)
    return VideoQueryResult(
        query=video_query,
        ranked=top,
        harvested=harvested,
        videos_considered=len(by_video),
        segments_harvested=len(harvested),
        elapsed_s=timer() - t0,
    )
