"""Sequence-level scorers over a per-segment similarity matrix.

Input is the asymmetric Eq. 10 matrix ``sim[i, j] = Sim(q_i, s_j)``
between a query trajectory's ``n`` representative FoVs and a stored
video's ``m`` segments (:func:`repro.core.similarity.cross_similarity`).
Two reductions turn it into one score per stored video:

* **LCV** (largest common view, after Ding, Yang & Nam): the longest
  *consecutive* run of segment pairs whose similarity clears a
  threshold -- the longest all-True diagonal run of the thresholded
  matrix.  Two videos that tracked the same street for ``k`` segments
  in lockstep score ``k`` regardless of what happened before or after.
* **Alignment** (DTW-style): the best monotonic warping path from
  ``(0, 0)`` to ``(n-1, m-1)`` accumulating similarity, normalised by
  the maximum path length ``n + m - 1`` so the score lands in
  ``[0, 1]``.  Unlike LCV it tolerates speed differences (one segment
  of A aligning to several of B) but requires whole-sequence
  alignment.

Each reduction ships twice: a vectorised NumPy kernel (the serving
path, RF015-clean) and a plain-Python scalar reference.  The kernels
perform the identical float operations in the identical order, so the
property suite pins them **bit-identical**, not merely close.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike

__all__ = [
    "lcv_run_length",
    "lcv_run_length_ref",
    "lcv_score",
    "alignment_score",
    "alignment_score_ref",
]


def _as_matrix(sim: ArrayLike) -> np.ndarray:
    out = np.asarray(sim, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"sim must be a 2-D matrix, got shape {out.shape}")
    return out


def lcv_run_length(sim: ArrayLike, threshold: float) -> int:
    """Length of the largest common view, in segment pairs.

    The longest run ``sim[i, j], sim[i+1, j+1], ...`` with every entry
    ``>= threshold`` -- i.e. the longest all-True run down any diagonal
    of the thresholded matrix.  Vectorised: the diagonals shear into
    the columns of an ``(n, n+m-1)`` boolean matrix (row ``i`` of
    diagonal ``j - i`` lands in column ``j - i + n - 1``), and the
    longest True-run per column falls out of one cumulative-sum /
    running-maximum pass.
    """
    mask = _as_matrix(sim) >= threshold
    n, m = mask.shape
    if n == 0 or m == 0 or not mask.any():
        return 0
    sheared = np.zeros((n, n + m - 1), dtype=bool)
    shear_cols = np.arange(m)[None, :] - np.arange(n)[:, None] + (n - 1)
    sheared[np.arange(n)[:, None], shear_cols] = mask
    seen = np.cumsum(sheared, axis=0)
    # Runs restart after a False: subtracting the running maximum of
    # the cumulative count *at* False positions leaves, at each True
    # position, the length of the run ending there.
    breaks = np.where(sheared, 0, seen)
    runs = seen - np.maximum.accumulate(breaks, axis=0)
    return int(runs.max())


def lcv_run_length_ref(sim: ArrayLike, threshold: float) -> int:
    """Scalar reference for :func:`lcv_run_length` (classic DP).

    ``run[i][j] = run[i-1][j-1] + 1`` where the pair clears the
    threshold, else 0; the answer is the maximum cell.  Kept for the
    bit-parity property suite; never on the serving path.
    """
    matrix = _as_matrix(sim).tolist()
    n = len(matrix)
    m = len(matrix[0]) if n else 0
    best = 0
    prev = [0] * (m + 1)
    for i in range(n):
        cur = [0] * (m + 1)
        for j in range(m):
            if matrix[i][j] >= threshold:
                cur[j + 1] = prev[j] + 1
                if cur[j + 1] > best:
                    best = cur[j + 1]
        prev = cur
    return best


def lcv_score(sim: ArrayLike, threshold: float) -> float:
    """LCV normalised by the query length: fraction of the query
    trajectory covered by the largest common view, in ``[0, 1]``.

    Row count (the query) is the normaliser so the score answers "how
    much of *my* video did this stored video share?" -- a long stored
    video earns nothing for its extra segments.
    """
    matrix = _as_matrix(sim)
    n = matrix.shape[0]
    if n == 0:
        return 0.0
    return lcv_run_length(matrix, threshold) / n


def alignment_score(sim: ArrayLike) -> float:
    """Best monotonic alignment of the two sequences, in ``[0, 1]``.

    DTW-style accumulation ``acc[i, j] = sim[i, j] + max(acc[i-1, j],
    acc[i, j-1], acc[i-1, j-1])`` with ``acc[0, 0] = sim[0, 0]``,
    normalised by the maximum path length ``n + m - 1``.  Evaluated by
    anti-diagonal wavefront: every cell of diagonal ``d = i + j``
    depends only on diagonals ``d-1`` and ``d-2``, so each diagonal is
    one vectorised gather-max-add.  The padded accumulator carries
    ``-inf`` sentinels for out-of-range predecessors, which ``max``
    ignores exactly as the scalar reference's bounds checks do.
    """
    matrix = _as_matrix(sim)
    n, m = matrix.shape
    if n == 0 or m == 0:
        return 0.0
    padded = np.full((n + 1, m + 1), -np.inf)
    padded[1, 1] = matrix[0, 0]
    for d in range(1, n + m - 1):
        lo = max(0, d - m + 1)
        hi = min(n - 1, d)
        i = np.arange(lo, hi + 1)
        j = d - i
        pred = np.maximum(
            np.maximum(padded[i, j + 1], padded[i + 1, j]),  # up, left
            padded[i, j],                                    # diagonal
        )
        padded[i + 1, j + 1] = matrix[i, j] + pred
    return float(padded[n, m]) / (n + m - 1)


def alignment_score_ref(sim: ArrayLike) -> float:
    """Scalar reference for :func:`alignment_score` (row-major DP).

    Performs the same float add and three-way max per cell, so the
    result is bit-identical to the wavefront kernel (``max`` is exact
    and evaluation order within a cell does not change its value).
    """
    matrix = _as_matrix(sim).tolist()
    n = len(matrix)
    m = len(matrix[0]) if n else 0
    if n == 0 or m == 0:
        return 0.0
    ninf = float("-inf")
    prev = [ninf] * (m + 1)
    # Row 0: only the leftward predecessor exists.
    prev[1] = matrix[0][0]
    for j in range(1, m):
        prev[j + 1] = matrix[0][j] + prev[j]
    for i in range(1, n):
        acc = [ninf] * (m + 1)
        for j in range(m):
            pred = max(prev[j + 1], acc[j], prev[j])
            acc[j + 1] = matrix[i][j] + pred
        prev = acc
    return float(prev[m]) / (n + m - 1)
