"""Synthetic computer-vision substrate: the content-based baseline.

The paper validates the FoV similarity against OpenCV frame
differencing on real video.  Here the "real video" is produced by a
ray-cast column renderer over a 2-D world of coloured landmarks
(:mod:`world`, :mod:`camera`): rotation shifts columns, translation
produces parallax and scale change, so pixel-level similarity responds
to camera motion the way real footage does.

On top of the frames: frame differencing (:mod:`framediff`), a colour
histogram global descriptor (:mod:`histogram`), a Gist-like block-mean
descriptor (:mod:`blockdesc`), a CV-based segmentation baseline
(:mod:`segmentation_cv`) and descriptor cost accounting
(:mod:`descriptors`).
"""

from repro.vision.world import Landmark, World, random_world
from repro.vision.camera import ColumnRenderer
from repro.vision.frames import render_trajectory
from repro.vision.framediff import (
    frame_difference_similarity,
    pairwise_frame_similarity,
    sequential_frame_similarity,
)
from repro.vision.histogram import color_histogram, histogram_similarity
from repro.vision.blockdesc import block_descriptor, block_similarity
from repro.vision.segmentation_cv import cv_segment_frames
from repro.vision.descriptors import DescriptorCost, measure_descriptor_costs

__all__ = [
    "Landmark",
    "World",
    "random_world",
    "ColumnRenderer",
    "render_trajectory",
    "frame_difference_similarity",
    "pairwise_frame_similarity",
    "sequential_frame_similarity",
    "color_histogram",
    "histogram_similarity",
    "block_descriptor",
    "block_similarity",
    "cv_segment_frames",
    "DescriptorCost",
    "measure_descriptor_costs",
]
