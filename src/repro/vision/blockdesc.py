"""Block-mean grid descriptor: a Gist-like spatial global feature.

The frame is divided into a ``grid x grid`` cell lattice; the
descriptor is the per-cell mean colour, flattened.  Unlike the colour
histogram it preserves coarse spatial layout, so it behaves more like
the 'global features' family the paper cites (Gist/HLAC) while staying
a few hundred bytes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_descriptor", "block_similarity", "block_bytes"]


def block_descriptor(frame: np.ndarray, grid: int = 8) -> np.ndarray:
    """Per-cell mean colour, shape ``(grid * grid * 3,)``, float64 0..255."""
    if frame.ndim != 3 or frame.shape[2] != 3 or frame.dtype != np.uint8:
        raise ValueError("frame must be uint8 with shape (H, W, 3)")
    h, w, _ = frame.shape
    if not 1 <= grid <= min(h, w):
        raise ValueError(f"grid must be in [1, min(H, W) = {min(h, w)}]")
    ys = np.linspace(0, h, grid + 1).astype(int)
    xs = np.linspace(0, w, grid + 1).astype(int)
    out = np.empty((grid, grid, 3))
    for i in range(grid):
        for j in range(grid):
            out[i, j] = frame[ys[i]: ys[i + 1], xs[j]: xs[j + 1]].mean(axis=(0, 1))
    return out.ravel()


def block_similarity(d1: np.ndarray, d2: np.ndarray) -> float:
    """``1 - L1 / 255``: normalised block-descriptor similarity in [0, 1]."""
    if d1.shape != d2.shape:
        raise ValueError("descriptor shapes differ")
    return float(1.0 - np.mean(np.abs(d1 - d2)) / 255.0)


def block_bytes(grid: int = 8, dtype_bytes: int = 4) -> int:
    """Wire size of one block descriptor (float32 by default)."""
    return grid * grid * 3 * dtype_bytes
