"""Compass calibration auditing from pixels.

The whole content-free system trusts the compass; a hard-iron bias (a
magnet in the phone case, a car body) rotates every uploaded FoV and
silently misaims the orientation filter.  Pixels do not lie about
*relative* rotation: the column-correlation estimator
(:mod:`repro.vision.motion`) recovers frame-to-frame rotation from the
footage itself, so comparing it with compass deltas audits the sensor:

* per-frame-pair residuals estimate the compass *noise*;
* to detect absolute *bias*, the validator integrates both signals
  over a pan: the compass reproduces the total swept angle from its
  (bias-cancelling) deltas, while a drifting or scaled sensor shows up
  as accumulated divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.camera import CameraModel
from repro.geometry.angles import normalize_angle_signed, unwrap_degrees
from repro.vision.motion import estimate_rotation_deg

__all__ = ["CalibrationReport", "audit_compass"]


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one compass-vs-pixels audit."""

    n_pairs: int
    mean_abs_residual_deg: float   # per-step disagreement
    scale: float                   # fitted compass-deltas ~ scale * pixel-deltas
    total_compass_deg: float
    total_pixel_deg: float

    @property
    def consistent(self) -> bool:
        """True when the compass deltas track the footage (scale ~ 1,
        small residuals) -- a miscalibrated or jammed sensor fails."""
        return (abs(self.scale - 1.0) < 0.15
                and self.mean_abs_residual_deg < 3.0)


def audit_compass(frames: np.ndarray, compass_deg: np.ndarray,
                  camera: CameraModel) -> CalibrationReport:
    """Compare per-step compass rotation against pixel-estimated rotation.

    Parameters
    ----------
    frames : ndarray, uint8, shape (k, H, W, 3)
        Consecutive frames of one recording (k >= 2).  Steps whose
        rotation exceeds the reliable envelope (about the half-angle)
        are skipped.
    compass_deg : ndarray, shape (k,)
        The compass azimuth logged with each frame.
    camera : CameraModel
    """
    if frames.ndim != 4 or frames.shape[0] < 2:
        raise ValueError("need at least two frames")
    compass_deg = np.asarray(compass_deg, dtype=float)
    if compass_deg.shape != (frames.shape[0],):
        raise ValueError("one compass sample per frame required")

    unwrapped = unwrap_degrees(compass_deg)
    compass_steps: list[float] = []
    pixel_steps: list[float] = []
    for i in range(frames.shape[0] - 1):
        step = unwrapped[i + 1] - unwrapped[i]
        if abs(step) > camera.half_angle:
            continue   # beyond the estimator's reliable envelope
        est = estimate_rotation_deg(frames[i], frames[i + 1], camera)
        compass_steps.append(step)
        pixel_steps.append(est)
    if not compass_steps:
        raise ValueError("no frame pairs within the estimator's envelope")

    c = np.asarray(compass_steps)
    p = np.asarray(pixel_steps)
    residual = float(np.mean(np.abs(c - p)))
    denom = float(p @ p)
    scale = float((c @ p) / denom) if denom > 1e-9 else 1.0
    return CalibrationReport(
        n_pairs=len(compass_steps),
        mean_abs_residual_deg=residual,
        scale=scale,
        total_compass_deg=float(c.sum()),
        total_pixel_deg=float(p.sum()),
    )
