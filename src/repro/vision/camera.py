"""Ray-cast column renderer: camera pose -> RGB frame.

One ray per image column, spread across the camera's viewing angle
``2 alpha``.  Each ray finds the nearest landmark circle it pierces
within the radius of view ``R``; the landmark paints the column with
its colour, attenuated with distance, over a row span set by its
apparent height (a pinhole ``height / distance`` law).  Sky and ground
gradients fill the rest.  All geometry is one vectorised
``columns x landmarks`` pass -- no per-pixel Python.
"""

from __future__ import annotations

import numpy as np

from repro.core.camera import CameraModel
from repro.vision.world import World

__all__ = ["ColumnRenderer"]

_SKY_TOP = np.array([110.0, 150.0, 220.0])
_SKY_HORIZON = np.array([190.0, 205.0, 235.0])
_GROUND_NEAR = np.array([95.0, 85.0, 75.0])
_GROUND_HORIZON = np.array([140.0, 130.0, 115.0])


class ColumnRenderer:
    """Renders frames of a :class:`World` as seen by a :class:`CameraModel`.

    Parameters
    ----------
    world : World
    camera : CameraModel
        Supplies the aperture ``2 alpha`` and the far plane ``R``.
    width, height : int
        Frame resolution in pixels.
    focal_px : float, optional
        Vertical pinhole focal length in pixels; defaults so a
        10 m-tall pillar at 20 m fills about half the frame height.
    """

    def __init__(self, world: World, camera: CameraModel,
                 width: int = 320, height: int = 240,
                 focal_px: float | None = None):
        if width < 8 or height < 8:
            raise ValueError("frame must be at least 8x8 pixels")
        self.world = world
        self.camera = camera
        self.width = int(width)
        self.height = int(height)
        self.focal_px = float(focal_px) if focal_px is not None else height * 0.25
        # Per-column angular offsets across the aperture.
        a = camera.half_angle
        self._offsets = np.linspace(-a, a, self.width)
        # Precomputed background (independent of pose).
        self._background = self._make_background()

    def _make_background(self) -> np.ndarray:
        h, w = self.height, self.width
        horizon = h // 2
        bg = np.empty((h, w, 3), dtype=float)
        ts = np.linspace(0.0, 1.0, horizon)[:, None]
        bg[:horizon] = (_SKY_TOP * (1 - ts) + _SKY_HORIZON * ts)[:, None, :]
        tg = np.linspace(0.0, 1.0, h - horizon)[:, None]
        bg[horizon:] = (_GROUND_HORIZON * (1 - tg) + _GROUND_NEAR * tg)[:, None, :]
        return bg

    def column_hits(self, x: float, y: float, azimuth: float
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-column nearest hit: ``(distance, landmark_index)``.

        ``distance`` is ``inf`` and ``index`` is ``-1`` where a ray
        escapes past the radius of view.
        """
        if len(self.world) == 0:
            return (np.full(self.width, np.inf),
                    np.full(self.width, -1, dtype=np.intp))
        angles = np.radians(azimuth + self._offsets)          # (W,)
        dirs = np.stack([np.sin(angles), np.cos(angles)], axis=-1)  # (W, 2)
        rel = self.world.centers - np.array([x, y])           # (L, 2)
        # Projection of each centre onto each ray: (W, L)
        t_close = dirs @ rel.T
        d2 = np.sum(rel * rel, axis=-1)[None, :]              # (1, L)
        miss2 = d2 - t_close**2                               # squared miss distance
        r2 = (self.world.radii**2)[None, :]
        # Entry distance along the ray (first intersection with circle).
        half_chord = np.sqrt(np.clip(r2 - miss2, 0.0, None))
        t_hit = t_close - half_chord
        valid = (miss2 <= r2) & (t_hit > 1e-9) & (t_hit <= self.camera.radius)
        t_hit = np.where(valid, t_hit, np.inf)
        idx = np.argmin(t_hit, axis=-1)                       # (W,)
        best = t_hit[np.arange(self.width), idx]
        idx = np.where(np.isfinite(best), idx, -1)
        return best, idx

    def render(self, x: float, y: float, azimuth: float) -> np.ndarray:
        """Render one frame; returns uint8 array of shape (H, W, 3)."""
        dist, idx = self.column_hits(x, y, azimuth)
        frame = self._background.copy()
        # Azimuth-dependent sky brightness (a fixed 'sun direction'), so
        # panning changes the background the way real sky gradients do.
        col_az = np.radians(azimuth + self._offsets)
        sky_mod = 1.0 + 0.15 * np.sin(col_az) + 0.08 * np.sin(3.0 * col_az + 1.0)
        horizon = self.height // 2
        frame[:horizon] *= sky_mod[None, :, None]
        hit_cols = np.flatnonzero(idx >= 0)
        if hit_cols.size:
            h = self.height
            horizon = h // 2
            lm = idx[hit_cols]
            d = dist[hit_cols]
            colors = self.world.colors[lm]
            # Distance attenuation towards 40 % brightness at the far plane.
            atten = 1.0 - 0.6 * np.clip(d / self.camera.radius, 0.0, 1.0)
            shaded = colors * atten[:, None]
            # Apparent height (pixels above the horizon), pinhole law.
            top_px = self.focal_px * self.world.heights[lm] / np.maximum(d, 1e-6)
            tops = np.clip(horizon - top_px.astype(int), 0, horizon)
            # Pillars stand on the ground: fill from `top` to a foot line
            # just below the horizon that drops with proximity.
            foot_px = self.focal_px * 1.6 / np.maximum(d, 1e-6)
            feet = np.clip(horizon + foot_px.astype(int), horizon, h - 1)
            rows = np.arange(h)[:, None]
            mask = (rows >= tops[None, :]) & (rows <= feet[None, :])  # (H, k)
            cols = frame[:, hit_cols, :]
            cols[mask] = np.broadcast_to(shaded[None, :, :], (h,) + shaded.shape)[mask]
            frame[:, hit_cols, :] = cols
        return np.clip(frame, 0.0, 255.0).astype(np.uint8)
