"""Descriptor cost accounting: size, extraction time, matching time.

Backs the abstract's claim that "FoV descriptors are much smaller and
significantly faster to extract and match compared to content
descriptors".  For each descriptor family the harness measures, on the
same rendered frames:

* **bytes** -- wire size of one per-frame descriptor;
* **extract_us** -- mean time to compute it from a frame (for FoV this
  is the sensor-record packing, which needs no pixels at all);
* **match_us** -- mean time for one pairwise similarity evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.camera import CameraModel
from repro.core.similarity import scalar_similarity
from repro.net.protocol import FOV_RECORD_SIZE
from repro.vision.blockdesc import block_bytes, block_descriptor, block_similarity
from repro.vision.framediff import frame_difference_similarity
from repro.vision.histogram import color_histogram, histogram_bytes, histogram_similarity

__all__ = ["DescriptorCost", "measure_descriptor_costs"]


@dataclass(frozen=True)
class DescriptorCost:
    """Measured costs of one descriptor family."""

    name: str
    bytes_per_frame: int
    extract_us: float
    match_us: float


def _time_us(fn, reps: int) -> float:
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps * 1e6


def measure_descriptor_costs(frames: np.ndarray,
                             camera: CameraModel | None = None,
                             reps: int = 20) -> list[DescriptorCost]:
    """Measure every descriptor family on the given frames.

    Parameters
    ----------
    frames : ndarray, uint8, shape (k >= 2, H, W, 3)
        Rendered frames the content descriptors are computed from.
    camera : CameraModel, optional
    reps : int
        Timing repetitions per measurement.
    """
    if frames.ndim != 4 or frames.shape[0] < 2:
        raise ValueError("need at least two frames of shape (k, H, W, 3)")
    camera = camera or CameraModel()
    f0, f1 = frames[0], frames[1]
    h, w, _ = f0.shape
    out: list[DescriptorCost] = []

    # FoV: "extraction" packs one sensor record; matching is Eq. 10.
    from repro.net.protocol import encode_fov  # local import avoids cycle at module load
    from repro.core.fov import RepresentativeFoV
    rep = RepresentativeFoV(lat=40.0, lng=116.3, theta=30.0, t_start=0.0, t_end=1.0)
    out.append(DescriptorCost(
        name="fov",
        bytes_per_frame=FOV_RECORD_SIZE,
        extract_us=_time_us(lambda: encode_fov(rep), reps * 10),
        match_us=_time_us(
            lambda: scalar_similarity(3.0, 4.0, 10.0, 40.0,
                                      camera.half_angle, camera.radius),
            reps * 10,
        ),
    ))

    h1, h2 = color_histogram(f0), color_histogram(f1)
    out.append(DescriptorCost(
        name="histogram",
        bytes_per_frame=histogram_bytes(),
        extract_us=_time_us(lambda: color_histogram(f0), reps),
        match_us=_time_us(lambda: histogram_similarity(h1, h2), reps * 10),
    ))

    b1, b2 = block_descriptor(f0), block_descriptor(f1)
    out.append(DescriptorCost(
        name="block",
        bytes_per_frame=block_bytes(),
        extract_us=_time_us(lambda: block_descriptor(f0), reps),
        match_us=_time_us(lambda: block_similarity(b1, b2), reps * 10),
    ))

    # Raw-frame differencing: no extraction, but the 'descriptor' is the
    # frame itself and matching touches every pixel.
    out.append(DescriptorCost(
        name="frame-diff",
        bytes_per_frame=h * w * 3,
        extract_us=0.0,
        match_us=_time_us(lambda: frame_difference_similarity(f0, f1), reps),
    ))
    return out
