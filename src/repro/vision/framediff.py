"""Frame differencing: the paper's representative CV similarity.

Section VI-B uses "frame differencing algorithm (as a representative of
CV algorithms)" normalised to a similarity.  Implemented as
``1 - mean(|a - b|) / 255`` over all pixels and channels -- identical
frames score 1, maximally different frames score 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "frame_difference_similarity",
    "sequential_frame_similarity",
    "pairwise_frame_similarity",
]


def _check_frames(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"frame shapes differ: {a.shape} vs {b.shape}")
    if a.dtype != np.uint8 or b.dtype != np.uint8:
        raise ValueError("frames must be uint8")


def frame_difference_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised frame-differencing similarity of two uint8 frames."""
    _check_frames(a, b)
    mad = np.mean(np.abs(a.astype(np.int16) - b.astype(np.int16)))
    return float(1.0 - mad / 255.0)


def sequential_frame_similarity(frames: np.ndarray,
                                anchor: int | None = None) -> np.ndarray:
    """Similarity of every frame to one reference frame.

    With ``anchor=None`` the reference is frame 0 -- the form the Fig. 4
    curves use (similarity versus distance walked from the start).
    """
    if frames.ndim != 4:
        raise ValueError("frames must have shape (k, H, W, C)")
    ref = frames[anchor if anchor is not None else 0].astype(np.int16)
    diffs = np.abs(frames.astype(np.int16) - ref[None])
    return 1.0 - diffs.mean(axis=(1, 2, 3)) / 255.0


def pairwise_frame_similarity(frames: np.ndarray,
                              block: int = 16) -> np.ndarray:
    """All-pairs frame-differencing matrix (the right halves of Fig. 5).

    Computed block-by-block to bound peak memory at
    ``block^2 * H * W * C`` int16 elements.
    """
    if frames.ndim != 4:
        raise ValueError("frames must have shape (k, H, W, C)")
    k = frames.shape[0]
    out = np.empty((k, k), dtype=float)
    f16 = frames.astype(np.int16)
    for i0 in range(0, k, block):
        a = f16[i0: i0 + block]
        for j0 in range(i0, k, block):
            b = f16[j0: j0 + block]
            d = np.abs(a[:, None] - b[None, :]).mean(axis=(2, 3, 4))
            out[i0: i0 + a.shape[0], j0: j0 + b.shape[0]] = 1.0 - d / 255.0
            out[j0: j0 + b.shape[0], i0: i0 + a.shape[0]] = (1.0 - d / 255.0).T
    return out
