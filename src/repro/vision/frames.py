"""Turn a trajectory into rendered video frames.

The renderer consumes the *ideal* trajectory (pixels come from where
the camera truly is, not from where GPS thinks it is), matching how the
Fig. 4/5 experiments compare sensor-derived FoV similarity against
pixel-derived CV similarity of the same physical motion.
"""

from __future__ import annotations

import numpy as np

from repro.traces.trajectory import Trajectory
from repro.vision.camera import ColumnRenderer

__all__ = ["render_trajectory", "subsample_indices"]


def subsample_indices(n: int, max_frames: int) -> np.ndarray:
    """Evenly spaced frame indices, at most ``max_frames`` of them."""
    if n < 1:
        raise ValueError("empty sequence")
    if max_frames < 1:
        raise ValueError("max_frames must be >= 1")
    if n <= max_frames:
        return np.arange(n)
    return np.unique(np.linspace(0, n - 1, max_frames).round().astype(int))


def render_trajectory(renderer: ColumnRenderer, trajectory: Trajectory,
                      max_frames: int | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Render (a subsample of) a trajectory.

    Returns
    -------
    (frames, indices)
        ``frames`` is a uint8 array of shape ``(k, H, W, 3)``;
        ``indices`` maps each frame back to its trajectory sample.
    """
    n = len(trajectory)
    idx = subsample_indices(n, max_frames) if max_frames else np.arange(n)
    frames = np.empty((idx.size, renderer.height, renderer.width, 3),
                      dtype=np.uint8)
    for k, i in enumerate(idx):
        x, y = trajectory.xy[i]
        frames[k] = renderer.render(float(x), float(y),
                                    float(trajectory.azimuth[i]))
    return frames, idx
