"""Colour-histogram global descriptor (the 'cheap CV' baseline).

A joint RGB histogram with ``bins`` cells per channel, L1-normalised;
matching is histogram intersection (1 = identical distribution).  This
is the class of low-cost global features (colour Gist et al., paper
Section VIII) that the content-based accuracy baseline uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["color_histogram", "histogram_similarity", "histogram_bytes"]


def color_histogram(frame: np.ndarray, bins: int = 8) -> np.ndarray:
    """Joint RGB histogram, shape ``(bins**3,)``, L1-normalised float64."""
    if frame.ndim != 3 or frame.shape[2] != 3 or frame.dtype != np.uint8:
        raise ValueError("frame must be uint8 with shape (H, W, 3)")
    if not 2 <= bins <= 16:
        raise ValueError("bins must be in [2, 16]")
    q = (frame.astype(np.int32) * bins) >> 8          # 0..bins-1 per channel
    flat = (q[..., 0] * bins + q[..., 1]) * bins + q[..., 2]
    hist = np.bincount(flat.ravel(), minlength=bins**3).astype(float)
    return hist / hist.sum()


def histogram_similarity(h1: np.ndarray, h2: np.ndarray) -> float:
    """Histogram intersection of two L1-normalised histograms, in [0, 1]."""
    if h1.shape != h2.shape:
        raise ValueError("histogram shapes differ")
    return float(np.minimum(h1, h2).sum())


def histogram_bytes(bins: int = 8, dtype_bytes: int = 4) -> int:
    """Wire size of one histogram descriptor (float32 by default)."""
    return bins**3 * dtype_bytes
