"""Keyframe selection: which frame stands for a segment?

When a matched segment's preview (or its content descriptor) must be a
single frame, the choice matters: the paper's abstraction averages FoVs
(Eq. 11), and the frame whose FoV is *closest to that average* is the
segment's most representative view.  Strategies:

* ``first`` / ``middle`` / ``last`` -- positional (what naive systems do);
* ``representative`` -- the frame maximising Eq. 10 similarity to the
  segment's representative FoV (the abstraction-consistent choice).
"""

from __future__ import annotations

import numpy as np

from repro.core.abstraction import abstract_segment
from repro.core.camera import CameraModel
from repro.core.fov import FoV, FoVTrace, VideoSegment
from repro.core.similarity import cross_similarity

__all__ = ["select_keyframe", "keyframe_index", "STRATEGIES"]

STRATEGIES = ("first", "middle", "last", "representative")


def keyframe_index(segment: VideoSegment, camera: CameraModel,
                   strategy: str = "representative") -> int:
    """Index (within the parent trace) of the segment's keyframe."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"choose from {STRATEGIES}")
    if strategy == "first":
        return segment.start
    if strategy == "last":
        return segment.stop - 1
    if strategy == "middle":
        return segment.start + (len(segment) - 1) // 2

    # representative: maximise similarity to the Eq. 11 abstraction.
    rep = abstract_segment(segment)
    trace = segment.fovs()
    xy = trace.local_xy()
    rep_xy = trace.projection.to_local_arrays([rep.lat], [rep.lng])
    sims = cross_similarity(rep_xy, np.array([rep.theta]),
                            xy, trace.theta, camera)[0]
    return segment.start + int(np.argmax(sims))


def select_keyframe(segment: VideoSegment, camera: CameraModel,
                    strategy: str = "representative") -> FoV:
    """The keyframe's FoV record (its timestamp locates the pixels)."""
    return segment.trace[keyframe_index(segment, camera, strategy)]
