"""Pixel-based camera-rotation estimation (a CV cross-check for FoV).

Panning a camera slides the scene across image columns: a rotation of
``dtheta`` within an aperture of ``2 alpha`` shifts content by
``dtheta / (2 alpha) * width`` pixels.  Estimating that shift by
maximising column-wise correlation recovers the rotation between two
frames *from pixels alone* -- which lets the evaluation cross-validate
the compass-based FoV orientation against the footage itself (and
would let a real deployment detect a miscalibrated compass).
"""

from __future__ import annotations

import numpy as np

from repro.core.camera import CameraModel

__all__ = ["column_profile", "estimate_rotation_deg", "estimate_shift_px"]


def column_profile(frame: np.ndarray) -> np.ndarray:
    """Collapse a frame to a 1-D luminance-per-column profile."""
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ValueError("frame must have shape (H, W, 3)")
    lum = (0.299 * frame[..., 0].astype(float)
           + 0.587 * frame[..., 1]
           + 0.114 * frame[..., 2])
    return lum.mean(axis=0)


def estimate_shift_px(a: np.ndarray, b: np.ndarray,
                      max_shift: int | None = None) -> int:
    """Column shift (pixels) that best aligns profile ``a`` onto ``b``.

    Positive means the content of ``a`` appears shifted *left* in ``b``
    (the camera turned clockwise).  Correlation is evaluated on the
    overlapping region only, normalised per shift so large shifts are
    not penalised for shorter overlap.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("profiles must be equal-length 1-D arrays")
    w = a.size
    # Shifts leaving less than a quarter of the frame overlapping have
    # too little signal -- a lucky correlation there would otherwise
    # beat the true peak, so they are excluded and the score is
    # additionally weighted by the overlap fraction.
    hard_cap = w - max(4, w // 4)
    if max_shift is None:
        max_shift = hard_cap
    max_shift = int(np.clip(max_shift, 1, hard_cap))
    best_shift, best_score = 0, -np.inf
    for s in range(-max_shift, max_shift + 1):
        if s >= 0:
            xa, xb = a[s:], b[: w - s]
        else:
            xa, xb = a[: w + s], b[-s:]
        xa = xa - xa.mean()
        xb = xb - xb.mean()
        denom = np.sqrt((xa * xa).sum() * (xb * xb).sum())
        if denom <= 1e-12:
            continue
        score = float((xa * xb).sum() / denom) * np.sqrt(xa.size / w)
        if score > best_score:
            best_score, best_shift = score, s
    return best_shift


def estimate_rotation_deg(frame_a: np.ndarray, frame_b: np.ndarray,
                          camera: CameraModel) -> float:
    """Rotation from frame A to frame B in degrees, from pixels alone.

    Positive is clockwise (azimuth increased).  Reliable while the
    frames share most of their content (``|rotation|`` up to roughly the
    half-angle ``alpha``); beyond that the overlap shrinks and repetitive
    texture (sky gradients, similar pillars) can capture the
    correlation peak.
    """
    if frame_a.shape != frame_b.shape:
        raise ValueError("frames must have identical shapes")
    pa = column_profile(frame_a)
    pb = column_profile(frame_b)
    shift = estimate_shift_px(pa, pb)
    width = pa.size
    return shift * camera.viewing_angle / width
