"""Line-of-sight and occlusion-aware coverage.

The FoV model is purely geometric: it declares a point covered whenever
it falls inside the viewing sector.  Reality has "trees or walls
obscuring our vision" -- the paper's stated reason for ranking results
by camera distance (Section V-B item 2: "closer FoVs will have a higher
probability to cover the query area").  Against the synthetic world the
obstruction is computable exactly: a point is *visibly* covered only if
the sector contains it **and** no landmark blocks the straight ray from
the camera.  The occlusion-aware ground truth quantifies how often the
content-free model over-promises, and the ranking ablation tests the
paper's mitigation.
"""

from __future__ import annotations

import numpy as np

from repro.core.camera import CameraModel
from repro.geometry.sector import sector_contains_points
from repro.vision.world import World

__all__ = ["line_of_sight", "visible_coverage"]


def line_of_sight(world: World, from_xy, to_xy,
                  clearance: float = 0.0) -> bool:
    """True if the open segment from camera to target dodges every pillar.

    Parameters
    ----------
    world : World
    from_xy, to_xy : array-like (2,)
        Camera and target positions, local metres.
    clearance : float
        Extra radius added to every landmark (a safety margin, or to
        model foliage wider than the trunk).

    Notes
    -----
    A landmark containing either endpoint does not block (the camera
    can stand next to a wall and film along it; a target on a facade is
    visible from in front of it).
    """
    a = np.asarray(from_xy, dtype=float)
    b = np.asarray(to_xy, dtype=float)
    if len(world) == 0:
        return True
    ab = b - a
    seg_len2 = float(ab @ ab)
    radii = world.radii + clearance
    if seg_len2 == 0.0:
        return True
    rel = world.centers - a                       # (L, 2)
    t = np.clip((rel @ ab) / seg_len2, 0.0, 1.0)  # closest point parameter
    closest = a + t[:, None] * ab
    d2 = np.sum((world.centers - closest) ** 2, axis=-1)
    blocking = d2 <= radii**2
    if not np.any(blocking):
        return True
    # Exempt landmarks containing an endpoint.
    d_from = np.sum(rel**2, axis=-1) <= radii**2
    d_to = np.sum((world.centers - b) ** 2, axis=-1) <= radii**2
    return bool(np.all(~blocking | d_from | d_to))


def visible_coverage(world: World, apexes: np.ndarray, azimuths: np.ndarray,
                     camera: CameraModel, points: np.ndarray) -> np.ndarray:
    """Occlusion-aware version of ``sector_contains_points``.

    Returns a boolean ``(n_fovs, n_points)`` matrix: geometric sector
    coverage AND unobstructed line of sight.  The sector test is
    vectorised; the LoS check only runs on pairs that pass it.
    """
    apexes = np.asarray(apexes, dtype=float)
    points = np.asarray(points, dtype=float)
    geo = sector_contains_points(apexes, np.asarray(azimuths, dtype=float),
                                 camera.half_angle, camera.radius, points)
    out = np.zeros_like(geo)
    for i, j in zip(*np.nonzero(geo)):
        out[i, j] = line_of_sight(world, apexes[i], points[j])
    return out
