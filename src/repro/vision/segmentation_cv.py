"""Content-based segmentation baseline (the Fig. 6(a) comparator).

The same anchor-threshold loop as Algorithm 1, but the per-frame
decision compares *pixels* (frame differencing against the segment's
first frame) instead of FoVs.  Its cost therefore scales with
resolution, which is the entire point of Fig. 6(a): FoV segmentation is
resolution-independent and at least three orders of magnitude faster.
"""

from __future__ import annotations

import numpy as np

from repro.vision.framediff import frame_difference_similarity

__all__ = ["cv_segment_frames"]


def cv_segment_frames(frames: np.ndarray, threshold: float = 0.8
                      ) -> list[tuple[int, int]]:
    """Segment a frame sequence by frame-differencing similarity.

    Parameters
    ----------
    frames : ndarray, uint8, shape (k, H, W, C)
    threshold : float in (0, 1]
        Cut when similarity to the segment's anchor frame drops below it.

    Returns
    -------
    list of (start, stop)
        Half-open index ranges partitioning the sequence.
    """
    if frames.ndim != 4:
        raise ValueError("frames must have shape (k, H, W, C)")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    k = frames.shape[0]
    segments: list[tuple[int, int]] = []
    start = 0
    anchor = frames[0]
    for i in range(1, k):
        if frame_difference_similarity(anchor, frames[i]) < threshold:
            segments.append((start, i))
            start = i
            anchor = frames[i]
    segments.append((start, k))
    return segments
