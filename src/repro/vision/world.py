"""A 2-D world of coloured landmarks for the synthetic camera.

The world is a plan-view scatter of vertical pillars (circles with a
colour and a height).  It is deliberately simple: the CV baseline only
needs frames whose pixels respond plausibly to camera pose, and pillars
give exactly that -- rotation slides them across columns, approaching
them grows them, strafing produces parallax between near and far ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Landmark", "World", "random_world"]


@dataclass(frozen=True, slots=True)
class Landmark:
    """A vertical pillar: plan-view circle + colour + height.

    Parameters
    ----------
    x, y : float
        Centre in local metres.
    radius : float
        Plan-view radius, metres (> 0).
    color : tuple of 3 ints
        RGB in 0..255.
    height : float
        Physical height in metres (> 0); controls how much of a frame
        column the pillar fills at a given distance.
    """

    x: float
    y: float
    radius: float
    color: tuple[int, int, int]
    height: float = 10.0

    def __post_init__(self):
        if self.radius <= 0:
            raise ValueError("landmark radius must be positive")
        if self.height <= 0:
            raise ValueError("landmark height must be positive")
        if len(self.color) != 3 or not all(0 <= c <= 255 for c in self.color):
            raise ValueError("color must be three channels in 0..255")


class World:
    """Immutable landmark collection with columnar arrays for ray casting."""

    __slots__ = ("landmarks", "centers", "radii", "colors", "heights")

    def __init__(self, landmarks: list[Landmark]):
        self.landmarks = tuple(landmarks)
        n = len(self.landmarks)
        self.centers = np.array([[lm.x, lm.y] for lm in self.landmarks],
                                dtype=float).reshape(n, 2)
        self.radii = np.array([lm.radius for lm in self.landmarks], dtype=float)
        self.colors = np.array([lm.color for lm in self.landmarks], dtype=float)
        self.heights = np.array([lm.height for lm in self.landmarks], dtype=float)

    def __len__(self) -> int:
        return len(self.landmarks)


def random_world(rng: np.random.Generator, extent_m: float = 500.0,
                 n_landmarks: int = 180, radius_range=(2.0, 9.0),
                 height_range=(6.0, 40.0), center=(0.0, 0.0)) -> World:
    """Scatter landmarks uniformly in a square around ``center``.

    Defaults produce a built-up street scene -- building-scale pillars
    dense enough that most rendered columns hit something, so pixel
    similarity responds strongly to camera motion (which is what the
    frame-differencing baseline needs to be a meaningful comparator).
    """
    if n_landmarks < 1:
        raise ValueError("need at least one landmark")
    cx, cy = center
    xy = rng.uniform(-extent_m / 2.0, extent_m / 2.0, size=(n_landmarks, 2))
    xy += np.array([cx, cy])
    radii = rng.uniform(*radius_range, size=n_landmarks)
    heights = rng.uniform(*height_range, size=n_landmarks)
    colors = rng.integers(40, 256, size=(n_landmarks, 3))
    return World([
        Landmark(x=float(xy[i, 0]), y=float(xy[i, 1]), radius=float(radii[i]),
                 color=tuple(int(c) for c in colors[i]), height=float(heights[i]))
        for i in range(n_landmarks)
    ])
