"""Unit tests for the Section VII adaptive-parameter extensions."""

import numpy as np
import pytest

from repro import CameraModel, segment_trace
from repro.adaptive.threshold import (
    MotionProfile,
    estimate_threshold_for_duration,
    motion_profile,
)
from repro.adaptive.visibility import (
    OPEN_FIELD_M,
    classify_environment,
    estimate_radius_of_view,
)
from repro.core.segmentation import SegmentationConfig
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import rotation_scenario, translation_scenario
from repro.vision.world import Landmark, World, random_world


class TestSiteSurvey:
    def test_open_field(self):
        survey = estimate_radius_of_view(World([]), 0.0, 0.0)
        assert survey.median_m == OPEN_FIELD_M
        assert survey.hit_fraction == 0.0
        assert classify_environment(survey) == "highway"

    def test_dense_courtyard(self):
        # A tight ring of pillars ~15 m away in every direction.
        ring = [
            Landmark(15.0 * np.sin(a), 15.0 * np.cos(a), 3.0, (100, 100, 100))
            for a in np.linspace(0, 2 * np.pi, 24, endpoint=False)
        ]
        survey = estimate_radius_of_view(World(ring), 0.0, 0.0)
        assert survey.median_m < 20.0
        assert survey.hit_fraction > 0.9
        assert classify_environment(survey) == "residential"

    def test_street_canyon_directional(self):
        # Walls east and west, open north-south: median reflects the mix.
        walls = [Landmark(12.0, float(y), 2.0, (50, 50, 50))
                 for y in range(-100, 101, 4)]
        walls += [Landmark(-12.0, float(y), 2.0, (50, 50, 50))
                  for y in range(-100, 101, 4)]
        survey = estimate_radius_of_view(World(walls), 0.0, 0.0)
        assert survey.p25_m < 20.0          # the walls
        assert survey.ray_distances.max() == OPEN_FIELD_M  # the street

    def test_ray_count_validated(self):
        with pytest.raises(ValueError):
            estimate_radius_of_view(World([]), 0.0, 0.0, n_rays=4)

    def test_monotone_with_density(self, rng):
        sparse = random_world(np.random.default_rng(1), n_landmarks=30,
                              extent_m=400.0)
        dense = random_world(np.random.default_rng(1), n_landmarks=600,
                             extent_m=400.0)
        r_sparse = estimate_radius_of_view(sparse, 0.0, 0.0).median_m
        r_dense = estimate_radius_of_view(dense, 0.0, 0.0).median_m
        assert r_dense <= r_sparse


class TestMotionProfile:
    def test_stationary(self):
        trace = rotation_scenario(rate_deg_s=0.001, duration_s=5, fps=5,
                                  noise=SensorNoiseModel.ideal())
        p = motion_profile(trace)
        assert p.speed_mps == pytest.approx(0.0, abs=1e-6)

    def test_walk(self):
        trace = translation_scenario(theta_p=0.0, speed_mps=1.4,
                                     duration_s=10, fps=5,
                                     noise=SensorNoiseModel.ideal())
        p = motion_profile(trace)
        assert p.speed_mps == pytest.approx(1.4, rel=0.05)
        assert p.turn_rate_dps == pytest.approx(0.0, abs=1e-6)

    def test_rotation(self):
        trace = rotation_scenario(rate_deg_s=12.0, duration_s=10, fps=5,
                                  noise=SensorNoiseModel.ideal())
        p = motion_profile(trace)
        assert p.turn_rate_dps == pytest.approx(12.0, rel=0.05)

    def test_single_record(self):
        trace = rotation_scenario(duration_s=1, fps=1,
                                  noise=SensorNoiseModel.ideal())
        p = motion_profile(trace.slice(0, 1))
        assert p.speed_mps == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MotionProfile(speed_mps=-1.0, turn_rate_dps=0.0)


class TestThresholdEstimation:
    CAMERA = CameraModel()

    def test_stationary_gets_ceiling(self):
        p = MotionProfile(speed_mps=0.0, turn_rate_dps=0.0)
        assert estimate_threshold_for_duration(p, self.CAMERA, 5.0) == 0.95

    def test_faster_motion_lower_threshold(self):
        slow = MotionProfile(speed_mps=1.0, turn_rate_dps=5.0)
        fast = MotionProfile(speed_mps=5.0, turn_rate_dps=20.0)
        t_slow = estimate_threshold_for_duration(slow, self.CAMERA, 5.0)
        t_fast = estimate_threshold_for_duration(fast, self.CAMERA, 5.0)
        assert t_fast <= t_slow

    def test_longer_target_lower_threshold(self):
        p = MotionProfile(speed_mps=1.4, turn_rate_dps=6.0)
        t_short = estimate_threshold_for_duration(p, self.CAMERA, 2.0)
        t_long = estimate_threshold_for_duration(p, self.CAMERA, 10.0)
        assert t_long <= t_short

    def test_validation(self):
        p = MotionProfile(speed_mps=1.0, turn_rate_dps=1.0)
        with pytest.raises(ValueError):
            estimate_threshold_for_duration(p, self.CAMERA, 0.0)
        with pytest.raises(ValueError):
            estimate_threshold_for_duration(p, self.CAMERA, 1.0, floor=0.9,
                                            ceil=0.5)

    def test_achieves_target_duration_on_real_motion(self):
        """The closed-form threshold actually yields segments near the
        requested duration when applied to a matching recording."""
        target = 2.5
        trace = rotation_scenario(rate_deg_s=12.0, duration_s=30, fps=10,
                                  noise=SensorNoiseModel.ideal())
        profile = motion_profile(trace)
        thresh = estimate_threshold_for_duration(profile, self.CAMERA, target)
        segs = segment_trace(trace, self.CAMERA,
                             SegmentationConfig(threshold=thresh))
        durations = [s.t_end - s.t_start for s in segs[:-1]]
        assert durations, "expected multiple segments"
        assert np.mean(durations) == pytest.approx(target, rel=0.25)
