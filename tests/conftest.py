"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CameraModel
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection


@pytest.fixture
def camera() -> CameraModel:
    """The paper's default camera: alpha = 30 deg, R = 100 m."""
    return CameraModel(half_angle=30.0, radius=100.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def origin() -> GeoPoint:
    return GeoPoint(lat=40.003, lng=116.326)


@pytest.fixture
def projection(origin) -> LocalProjection:
    return LocalProjection(origin)
