"""Unit tests for segment abstraction (Eq. 11)."""

import numpy as np
import pytest

from repro import CameraModel, FoVTrace, abstract_segment, abstract_segments, segment_trace
from repro.core.abstraction import ABSTRACTION_STATS, segment_orientation_spread
from repro.core.fov import VideoSegment
from repro.core.segmentation import StreamingSegmenter


def make_trace(thetas, lat0=40.0, lng0=116.3):
    n = len(thetas)
    return FoVTrace(np.arange(n, dtype=float),
                    lat0 + np.linspace(0, 1e-5, n),
                    np.full(n, lng0), thetas)


def one_segment(trace):
    return VideoSegment(trace=trace, start=0, stop=len(trace))


class TestAbstractSegment:
    def test_position_is_arithmetic_mean(self):
        tr = make_trace([10.0, 20.0, 30.0])
        rep = abstract_segment(one_segment(tr))
        assert rep.lat == pytest.approx(float(np.mean(tr.lat)))
        assert rep.lng == pytest.approx(float(np.mean(tr.lng)))

    def test_time_bounds(self):
        tr = make_trace([0.0] * 5)
        rep = abstract_segment(one_segment(tr))
        assert rep.t_start == 0.0
        assert rep.t_end == 4.0

    def test_orientation_circular_mean_across_wrap(self):
        tr = make_trace([350.0, 10.0])
        rep = abstract_segment(one_segment(tr))
        # Circular mean of 350 and 10 is 0 -- NOT the arithmetic 180.
        assert min(rep.theta, 360.0 - rep.theta) == pytest.approx(0.0, abs=1e-9)

    def test_arithmetic_option_reproduces_paper_literal(self):
        tr = make_trace([350.0, 10.0])
        rep = abstract_segment(one_segment(tr), angle_mean="arithmetic")
        assert rep.theta == pytest.approx(180.0)

    def test_no_wrap_means_agree(self):
        tr = make_trace([10.0, 20.0, 30.0])
        circ = abstract_segment(one_segment(tr)).theta
        arit = abstract_segment(one_segment(tr), angle_mean="arithmetic").theta
        assert circ == pytest.approx(arit)

    def test_unknown_mode_raises(self):
        tr = make_trace([0.0])
        with pytest.raises(ValueError):
            abstract_segment(one_segment(tr), angle_mean="median")

    def test_ids_attached(self):
        tr = make_trace([0.0, 1.0])
        rep = abstract_segment(one_segment(tr), video_id="vid", segment_id=7)
        assert rep.key() == ("vid", 7)

    def test_stream_segment_accepted(self, camera):
        seg = StreamingSegmenter(camera)
        for rec in make_trace([0.0, 1.0, 2.0]):
            seg.push(rec)
        stream_seg = seg.finish()
        rep = abstract_segment(stream_seg, video_id="v")
        assert rep.t_start == 0.0
        assert rep.t_end == 2.0

    def test_degenerate_orientations_fall_back(self):
        # Perfectly opposed azimuths have no circular mean; the
        # abstraction must not crash (falls back to the first sample).
        tr = make_trace([0.0, 180.0])
        rep = abstract_segment(one_segment(tr))
        assert rep.theta in (0.0, 180.0)

    def test_degenerate_fallback_is_observable(self):
        # Regression: the fallback used to be silent.  It must pick the
        # first sample *and* count itself in ABSTRACTION_STATS.
        ABSTRACTION_STATS.reset()
        tr = make_trace([0.0, 90.0, 180.0, 270.0])  # resultant length 0
        rep = abstract_segment(one_segment(tr))
        assert rep.theta == 0.0  # the first sample, deterministically
        assert ABSTRACTION_STATS.theta_fallbacks == 1
        abstract_segment(one_segment(tr))
        assert ABSTRACTION_STATS.theta_fallbacks == 2
        ABSTRACTION_STATS.reset()
        assert ABSTRACTION_STATS.theta_fallbacks == 0

    def test_healthy_orientations_do_not_count_fallbacks(self):
        ABSTRACTION_STATS.reset()
        abstract_segment(one_segment(make_trace([10.0, 20.0, 30.0])))
        abstract_segment(one_segment(make_trace([350.0, 10.0])))
        assert ABSTRACTION_STATS.theta_fallbacks == 0


class TestAbstractSegments:
    def test_numbering_and_order(self, camera):
        tr = make_trace(np.linspace(0, 160, 80))
        segs = segment_trace(tr, camera)
        reps = abstract_segments(segs, video_id="v")
        assert [r.segment_id for r in reps] == list(range(len(segs)))
        assert all(r.video_id == "v" for r in reps)
        # Representatives are time-ordered and non-overlapping.
        for a, b in zip(reps, reps[1:]):
            assert a.t_end <= b.t_start

    def test_representative_inside_segment_hull(self, camera):
        tr = make_trace(np.linspace(0, 40, 30))
        reps = abstract_segments(segment_trace(tr, camera))
        eps = 1e-9  # np.mean of a constant array is only accurate to fp error
        for rep in reps:
            assert tr.lat.min() - eps <= rep.lat <= tr.lat.max() + eps
            assert tr.lng.min() - eps <= rep.lng <= tr.lng.max() + eps


class TestOrientationSpread:
    def test_zero_for_constant(self):
        tr = make_trace([90.0] * 4)
        assert segment_orientation_spread(one_segment(tr)) == pytest.approx(0.0)

    def test_grows_with_spread(self):
        tight = segment_orientation_spread(one_segment(make_trace([0, 5, 10.0])))
        loose = segment_orientation_spread(one_segment(make_trace([0, 60, 120.0])))
        assert tight < loose
