"""Packed-engine parity, batching, sharding, and clock injection.

The packed engine's whole contract is "identical results, faster":
these tests pin the bit-identical half of it on seeded workloads, for
single queries, batched ``execute_many``, and the process-sharded
fan-out; plus the injectable-clock determinism and the mask-first
ranking invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CameraModel
from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.core.ranking import CompositeRanker
from repro.core.retrieval import RetrievalEngine
from repro.traces.dataset import random_representative_fovs
from repro.traces.scenarios import CITY_ORIGIN

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def workload(seed, n_records, n_queries, radius_hi=400.0):
    rng = np.random.default_rng(seed)
    reps = random_representative_fovs(n_records, rng)
    queries = []
    for _ in range(n_queries):
        anchor = reps[int(rng.integers(len(reps)))]
        queries.append(Query(
            t_start=max(0.0, anchor.t_start - 300.0),
            t_end=anchor.t_end + 300.0,
            center=anchor.point,
            radius=float(rng.uniform(50.0, radius_hi)),
            top_n=int(rng.integers(1, 20))))
    return FoVIndex.bulk(reps), queries


def ranking(result):
    return [(r.fov.key(), r.distance, r.covers) for r in result.ranked]


def assert_same(got, want):
    assert got.candidates == want.candidates
    assert got.after_filter == want.after_filter
    assert ranking(got) == ranking(want)


class TestPackedParity:
    @pytest.mark.parametrize("strict", [True, False])
    def test_execute_matches_dynamic(self, strict):
        index, queries = workload(7, 2000, 40)
        dyn = RetrievalEngine(index, CAMERA, strict_cover=strict)
        pck = RetrievalEngine(index, CAMERA, strict_cover=strict,
                              engine="packed")
        for q in queries:
            assert_same(pck.execute(q), dyn.execute(q))

    def test_execute_many_matches_sequential(self):
        index, queries = workload(11, 2000, 48)
        pck = RetrievalEngine(index, CAMERA, engine="packed")
        batched = pck.execute_many(queries)
        for got, q in zip(batched, queries):
            assert_same(got, pck.execute(q))

    def test_composite_ranker_parity(self):
        index, queries = workload(13, 1500, 24)
        ranker = CompositeRanker()
        dyn = RetrievalEngine(index, CAMERA, ranker=ranker)
        pck = RetrievalEngine(index, CAMERA, ranker=ranker, engine="packed")
        for got, q in zip(pck.execute_many(queries), queries):
            assert_same(got, dyn.execute(q))

    def test_sharded_matches_sequential(self):
        index, queries = workload(17, 1500, 32)
        pck = RetrievalEngine(index, CAMERA, engine="packed")
        sharded = pck.execute_many(queries, shards=2)
        assert len(sharded) == len(queries)
        for got, q in zip(sharded, queries):
            assert_same(got, pck.execute(q))

    def test_packed_tracks_mutations_via_epoch(self):
        index, queries = workload(19, 400, 8)
        dyn = RetrievalEngine(index, CAMERA)
        pck = RetrievalEngine(index, CAMERA, engine="packed")
        for q in queries:
            assert_same(pck.execute(q), dyn.execute(q))
        extra = random_representative_fovs(50, np.random.default_rng(20))
        index.insert_many(extra)
        for q in queries:
            assert_same(pck.execute(q), dyn.execute(q))

    def test_packed_invalidated_by_delete_and_evict(self):
        """Non-incremental mutations must invalidate the packed view.

        The zero-copy serving story (flat snapshots, pool republish)
        hangs off the epoch: a delete or retention eviction bumps it,
        so the next packed read rebuilds instead of serving a stale
        snapshot containing the removed records.
        """
        index, queries = workload(43, 600, 10)
        dyn = RetrievalEngine(index, CAMERA)
        pck = RetrievalEngine(index, CAMERA, engine="packed")
        stale = index.packed_view()
        victim = index.records()[0]
        assert index.delete(victim)
        fresh = index.packed_view()
        assert fresh is not stale and fresh.epoch != stale.epoch
        assert len(fresh) == len(stale) - 1
        for q in queries:
            assert_same(pck.execute(q), dyn.execute(q))
        cutoff = float(np.median([r.t_end for r in index.records()]))
        assert index.evict_older_than(cutoff) > 0
        assert index.packed_view().epoch == index.epoch
        for q in queries:
            assert_same(pck.execute(q), dyn.execute(q))

    def test_empty_batch(self):
        index, _ = workload(23, 100, 1)
        pck = RetrievalEngine(index, CAMERA, engine="packed")
        assert pck.execute_many([]) == []

    def test_unknown_engine_rejected(self):
        index, _ = workload(23, 10, 1)
        with pytest.raises(ValueError):
            RetrievalEngine(index, CAMERA, engine="turbo")

    def test_packed_requires_rtree_backend(self):
        idx = FoVIndex(backend="linear")
        eng = RetrievalEngine(idx, CAMERA, engine="packed")
        with pytest.raises(TypeError):
            eng.execute(Query(t_start=0.0, t_end=1.0, center=CITY_ORIGIN,
                              radius=100.0))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), strict=st.booleans())
def test_prop_batched_equals_sequential(seed, strict):
    """execute_many on the packed engine == one-at-a-time, any workload."""
    index, queries = workload(seed, 300, 12)
    dyn = RetrievalEngine(index, CAMERA, strict_cover=strict)
    pck = RetrievalEngine(index, CAMERA, strict_cover=strict, engine="packed")
    want = [dyn.execute(q) for q in queries]
    for got, ref in zip(pck.execute_many(queries), want):
        assert_same(got, ref)


class TestClockInjection:
    def test_fake_clock_yields_deterministic_elapsed(self):
        index, queries = workload(29, 200, 4)
        ticks = iter(float(i) for i in range(100))
        eng = RetrievalEngine(index, CAMERA, clock=lambda: next(ticks))
        res = eng.execute(queries[0])
        assert res.elapsed_s == 1.0        # exactly two clock reads apart

    def test_batch_elapsed_is_shared(self):
        index, queries = workload(31, 200, 4)
        ticks = iter([10.0, 18.0])
        eng = RetrievalEngine(index, CAMERA, engine="packed",
                              clock=lambda: next(ticks))
        results = eng.execute_many(queries)
        assert [r.elapsed_s for r in results] == [2.0] * 4

    def test_core_reads_no_clock_itself(self):
        # The RF005 lint gate enforces this statically; spot-check that
        # retrieval imports its default timer from outside the core.
        import repro.core.retrieval as mod
        assert mod.default_timer.__module__ == "repro.net.clock"


class TestMaskFirstRanking:
    def test_ranker_sees_only_survivors(self):
        index, queries = workload(37, 1000, 12)
        seen: list[int] = []

        class RecordingRanker:
            def scores(self, query, camera, dist, dtheta, t_start, t_end):
                seen.append(len(dist))
                return -np.asarray(dist, dtype=float)

        eng = RetrievalEngine(index, CAMERA, ranker=RecordingRanker())
        for q in queries:
            seen.clear()
            res = eng.execute(q)
            if res.after_filter == 0:
                assert seen == []          # nothing survived: never called
            else:
                assert seen == [res.after_filter]
