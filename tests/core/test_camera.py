"""Unit tests for the camera model."""

import numpy as np
import pytest

from repro import CameraModel


class TestCameraModel:
    def test_defaults_match_paper(self):
        cam = CameraModel()
        assert cam.half_angle == 30.0
        assert cam.radius == 100.0
        assert cam.viewing_angle == 60.0

    def test_rejects_bad_half_angle(self):
        with pytest.raises(ValueError):
            CameraModel(half_angle=0.0)
        with pytest.raises(ValueError):
            CameraModel(half_angle=90.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            CameraModel(radius=0.0)

    def test_max_perpendicular_range(self):
        cam = CameraModel(half_angle=30.0, radius=100.0)
        assert cam.max_perpendicular_range == pytest.approx(100.0)

    def test_with_radius(self):
        cam = CameraModel().with_radius(20.0)
        assert cam.radius == 20.0
        assert cam.half_angle == 30.0

    def test_sector_at(self):
        cam = CameraModel()
        s = cam.sector_at(1.0, 2.0, 45.0)
        assert (s.apex.x, s.apex.y) == (1.0, 2.0)
        assert s.azimuth == 45.0
        assert s.half_angle == cam.half_angle
        assert s.radius == cam.radius

    def test_half_angle_rad(self):
        assert CameraModel(half_angle=45.0).half_angle_rad == pytest.approx(
            np.pi / 4)

    def test_frozen(self):
        cam = CameraModel()
        with pytest.raises(Exception):
            cam.radius = 5.0
