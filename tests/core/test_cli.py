"""Unit tests for the command-line front-end."""

import pytest

from repro.cli import main


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "city.fov"
    rc = main(["generate", "--providers", "4", "--seed", "7",
               "--out", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_creates_snapshot(self, tmp_path, capsys):
        path = tmp_path / "fresh.fov"
        assert main(["generate", "--providers", "3", "--seed", "1",
                     "--out", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "segments" in out

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.fov"
        b = tmp_path / "b.fov"
        main(["generate", "--providers", "3", "--seed", "5", "--out", str(a)])
        main(["generate", "--providers", "3", "--seed", "5", "--out", str(b)])
        assert a.read_bytes() == b.read_bytes()


class TestInspect:
    def test_summary(self, snapshot, capsys):
        assert main(["inspect", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "R-tree height" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        rc = main(["inspect", "--snapshot", str(tmp_path / "nope.fov")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.fov"
        bad.write_bytes(b"definitely not a snapshot")
        assert main(["inspect", "--snapshot", str(bad)]) == 2


class TestQuery:
    def test_query_runs(self, snapshot, capsys):
        # Inspect to find a plausible area, then query the city origin.
        rc = main(["query", "--snapshot", str(snapshot),
                   "--lat", "40.0046", "--lng", "116.3284",
                   "--t0", "0", "--t1", "5000", "--radius", "300",
                   "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "candidates" in out

    def test_packed_engine_matches_dynamic(self, snapshot, capsys):
        args = ["query", "--snapshot", str(snapshot),
                "--lat", "40.0046", "--lng", "116.3284",
                "--t0", "0", "--t1", "5000", "--radius", "300",
                "--top", "5"]
        assert main(args) == 0
        dynamic = capsys.readouterr().out
        assert main(args + ["--engine", "packed"]) == 0
        packed = capsys.readouterr().out
        # Identical rankings; only the reported latency may differ.
        strip = lambda out: [ln for ln in out.splitlines()
                             if ln.startswith("#")]
        assert strip(packed) == strip(dynamic)
        assert strip(dynamic)

    def test_invalid_radius_reports_error(self, snapshot, capsys):
        rc = main(["query", "--snapshot", str(snapshot),
                   "--lat", "40.0", "--lng", "116.3",
                   "--t0", "0", "--t1", "10", "--radius", "-5"])
        assert rc == 2


class TestVideoQuery:
    def test_text_report(self, snapshot, capsys):
        rc = main(["video-query", "--snapshot", str(snapshot),
                   "--video-id", "device-000-video-0",
                   "--radius", "200", "--threshold", "0.1", "--poi", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "query video device-000-video-0" in out
        assert "candidate videos" in out

    def test_engines_and_shards_agree(self, snapshot, capsys):
        def run(extra):
            rc = main(["video-query", "--snapshot", str(snapshot),
                       "--video-id", "device-001-video-0",
                       "--radius", "200", "--threshold", "0.1",
                       "--json"] + extra)
            assert rc == 0
            import json
            return json.loads(capsys.readouterr().out)["ranked"]

        base = run(["--engine", "dynamic"])
        assert run(["--engine", "packed"]) == base
        assert run(["--shards", "3"]) == base

    def test_dtw_scorer_and_trace(self, snapshot, capsys):
        rc = main(["video-query", "--snapshot", str(snapshot),
                   "--video-id", "device-002-video-0",
                   "--scorer", "dtw", "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "video.query" in out  # span tree printed

    def test_unknown_video_id_is_an_error(self, snapshot, capsys):
        rc = main(["video-query", "--snapshot", str(snapshot),
                   "--video-id", "nope"])
        assert rc == 2
        assert "no segments" in capsys.readouterr().err


class TestNearest:
    def test_nearest_lists_k(self, snapshot, capsys):
        rc = main(["nearest", "--snapshot", str(snapshot),
                   "--lat", "40.0046", "--lng", "116.3284",
                   "--t", "1000", "--k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("#") == 3

    def test_time_weight_accepted(self, snapshot):
        assert main(["nearest", "--snapshot", str(snapshot),
                     "--lat", "40.0046", "--lng", "116.3284",
                     "--t", "1000", "--k", "2",
                     "--time-weight", "1.5"]) == 0


class TestJsonOutput:
    def test_query_json(self, snapshot, capsys):
        import json
        rc = main(["query", "--snapshot", str(snapshot),
                   "--lat", "40.0046", "--lng", "116.3284",
                   "--t0", "0", "--t1", "5000", "--radius", "300",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "results" in payload and "candidates" in payload
        assert payload["query"]["radius"] == 300.0


class TestCoverage:
    def test_coverage_summary(self, snapshot, capsys):
        rc = main(["coverage", "--snapshot", str(snapshot), "--cell", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "covered:" in out and "hotspot" in out

    def test_coverage_empty_snapshot(self, tmp_path, capsys):
        from repro.core.snapshot import save_snapshot
        path = tmp_path / "empty.fov"
        save_snapshot(path, [])
        assert main(["coverage", "--snapshot", str(path)]) == 0
        assert "empty" in capsys.readouterr().out


class TestPack:
    def test_pack_writes_attachable_fovpack(self, snapshot, tmp_path, capsys):
        out = tmp_path / "city.fovpack"
        rc = main(["pack", "--snapshot", str(snapshot),
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "verified" in text and "schema v1" in text
        # The file is a genuine flat snapshot: attach and compare.
        from repro.core.flatsnap import load_snapshot_file
        from repro.core.snapshot import load_snapshot
        index, records = load_snapshot(snapshot)
        attached = load_snapshot_file(out)
        assert len(attached) == len(records)
        assert attached.epoch == index.epoch

    def test_pack_defaults_to_fovpack_suffix(self, snapshot, capsys):
        assert main(["pack", "--snapshot", str(snapshot)]) == 0
        sidecar = snapshot.with_suffix(".fovpack")
        assert sidecar.exists()
        assert str(sidecar) in capsys.readouterr().out

    def test_pack_missing_snapshot_is_an_error(self, tmp_path, capsys):
        rc = main(["pack", "--snapshot", str(tmp_path / "nope.fov")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestIngestBatchFlags:
    def test_batched_wal_ingest_converges(self, tmp_path, capsys):
        import json
        wal = tmp_path / "ingest.wal"
        rc = main(["ingest", "--providers", "6", "--seed", "3",
                   "--drop", "0.1", "--corrupt", "0.05",
                   "--batch", "4", "--wal", str(wal),
                   "--admission-capacity", "16", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["batch"] == 4
        assert report["all_bundles_delivered"] is True
        assert report["parity_with_lossless"] is True
        assert report["wal"]["appends"] == 6
        assert report["wal"]["syncs"] >= 1
        assert wal.exists()
        assert report["shed"] == 0

    def test_batched_sharded_ingest_converges(self, capsys):
        import json
        rc = main(["ingest", "--providers", "6", "--seed", "2",
                   "--shards", "3", "--batch", "3", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["parity_with_lossless"] is True
        assert report["shards"] == 3
