"""CLI observability surfaces: ``metrics`` subcommand and ``--trace``."""

import json

import pytest

from repro.cli import main
from repro.obs import parse_prometheus


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "city.fov"
    rc = main(["generate", "--providers", "4", "--seed", "7",
               "--out", str(path)])
    assert rc == 0
    return path


class TestMetricsCommand:
    def test_prometheus_output_round_trips(self, snapshot, capsys):
        rc = main(["metrics", "--snapshot", str(snapshot),
                   "--queries", "16", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        families = parse_prometheus(out)

        # the whole instrumented surface shows up in one snapshot
        for name in ("query_requests", "query_cache_hits",
                     "query_cache_misses", "cache_hits", "cache_misses",
                     "index_records_live", "packed_descents",
                     "span_duration_s"):
            assert name in families, f"missing family {name}"

        # each of the 16 queries ran twice: cold misses, then warm hits
        (requests,) = families["query_requests"].samples
        assert requests.value == 32
        (hits,) = families["cache_hits"].samples
        (misses,) = families["cache_misses"].samples
        assert hits.value == 16
        assert misses.value == 16

        # histogram series are well-formed: +Inf bucket equals count
        spans = families["span_duration_s"]
        assert spans.kind == "histogram"
        inf = {tuple(sorted(s.labels.items())): s.value
               for s in spans.samples if s.labels.get("le") == "+Inf"}
        assert inf and all(v > 0 for v in inf.values())

    def test_json_output_matches_prometheus_numbers(self, snapshot, capsys):
        rc = main(["metrics", "--snapshot", str(snapshot),
                   "--queries", "8", "--seed", "3", "--format", "json"])
        assert rc == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["query.requests"]["samples"][0]["value"] == 16
        assert blob["cache.hits"]["samples"][0]["value"] == 8
        assert blob["span.duration_s"]["type"] == "histogram"

    def test_dynamic_engine_variant_runs(self, snapshot, capsys):
        rc = main(["metrics", "--snapshot", str(snapshot),
                   "--queries", "4", "--engine", "dynamic"])
        assert rc == 0
        families = parse_prometheus(capsys.readouterr().out)
        # the recorder families exist (registered up front) but the
        # dynamic engine never descends the packed tree
        assert families["packed_descents"].samples[0].value == 0
        assert families["query_requests"].samples[0].value == 8

    def test_missing_snapshot_is_an_error(self, tmp_path, capsys):
        rc = main(["metrics", "--snapshot", str(tmp_path / "nope.fov")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestQueryTrace:
    def test_trace_flag_prints_the_span_tree(self, snapshot, capsys):
        rc = main(["query", "--snapshot", str(snapshot),
                   "--lat", "40.0046", "--lng", "116.3284",
                   "--t0", "0", "--t1", "5000", "--radius", "300",
                   "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        tree = out.split("trace:", 1)[1]
        assert "query.execute" in tree
        assert "query.rank" in tree
        assert " ms" in tree
        # nesting is rendered by indentation under the root span
        root_line = next(line for line in tree.splitlines()
                         if line.startswith("query.execute"))
        child_lines = [line for line in tree.splitlines()
                       if line.startswith("  query.")]
        assert root_line and child_lines

    def test_without_flag_no_trace_is_printed(self, snapshot, capsys):
        rc = main(["query", "--snapshot", str(snapshot),
                   "--lat", "40.0046", "--lng", "116.3284",
                   "--t0", "0", "--t1", "5000", "--radius", "300"])
        assert rc == 0
        assert "trace:" not in capsys.readouterr().out


class TestIngestTrace:
    def test_trace_flag_prints_the_ingest_span(self, capsys):
        rc = main(["ingest", "--providers", "2", "--seed", "1", "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace (last bundle):" in out
        assert "server.ingest_bundle" in out
