"""Tests for dedup clustering, bootstrap statistics, and the stadium
scenario (the paper's grandstand orientation example end-to-end)."""

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, CloudServer, Query
from repro.core.dedup import SegmentClusters, UnionFind, cluster_segments
from repro.core.fov import RepresentativeFoV
from repro.eval.statistics import bootstrap_ci, paired_bootstrap_diff
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import CITY_ORIGIN, stadium_scenario

PROJ = LocalProjection(CITY_ORIGIN)


def rep_local(x, y, theta, t0=0.0, t1=10.0, vid="v", sid=0):
    p = PROJ.to_geo(x, y)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=theta,
                             t_start=t0, t_end=t1, video_id=vid,
                             segment_id=sid)


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)   # already connected
        groups = uf.groups()
        assert sorted(map(len, groups)) == [1, 1, 3]

    def test_find_idempotent(self):
        uf = UnionFind(4)
        uf.union(2, 3)
        assert uf.find(2) == uf.find(3)
        assert uf.find(0) != uf.find(2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestClusterSegments:
    def test_empty(self, camera):
        out = cluster_segments([], camera)
        assert out.n_clusters == 0 and out.redundancy == 0.0

    def test_duplicates_merge(self, camera):
        reps = [rep_local(0.0, 0.0, 0.0, vid=f"v{i}", sid=i)
                for i in range(4)]
        out = cluster_segments(reps, camera, threshold=0.7)
        assert out.n_clusters == 1
        assert out.redundancy == pytest.approx(0.75)

    def test_distinct_viewpoints_stay_apart(self, camera):
        reps = [rep_local(0.0, 0.0, 0.0, sid=0),
                rep_local(0.0, 0.0, 180.0, sid=1),
                rep_local(500.0, 0.0, 0.0, sid=2)]
        out = cluster_segments(reps, camera, threshold=0.5)
        assert out.n_clusters == 3

    def test_time_overlap_gate(self, camera):
        now = rep_local(0.0, 0.0, 0.0, t0=0.0, t1=10.0, sid=0)
        later = rep_local(0.0, 0.0, 0.0, t0=100.0, t1=110.0, sid=1)
        gated = cluster_segments([now, later], camera, threshold=0.7)
        assert gated.n_clusters == 2
        ungated = cluster_segments([now, later], camera, threshold=0.7,
                                   time_overlap_required=False)
        assert ungated.n_clusters == 1

    def test_exemplar_is_longest(self, camera):
        short = rep_local(0.0, 0.0, 0.0, t0=0.0, t1=2.0, sid=0)
        long_ = rep_local(0.0, 0.0, 1.0, t0=0.0, t1=9.0, sid=1)
        out = cluster_segments([short, long_], camera, threshold=0.5)
        assert out.exemplars() == [long_]

    def test_grid_blocking_matches_exhaustive(self, camera, rng):
        """The grid-hash never misses a pair the full O(n^2) pass links."""
        from repro.core.similarity import scalar_similarity
        reps = []
        for i in range(60):
            x, y = rng.uniform(-300, 300, 2)
            reps.append(rep_local(float(x), float(y),
                                  float(rng.uniform(0, 360)), sid=i))
        out = cluster_segments(reps, camera, threshold=0.5,
                               time_overlap_required=False)
        # Exhaustive single-linkage reference.
        uf = UnionFind(len(reps))
        xy = PROJ.to_local_arrays([f.lat for f in reps],
                                  [f.lng for f in reps])
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                s = scalar_similarity(
                    float(xy[j, 0] - xy[i, 0]), float(xy[j, 1] - xy[i, 1]),
                    reps[i].theta, reps[j].theta,
                    camera.half_angle, camera.radius)
                if s >= 0.5:
                    uf.union(i, j)
        want = sorted(sorted(reps[i].key() for i in g) for g in uf.groups())
        got = sorted(sorted(f.key() for f in c) for c in out.clusters)
        assert got == want

    def test_threshold_validated(self, camera):
        with pytest.raises(ValueError):
            cluster_segments([], camera, threshold=0.0)


class TestBootstrap:
    def test_degenerate_sample(self):
        ci = bootstrap_ci([5.0] * 20)
        assert ci.estimate == ci.lo == ci.hi == 5.0

    def test_interval_brackets_mean(self, rng):
        data = rng.normal(10.0, 2.0, 200)
        ci = bootstrap_ci(data, rng=rng)
        assert ci.lo <= ci.estimate <= ci.hi
        assert ci.contains(float(np.mean(data)))
        # Roughly mean +/- 2 se.
        se = 2.0 / np.sqrt(200)
        assert (ci.hi - ci.lo) == pytest.approx(2 * 1.96 * se, rel=0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_boot=10)

    def test_paired_diff_detects_systematic_gap(self, rng):
        base = rng.uniform(0, 1, 100)
        better = np.clip(base + 0.2, 0, 2)
        ci = paired_bootstrap_diff(better, base, rng=rng)
        assert ci.lo > 0.0, "a 0.2 systematic gap must exclude zero"

    def test_paired_diff_null(self, rng):
        a = rng.normal(0, 1, 150)
        b = a + rng.normal(0, 0.01, 150)
        ci = paired_bootstrap_diff(a, b, rng=rng)
        assert ci.contains(0.0)

    def test_paired_length_checked(self):
        with pytest.raises(ValueError):
            paired_bootstrap_diff([1.0], [1.0, 2.0])


class TestStadiumScenario:
    def test_generation(self):
        pairs = stadium_scenario(n_cameras=12, facing_fraction=0.5,
                                 noise=SensorNoiseModel.ideal())
        assert len(pairs) == 12
        assert sum(1 for _, faces in pairs if faces) == 6

    def test_orientation_filter_separates_grandstand_from_match(self, camera):
        """The paper's example: a camera on the ring filming Merkel is
        useless for a World Cup query.  The orientation filter must
        return exactly the stage-facing cameras."""
        pairs = stadium_scenario(n_cameras=16, ring_radius_m=60.0,
                                 facing_fraction=0.5,
                                 noise=SensorNoiseModel.ideal())
        server = CloudServer(camera)
        truth_facing = set()
        for k, (trace, faces) in enumerate(pairs):
            client = ClientPipeline(f"fan-{k}", camera)
            bundle = client.record_trace(trace, video_id=f"fan-{k}-vid")
            server.register_client(client)
            server.receive_bundle(bundle.payload, device_id=f"fan-{k}")
            if faces:
                truth_facing.update(r.key() for r in bundle.representatives)
        stage = PROJ.to_geo(0.0, 0.0)
        res = server.query(Query(t_start=0.0, t_end=30.0, center=stage,
                                 radius=70.0, top_n=16))
        got = set(res.keys())
        assert got == truth_facing, (
            "exactly the stage-facing cameras must match the stage query")

    def test_validation(self):
        with pytest.raises(ValueError):
            stadium_scenario(n_cameras=0)
        with pytest.raises(ValueError):
            stadium_scenario(facing_fraction=1.5)
