"""Flat snapshot codec: round-trip, zero-copy attach, integrity.

The ``FOVPACK1`` buffer is the contract between the process that built
a packed view and every process that serves from it (pool workers over
shared memory, read-only loaders over mmap) -- so these tests pin both
halves: the attached view must be *bit-identical* to the source view
(columns, grid, and query answers), and any damaged buffer must be
rejected loudly.
"""

import numpy as np
import pytest

from repro import CameraModel
from repro.core.flatsnap import (FLATSNAP_MAGIC, load_snapshot_file,
                                 pack_snapshot, unpack_snapshot,
                                 write_snapshot_file)
from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.core.retrieval import RetrievalEngine, _batch_execute
from repro.net.clock import default_timer
from repro.traces.dataset import random_representative_fovs

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def workload(seed=3, n_records=1500, n_queries=24):
    rng = np.random.default_rng(seed)
    reps = random_representative_fovs(n_records, rng)
    queries = []
    for _ in range(n_queries):
        anchor = reps[int(rng.integers(len(reps)))]
        queries.append(Query(
            t_start=max(0.0, anchor.t_start - 300.0),
            t_end=anchor.t_end + 300.0,
            center=anchor.point,
            radius=float(rng.uniform(50.0, 400.0))))
    return FoVIndex.bulk(reps), queries


def ranking(result):
    return [(r.fov.key(), r.distance, r.covers, r.score)
            for r in result.ranked]


_COLUMNS = ("lat", "lng", "theta", "t_start", "t_end",
            "segment_ids", "key_rank", "video_ids")
_GRID_ARRAYS = ("cell_offsets", "row_ids", "fused")
_GRID_SCALARS = ("n", "width", "height", "slices", "x0", "y0", "t0",
                 "x1", "y1", "t1", "inv_cw", "inv_ch", "inv_ct", "max_dur")


class TestRoundTrip:
    def test_columns_and_grid_bit_identical(self):
        index, _ = workload()
        view = index.packed_view()
        attached = unpack_snapshot(pack_snapshot(view))
        assert len(attached) == len(view)
        assert attached.epoch == view.epoch
        for name in _COLUMNS:
            assert np.array_equal(getattr(attached, name),
                                  getattr(view, name)), name
        for name in _GRID_ARRAYS:
            assert np.array_equal(getattr(attached.grid, name),
                                  getattr(view.grid, name)), name
        for name in _GRID_SCALARS:
            assert getattr(attached.grid, name) == getattr(view.grid, name)

    def test_query_parity_through_attached_view(self):
        index, queries = workload()
        view = index.packed_view()
        attached = unpack_snapshot(pack_snapshot(view))
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        want = engine.execute_many(queries)
        got = _batch_execute(attached, CAMERA, True, engine.ranker,
                             queries, default_timer)
        for a, b in zip(got, want):
            assert a.candidates == b.candidates
            assert a.after_filter == b.after_filter
            assert ranking(a) == ranking(b)

    def test_attach_is_zero_copy_and_read_only(self):
        index, _ = workload(n_records=200, n_queries=1)
        blob = pack_snapshot(index.packed_view())
        attached = unpack_snapshot(blob)
        # Views alias the buffer (no copy)...
        assert attached.lat.base is not None
        assert attached.grid.fused.base is not None
        # ...and are frozen, as the packed-view contract requires.
        with pytest.raises(ValueError):
            attached.lat[0] = 0.0
        with pytest.raises(ValueError):
            attached.grid.fused[0, 0] = 0.0
        # Lazy records: only materialised on access, never stored.
        rec = attached.records[0]
        assert rec == index.records()[0] or rec in index.records()

    def test_empty_index_round_trips(self):
        index = FoVIndex.bulk([])
        attached = unpack_snapshot(pack_snapshot(index.packed_view()))
        assert len(attached) == 0
        q = Query(t_start=0.0, t_end=1.0,
                  center=workload(n_records=10, n_queries=1)[1][0].center,
                  radius=100.0)
        [res] = _batch_execute(attached, CAMERA, True,
                               RetrievalEngine(index, CAMERA).ranker,
                               [q], default_timer)
        assert res.candidates == 0 and res.ranked == []

    def test_file_write_and_mmap_load(self, tmp_path):
        index, queries = workload(n_records=600, n_queries=8)
        view = index.packed_view()
        path = tmp_path / "city.fovpack"
        nbytes = write_snapshot_file(path, view)
        assert path.stat().st_size == nbytes
        loaded = load_snapshot_file(path)
        assert np.array_equal(loaded.grid.fused, view.grid.fused)
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        for q, want in zip(queries, engine.execute_many(queries)):
            [got] = _batch_execute(loaded, CAMERA, True, engine.ranker,
                                   [q], default_timer)
            assert ranking(got) == ranking(want)


class TestIntegrity:
    @pytest.fixture()
    def blob(self):
        index, _ = workload(n_records=300, n_queries=1)
        return pack_snapshot(index.packed_view())

    def test_bit_flip_fails_crc(self, blob):
        for pos in (100, len(blob) // 2, len(blob) - 1):
            bad = bytearray(blob)
            bad[pos] ^= 0x40
            with pytest.raises(ValueError, match="CRC32"):
                unpack_snapshot(bytes(bad))

    def test_flip_in_length_field_still_raises(self, blob):
        # A flip landing in the header's total-length field surfaces as
        # truncation/garbage rather than a CRC mismatch -- what matters
        # is that every damaged buffer raises ValueError.
        bad = bytearray(blob)
        bad[20] ^= 0x40
        with pytest.raises(ValueError):
            unpack_snapshot(bytes(bad))

    def test_truncation_reported_as_truncation(self, blob):
        with pytest.raises(ValueError, match="truncated"):
            unpack_snapshot(blob[:-7])
        with pytest.raises(ValueError, match="shorter than its header"):
            unpack_snapshot(blob[:16])

    def test_oversized_buffer_reads_declared_span(self, blob):
        # Shared-memory segments round up to a page; the tail past the
        # declared total must be ignored, not treated as corruption.
        attached = unpack_snapshot(blob + b"\x00" * 512)
        assert len(attached) == 300

    def test_bad_magic_and_version(self, blob):
        bad = bytearray(blob)
        bad[:8] = b"NOTAPACK"
        with pytest.raises(ValueError, match="magic"):
            unpack_snapshot(bytes(bad))
        bad = bytearray(blob)
        bad[8] = 99                        # version field
        with pytest.raises(ValueError, match="version"):
            unpack_snapshot(bytes(bad))

    def test_skip_verify_trusts_buffer(self, blob):
        # verify=False skips only the checksum -- structure checks stay.
        assert len(unpack_snapshot(blob, verify=False)) == 300
        assert FLATSNAP_MAGIC == blob[:8]
