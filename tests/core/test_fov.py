"""Unit tests for FoV record/trace/segment/representative types."""

import numpy as np
import pytest

from repro.core.fov import FoV, FoVTrace, RepresentativeFoV, VideoSegment
from repro.geo.coords import GeoPoint


def make_trace(n=10, dt=0.1):
    t = np.arange(n) * dt
    lat = 40.0 + np.linspace(0, 1e-4, n)
    lng = np.full(n, 116.3)
    theta = np.linspace(0, 45, n)
    return FoVTrace(t, lat, lng, theta)


class TestFoV:
    def test_point_property(self):
        f = FoV(t=1.0, lat=40.0, lng=116.0, theta=90.0)
        assert f.point == GeoPoint(40.0, 116.0)


class TestFoVTrace:
    def test_length_and_indexing(self):
        tr = make_trace(5)
        assert len(tr) == 5
        f = tr[2]
        assert f.t == pytest.approx(0.2)
        assert f.theta == pytest.approx(22.5)

    def test_iteration_matches_indexing(self):
        tr = make_trace(4)
        assert [f.t for f in tr] == [tr[i].t for i in range(4)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FoVTrace([], [], [], [])

    def test_rejects_non_increasing_time(self):
        with pytest.raises(ValueError):
            FoVTrace([0.0, 0.0], [40, 40], [116, 116], [0, 0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            FoVTrace([0.0, 1.0], [40], [116, 116], [0, 0])

    def test_theta_normalised(self):
        tr = FoVTrace([0.0], [40.0], [116.0], [370.0])
        assert tr.theta[0] == pytest.approx(10.0)

    def test_from_records_roundtrip(self):
        tr = make_trace(6)
        tr2 = FoVTrace.from_records(list(tr))
        assert np.allclose(tr2.t, tr.t)
        assert np.allclose(tr2.theta, tr.theta)

    def test_from_records_empty_raises(self):
        with pytest.raises(ValueError):
            FoVTrace.from_records([])

    def test_slice(self):
        tr = make_trace(10)
        sub = tr.slice(2, 5)
        assert len(sub) == 3
        assert sub[0].t == tr[2].t
        assert sub.projection is tr.projection

    def test_slice_bounds_checked(self):
        tr = make_trace(5)
        with pytest.raises(IndexError):
            tr.slice(3, 3)
        with pytest.raises(IndexError):
            tr.slice(0, 6)

    def test_local_xy_anchored_at_first_fix(self):
        tr = make_trace(5)
        xy = tr.local_xy()
        assert xy.shape == (5, 2)
        assert np.allclose(xy[0], [0.0, 0.0])
        assert xy[-1, 1] > 0  # northward drift

    def test_local_xy_cached(self):
        tr = make_trace(5)
        assert tr.local_xy() is tr.local_xy()

    def test_from_local_roundtrip(self, projection):
        t = np.array([0.0, 1.0, 2.0])
        xy = np.array([[0.0, 0.0], [10.0, 5.0], [20.0, -3.0]])
        theta = np.array([0.0, 10.0, 20.0])
        tr = FoVTrace.from_local(t, xy, theta, projection)
        back = tr.local_xy()
        # Trace re-anchors at its own first fix; shape is preserved.
        assert np.allclose(back - back[0], xy - xy[0], atol=1e-5)

    def test_duration(self):
        assert make_trace(11, dt=0.5).duration == pytest.approx(5.0)


class TestVideoSegment:
    def test_times_and_length(self):
        tr = make_trace(10)
        seg = VideoSegment(trace=tr, start=2, stop=6)
        assert len(seg) == 4
        assert seg.t_start == tr[2].t
        assert seg.t_end == tr[5].t

    def test_bounds_validated(self):
        tr = make_trace(5)
        with pytest.raises(ValueError):
            VideoSegment(trace=tr, start=3, stop=3)
        with pytest.raises(ValueError):
            VideoSegment(trace=tr, start=0, stop=6)

    def test_fovs_returns_subtrace(self):
        tr = make_trace(8)
        seg = VideoSegment(trace=tr, start=1, stop=4)
        sub = seg.fovs()
        assert len(sub) == 3
        assert sub[0].t == tr[1].t


class TestRepresentativeFoV:
    def test_validates_interval(self):
        with pytest.raises(ValueError):
            RepresentativeFoV(lat=0, lng=0, theta=0, t_start=5.0, t_end=4.0)

    def test_key_and_duration(self):
        rep = RepresentativeFoV(lat=0, lng=0, theta=0, t_start=1.0, t_end=3.0,
                                video_id="v", segment_id=2)
        assert rep.key() == ("v", 2)
        assert rep.duration == 2.0

    def test_point(self):
        rep = RepresentativeFoV(lat=40.0, lng=116.0, theta=0, t_start=0, t_end=1)
        assert rep.point == GeoPoint(40.0, 116.0)
