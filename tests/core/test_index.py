"""Unit tests for the spatio-temporal FoV index (Section V-A)."""

import numpy as np
import pytest

from repro.core.fov import RepresentativeFoV
from repro.core.index import FoVIndex, fov_box, query_box
from repro.core.query import Query
from repro.geo.coords import GeoPoint
from repro.geo.earth import radius_to_degrees
from repro.traces.dataset import random_representative_fovs

P = GeoPoint(40.003, 116.326)


def rep_at(lat, lng, t0, t1, theta=0.0, vid="v", sid=0):
    return RepresentativeFoV(lat=lat, lng=lng, theta=theta,
                             t_start=t0, t_end=t1, video_id=vid, segment_id=sid)


class TestBoxes:
    def test_fov_box_is_degenerate_segment(self):
        # Section V-A: min/max share lng and lat; time spans [t_s, t_e].
        rep = rep_at(40.0, 116.0, 5.0, 9.0)
        bmin, bmax = fov_box(rep)
        assert np.allclose(bmin[:2], bmax[:2])
        assert bmin[2] == 5.0 and bmax[2] == 9.0
        assert bmin[0] == 116.0 and bmin[1] == 40.0   # lng first, lat second

    def test_query_box_conversion(self):
        q = Query(t_start=1.0, t_end=2.0, center=P, radius=100.0)
        bmin, bmax = query_box(q)
        r_lng, r_lat = radius_to_degrees(100.0, P.lat)
        assert bmax[0] - bmin[0] == pytest.approx(2 * r_lng)
        assert bmax[1] - bmin[1] == pytest.approx(2 * r_lat)
        assert (bmin[2], bmax[2]) == (1.0, 2.0)


class TestFoVIndex:
    def test_backends_agree(self, rng):
        reps = random_representative_fovs(400, rng)
        rt = FoVIndex(backend="rtree")
        lin = FoVIndex(backend="linear")
        rt.insert_many(reps)
        lin.insert_many(reps)
        assert len(rt) == len(lin) == 400
        for _ in range(20):
            center = reps[int(rng.integers(400))].point
            t0 = float(rng.uniform(0, 86000))
            q = Query(t_start=t0, t_end=t0 + 600, center=center,
                      radius=float(rng.uniform(50, 500)))
            a = sorted(f.key() for f in rt.range_search(q))
            b = sorted(f.key() for f in lin.range_search(q))
            assert a == b

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            FoVIndex(backend="btree")

    def test_linear_rejects_rtree_config(self):
        from repro.spatial.rtree import RTreeConfig
        with pytest.raises(ValueError):
            FoVIndex(backend="linear", rtree_config=RTreeConfig())

    def test_temporal_filtering(self):
        idx = FoVIndex()
        idx.insert(rep_at(P.lat, P.lng, 0.0, 10.0, sid=0))
        idx.insert(rep_at(P.lat, P.lng, 100.0, 110.0, sid=1))
        q = Query(t_start=0.0, t_end=50.0, center=P, radius=100.0)
        found = idx.range_search(q)
        assert [f.segment_id for f in found] == [0]

    def test_temporal_touching_counts(self):
        # Closed intervals: a segment ending exactly at t_start matches.
        idx = FoVIndex()
        idx.insert(rep_at(P.lat, P.lng, 0.0, 10.0))
        q = Query(t_start=10.0, t_end=20.0, center=P, radius=100.0)
        assert len(idx.range_search(q)) == 1

    def test_spatial_filtering(self):
        idx = FoVIndex()
        near = rep_at(P.lat, P.lng, 0.0, 1.0, sid=0)
        far = rep_at(P.lat + 0.1, P.lng, 0.0, 1.0, sid=1)   # ~11 km north
        idx.insert(near)
        idx.insert(far)
        q = Query(t_start=0.0, t_end=1.0, center=P, radius=200.0)
        assert [f.segment_id for f in idx.range_search(q)] == [0]

    def test_count_matches_search(self, rng):
        reps = random_representative_fovs(200, rng)
        idx = FoVIndex()
        idx.insert_many(reps)
        q = Query(t_start=0.0, t_end=86400.0, center=P, radius=3000.0)
        assert idx.count_in_range(q) == len(idx.range_search(q))

    def test_delete(self):
        idx = FoVIndex()
        rep = rep_at(P.lat, P.lng, 0.0, 1.0)
        idx.insert(rep)
        assert idx.delete(rep)
        assert len(idx) == 0
        assert not idx.delete(rep)

    def test_bulk_equals_incremental(self, rng):
        reps = random_representative_fovs(500, rng)
        inc = FoVIndex()
        inc.insert_many(reps)
        blk = FoVIndex.bulk(reps)
        assert len(blk) == len(inc)
        q = Query(t_start=0.0, t_end=86400.0, center=P, radius=2000.0)
        assert sorted(f.key() for f in blk.range_search(q)) == \
            sorted(f.key() for f in inc.range_search(q))

    def test_bulk_empty(self):
        idx = FoVIndex.bulk([])
        assert len(idx) == 0


class TestInsertMany:
    def test_one_epoch_bump_per_batch(self, rng):
        idx = FoVIndex()
        epoch = idx.epoch
        idx.insert_many(random_representative_fovs(100, rng))
        assert idx.epoch == epoch + 1

    def test_bulk_append_branch_matches_loop(self, rng):
        # Above BULK_APPEND_MIN the rtree backend rebuilds the whole
        # tree via STR bulk load; the result must be indistinguishable
        # from per-record insertion.
        from repro.core.index import BULK_APPEND_MIN
        n = BULK_APPEND_MIN + 50
        reps = random_representative_fovs(n, rng)
        seed = random_representative_fovs(10, np.random.default_rng(7))
        bulk = FoVIndex()
        bulk.insert_many(seed)
        assert bulk.insert_many(reps) == n          # rebuild branch
        loop = FoVIndex()
        loop.insert_many(seed)
        for rep in reps:                            # per-record branch
            loop.insert(rep)
        assert bulk.content_digest() == loop.content_digest()
        q = Query(t_start=0.0, t_end=86400.0, center=P, radius=3000.0)
        assert sorted(f.key() for f in bulk.range_search(q)) == \
            sorted(f.key() for f in loop.range_search(q))

    def test_non_finite_batch_rejected_atomically(self, rng):
        idx = FoVIndex()
        idx.insert_many(random_representative_fovs(20, rng))
        epoch, digest = idx.epoch, idx.content_digest()
        good = random_representative_fovs(5, rng)
        bad = rep_at(float("nan"), 116.3, 0.0, 1.0, vid="bad")
        with pytest.raises(ValueError, match="nothing from this batch"):
            idx.insert_many(good[:3] + [bad] + good[3:])
        assert idx.epoch == epoch
        assert idx.content_digest() == digest

    def test_content_digest_is_order_independent(self, rng):
        reps = random_representative_fovs(50, rng)
        fwd, rev = FoVIndex(), FoVIndex(backend="linear")
        fwd.insert_many(reps)
        rev.insert_many(list(reversed(reps)))
        assert fwd.content_digest() == rev.content_digest()

    def test_mutation_log_is_gone(self):
        # The orphaned mutation log (mutations_since / _mutlog) was
        # removed; nothing should quietly resurrect per-insert append
        # overhead on the hot path.
        idx = FoVIndex()
        assert not hasattr(idx, "mutations_since")
        assert not hasattr(idx, "_mutlog")
        import repro.core.index as index_mod
        assert not hasattr(index_mod, "MUTATION_LOG_CAP")
