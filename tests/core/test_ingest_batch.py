"""Commit-group ingest, WAL durability, and back-pressure
(``CloudServer.ingest_batch`` / ``replay_wal`` / ``AdmissionQueue``).

The batched path must be observationally identical to one-at-a-time
ingest -- same content digest, same dedup decisions, same quarantine
entries -- while amortising the epoch bump and fsync across the group.
"""

import threading

import pytest

from repro import CameraModel, CloudServer
from repro.core.fov import RepresentativeFoV
from repro.core.ingest import AdmissionQueue
from repro.core.server import IngestStatus
from repro.core.wal import WriteAheadLog
from repro.net.channel import FaultProfile, FaultyChannel, RetryPolicy
from repro.net.protocol import encode_bundle


def bundle(vid="vid-x", n=5, lat=40.0):
    return encode_bundle(vid, [
        RepresentativeFoV(lat=lat, lng=116.3, theta=(30.0 * i) % 360.0,
                          t_start=float(i), t_end=float(i) + 2.0,
                          video_id=vid, segment_id=i)
        for i in range(n)
    ])


def corrupt(payload: bytes) -> bytes:
    flipped = bytearray(payload)
    flipped[-1] ^= 0xFF
    return bytes(flipped)


@pytest.fixture
def server(camera):
    return CloudServer(camera)


class TestIngestBatch:
    def test_outcomes_positional_and_mixed(self, server):
        dup = bundle("dup")
        server.ingest_bundle(dup)
        payloads = [bundle("a"), dup, corrupt(bundle("bad")), bundle("b")]
        outcomes = server.ingest_batch(payloads)
        assert [o.status for o in outcomes] == [
            IngestStatus.ACCEPTED, IngestStatus.DUPLICATE,
            IngestStatus.REJECTED, IngestStatus.ACCEPTED]
        assert len(server.quarantine) == 1
        assert server.indexed_count == 15

    def test_intra_group_duplicate(self, server):
        same = bundle("twice")
        outcomes = server.ingest_batch([same, same])
        assert [o.status for o in outcomes] == [
            IngestStatus.ACCEPTED, IngestStatus.DUPLICATE]
        assert server.indexed_count == 5

    def test_one_epoch_bump_per_group(self, server):
        epoch = server.index.epoch
        server.ingest_batch([bundle(f"v{i}") for i in range(8)])
        assert server.index.epoch == epoch + 1

    def test_bit_identical_to_one_at_a_time(self, camera):
        payloads = [bundle(f"v{i}", n=10, lat=40.0 + i * 1e-3)
                    for i in range(6)]
        payloads[3] = corrupt(payloads[3])
        one = CloudServer(camera)
        for p in payloads:
            one.ingest_bundle(p)
        batched = CloudServer(camera)
        batched.ingest_batch(payloads)
        assert batched.index.content_digest() == one.index.content_digest()
        assert batched.indexed_count == one.indexed_count
        assert len(batched.quarantine) == len(one.quarantine) == 1
        (b_entry,) = list(batched.quarantine)
        (o_entry,) = list(one.quarantine)
        assert b_entry.payload == o_entry.payload
        assert b_entry.reason == o_entry.reason

    def test_corrupt_bundle_mid_group_isolated(self, camera):
        # The corrupt member is quarantined alone; everything else in
        # the commit group lands exactly as if it had never been there.
        clean = [bundle(f"v{i}", n=7) for i in range(5)]
        with_bad = clean[:2] + [corrupt(bundle("evil"))] + clean[2:]
        reference = CloudServer(camera)
        reference.ingest_batch(clean)
        victim = CloudServer(camera)
        outcomes = victim.ingest_batch(with_bad)
        assert outcomes[2].status is IngestStatus.REJECTED
        assert sum(o.status is IngestStatus.ACCEPTED for o in outcomes) == 5
        assert victim.index.content_digest() == \
            reference.index.content_digest()

    def test_empty_group(self, server):
        assert server.ingest_batch([]) == []


class TestWalDurability:
    def test_batch_appends_then_one_sync(self, tmp_path, camera):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        server = CloudServer(camera, wal=wal)
        server.ingest_batch([bundle(f"v{i}") for i in range(10)])
        assert wal.stats.appends == 10
        assert wal.stats.syncs == 1
        assert server.stats.wal_appends == 10
        assert server.stats.wal_syncs == 1
        assert server.stats.wal_bytes > 0

    def test_rejected_and_duplicate_not_logged(self, tmp_path, camera):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        server = CloudServer(camera, wal=wal)
        good = bundle("good")
        server.ingest_batch([good, good, corrupt(bundle("bad"))])
        assert wal.stats.appends == 1

    def test_replay_converges_to_same_digest(self, tmp_path, camera):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            origin = CloudServer(camera, wal=wal)
            origin.ingest_batch([bundle(f"v{i}", n=8) for i in range(12)])
            want = origin.index.content_digest()
        recovered = CloudServer(camera)
        assert recovered.replay_wal(path) == 12
        assert recovered.index.content_digest() == want
        assert recovered.stats.wal_replayed == 12

    def test_replay_is_idempotent_against_dedup(self, tmp_path, camera):
        # Crash *after* index insert: the bundle is both in the WAL and
        # the index; replay must dedup it, not double-insert.
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            server = CloudServer(camera, wal=wal)
            server.ingest_batch([bundle("v0"), bundle("v1")])
            want = server.index.content_digest()
            assert server.replay_wal() == 0   # all duplicates
            assert server.index.content_digest() == want
            assert server.indexed_count == 10


class TestAdmissionQueue:
    def test_partial_admission(self):
        q = AdmissionQueue(4)
        assert q.try_admit(3) == 3
        assert q.try_admit(3) == 1     # only one slot left
        assert q.try_admit() == 0      # full
        q.release(4)
        assert q.depth == 0

    def test_over_release_raises(self):
        q = AdmissionQueue(2)
        q.try_admit()
        with pytest.raises(ValueError):
            q.release(2)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_thread_safety_never_oversubscribes(self):
        q = AdmissionQueue(10)
        peak = []

        def worker():
            for _ in range(500):
                got = q.try_admit(3)
                peak.append(q.depth)
                q.release(got)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert q.depth == 0
        assert max(peak) <= 10


class TestBackPressure:
    def test_batch_sheds_tail_and_releases(self, camera):
        server = CloudServer(camera, admission_capacity=4)
        outcomes = server.ingest_batch([bundle(f"v{i}") for i in range(7)])
        statuses = [o.status for o in outcomes]
        assert statuses.count(IngestStatus.ACCEPTED) == 4
        assert statuses.count(IngestStatus.SHED) == 3
        assert server.stats.bundles_shed == 3
        # Slots freed: a follow-up group is admitted in full.
        again = server.ingest_batch([bundle(f"w{i}") for i in range(4)])
        assert all(o.status is IngestStatus.ACCEPTED for o in again)

    def test_shed_outcome_is_retryable(self, camera):
        # An uploader facing a saturated server retries shed bundles
        # until they land -- shed is not an ack and not a reject.
        server = CloudServer(camera, admission_capacity=1)
        channel = FaultyChannel(FaultProfile(), seed=7)
        uploader = server.make_uploader(channel, RetryPolicy(max_attempts=5))
        receipts = [uploader.upload(bundle(f"v{i}")) for i in range(6)]
        assert all(r.accepted for r in receipts)
        assert server.indexed_count == 30
        assert uploader.stats.acks_shed == 0  # serial sends never saturate

    def test_single_bundle_shed_when_saturated(self, camera):
        server = CloudServer(camera, admission_capacity=1)
        assert server._admission.try_admit() == 1   # simulate an in-flight peer
        outcome = server.ingest_bundle(bundle("v"))
        assert outcome.status is IngestStatus.SHED
        assert outcome.records_indexed == 0
        server._admission.release()
        assert server.ingest_bundle(bundle("v")).status is \
            IngestStatus.ACCEPTED
