"""Tests for the high-level investigation workflow."""

import numpy as np
import pytest

from repro import CloudServer
from repro.core.investigation import Investigation
from repro.traces.dataset import CityDataset


@pytest.fixture(scope="module")
def city_server():
    city = CityDataset(n_providers=15, seed=23)
    server = CloudServer(city.camera)
    for rec in city.recordings:
        server.register_client(city.clients[rec.device_id])
        server.receive_bundle(rec.bundle.payload, device_id=rec.device_id)
    return city, server


def scene(city, seed=0):
    rng = np.random.default_rng(seed)
    qp = city.random_query_point(rng)
    t0, t1 = city.time_span()
    return qp, t0, t1


class TestInvestigation:
    def test_validation(self, city_server):
        _, server = city_server
        with pytest.raises(ValueError):
            Investigation(server, diversity=1.5)
        inv = Investigation(server)
        with pytest.raises(ValueError):
            inv.investigate(center=None, t_start=0, t_end=1, shortlist=0)

    def test_full_round_collects_evidence(self, city_server):
        city, server = city_server
        inv = Investigation(server, diversity=0.4)
        for seed in range(8):
            qp, t0, t1 = scene(city, seed)
            report = inv.investigate(qp, t0, t1, shortlist=3)
            if not report.shortlist:
                continue
            assert len(report.evidence) == len(report.shortlist)
            assert all(e.available for e in report.evidence)
            assert report.video_seconds_collected > 0
            assert "collected" in report.summary()
            return
        pytest.fail("no scene produced any results")

    def test_shortlist_is_subset_of_result(self, city_server):
        city, server = city_server
        inv = Investigation(server)
        qp, t0, t1 = scene(city, 3)
        report = inv.investigate(qp, t0, t1, shortlist=4, fetch=False)
        all_keys = {r.fov.key() for r in report.result.ranked}
        assert {r.fov.key() for r in report.shortlist} <= all_keys
        assert len(report.shortlist) <= 4
        assert report.evidence == []

    def test_zero_diversity_keeps_distance_order(self, city_server):
        city, server = city_server
        inv = Investigation(server, diversity=0.0)
        qp, t0, t1 = scene(city, 5)
        report = inv.investigate(qp, t0, t1, shortlist=5, fetch=False)
        dists = [r.distance for r in report.shortlist]
        assert dists == sorted(dists)

    def test_missing_owner_recorded_not_raised(self, city_server, camera):
        """Evidence from an unregistered device degrades gracefully."""
        city, _ = city_server
        lonely = CloudServer(camera)
        # Ingest records without registering any client.
        lonely.ingest(city.all_representatives())
        inv = Investigation(lonely)
        for seed in range(8):
            qp, t0, t1 = scene(city, seed)
            report = inv.investigate(qp, t0, t1, shortlist=3)
            if report.shortlist:
                assert all(not e.available for e in report.evidence)
                assert all(e.fetch_error for e in report.evidence)
                return
        pytest.fail("no scene produced any results")

    def test_distinct_devices_counted(self, city_server):
        city, server = city_server
        inv = Investigation(server, diversity=0.8)
        qp, t0, t1 = scene(city, 1)
        report = inv.investigate(qp, t0, t1, shortlist=5)
        if report.evidence:
            assert 1 <= report.distinct_devices <= len(report.evidence)
