"""Tests for keyframe selection, JSON interop, and index eviction."""

import json

import numpy as np
import pytest

from repro import CameraModel, CloudServer, Query, segment_trace
from repro.core.fov import RepresentativeFoV, VideoSegment
from repro.net.jsonio import (
    fov_from_dict,
    fov_to_dict,
    query_from_dict,
    query_to_dict,
    result_to_dict,
    result_to_json,
)
from repro.geo.coords import GeoPoint
from repro.traces.dataset import random_representative_fovs
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import rotation_scenario
from repro.vision.keyframes import STRATEGIES, keyframe_index, select_keyframe


class TestKeyframes:
    @pytest.fixture(scope="class")
    def segment(self):
        trace = rotation_scenario(duration_s=10, fps=10,
                                  noise=SensorNoiseModel.ideal())
        camera = CameraModel()
        return segment_trace(trace, camera)[0], camera

    def test_positional_strategies(self, segment):
        seg, camera = segment
        assert keyframe_index(seg, camera, "first") == seg.start
        assert keyframe_index(seg, camera, "last") == seg.stop - 1
        mid = keyframe_index(seg, camera, "middle")
        assert seg.start <= mid < seg.stop

    def test_representative_within_segment(self, segment):
        seg, camera = segment
        i = keyframe_index(seg, camera, "representative")
        assert seg.start <= i < seg.stop

    def test_representative_near_middle_for_steady_pan(self, segment):
        # A constant-rate pan's mean FoV sits mid-sweep, so the
        # representative keyframe lands near the middle of the segment.
        seg, camera = segment
        i = keyframe_index(seg, camera, "representative")
        mid = seg.start + len(seg) // 2
        assert abs(i - mid) <= max(2, len(seg) // 4)

    def test_select_returns_record(self, segment):
        seg, camera = segment
        f = select_keyframe(seg, camera, "first")
        assert f.t == seg.t_start

    def test_unknown_strategy(self, segment):
        seg, camera = segment
        with pytest.raises(ValueError):
            keyframe_index(seg, camera, "random")

    def test_all_strategies_enumerated(self):
        assert set(STRATEGIES) == {"first", "middle", "last",
                                   "representative"}


class TestJsonIO:
    REP = RepresentativeFoV(lat=40.0, lng=116.3, theta=123.0,
                            t_start=1.0, t_end=9.0, video_id="v",
                            segment_id=4)

    def test_fov_roundtrip(self):
        back = fov_from_dict(fov_to_dict(self.REP))
        assert back == self.REP

    def test_fov_missing_field(self):
        d = fov_to_dict(self.REP)
        del d["theta"]
        with pytest.raises(ValueError, match="theta"):
            fov_from_dict(d)

    def test_query_roundtrip(self):
        q = Query(t_start=0.0, t_end=10.0, center=GeoPoint(40.0, 116.3),
                  radius=50.0, top_n=7)
        back = query_from_dict(query_to_dict(q))
        assert back == q

    def test_query_missing_field(self):
        with pytest.raises(ValueError):
            query_from_dict({"t_start": 0.0})

    def test_query_default_top_n(self):
        d = query_to_dict(Query(t_start=0.0, t_end=1.0,
                                center=GeoPoint(0, 0), radius=1.0))
        del d["top_n"]
        assert query_from_dict(d).top_n == 10

    def test_result_serialisation(self, camera, rng):
        server = CloudServer(camera)
        reps = random_representative_fovs(100, rng)
        server.ingest(reps)
        anchor = reps[0]
        res = server.query(Query(t_start=anchor.t_start - 50,
                                 t_end=anchor.t_end + 50,
                                 center=anchor.point, radius=300.0))
        payload = json.loads(result_to_json(res))
        assert payload["candidates"] == res.candidates
        assert len(payload["results"]) == len(res)
        for i, row in enumerate(payload["results"]):
            assert row["rank"] == i + 1
            assert fov_from_dict(row) == res.ranked[i].fov


class TestEviction:
    def test_evicts_by_end_time(self, camera, rng):
        server = CloudServer(camera)
        reps = random_representative_fovs(300, rng, horizon_s=1000.0)
        server.ingest(reps)
        cutoff = 500.0
        expected = sum(1 for r in reps if r.t_end < cutoff)
        assert server.evict_older_than(cutoff) == expected
        assert server.indexed_count == 300 - expected
        # No surviving record ended before the cutoff.
        for _, _, fov in server.index._index.items():
            assert fov.t_end >= cutoff

    def test_queries_correct_after_eviction(self, camera, rng):
        from repro.core.index import FoVIndex
        reps = random_representative_fovs(300, rng, horizon_s=1000.0)
        evicted_idx = FoVIndex()
        evicted_idx.insert_many(reps)
        evicted_idx.evict_older_than(400.0)
        fresh = FoVIndex()
        fresh.insert_many([r for r in reps if r.t_end >= 400.0])
        q = Query(t_start=0.0, t_end=1000.0,
                  center=reps[0].point, radius=3000.0)
        assert sorted(f.key() for f in evicted_idx.range_search(q)) == \
            sorted(f.key() for f in fresh.range_search(q))

    def test_evict_nothing(self, camera, rng):
        server = CloudServer(camera)
        server.ingest(random_representative_fovs(50, rng))
        assert server.evict_older_than(-1.0) == 0
        assert server.indexed_count == 50

    def test_evict_everything(self, camera, rng):
        server = CloudServer(camera)
        server.ingest(random_representative_fovs(50, rng))
        assert server.evict_older_than(1e12) == 50
        assert server.indexed_count == 0
