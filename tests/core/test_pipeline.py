"""Unit tests for the client-side pipeline."""

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, FoV
from repro.core.segmentation import SegmentationConfig
from repro.net.protocol import decode_bundle
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import rotation_scenario

IDEAL = SensorNoiseModel.ideal()


@pytest.fixture
def client(camera):
    return ClientPipeline("alice", camera, SegmentationConfig(threshold=0.5))


class TestRecordingLifecycle:
    def test_generated_video_ids_unique(self, client):
        vid1 = client.start_recording()
        client.push(FoV(t=0.0, lat=40, lng=116, theta=0))
        client.stop_recording()
        vid2 = client.start_recording()
        assert vid1 != vid2

    def test_push_without_recording_raises(self, client):
        with pytest.raises(RuntimeError):
            client.push(FoV(t=0.0, lat=40, lng=116, theta=0))

    def test_double_start_raises(self, client):
        client.start_recording()
        with pytest.raises(RuntimeError):
            client.start_recording()

    def test_stop_without_start_raises(self, client):
        with pytest.raises(RuntimeError):
            client.stop_recording()

    def test_empty_recording_raises(self, client):
        client.start_recording()
        with pytest.raises(ValueError):
            client.stop_recording()


class TestBundles:
    def test_bundle_decodes_to_representatives(self, client):
        trace = rotation_scenario(duration_s=20, fps=10, noise=IDEAL)
        bundle = client.record_trace(trace, video_id="vid-1")
        video_id, fovs = decode_bundle(bundle.payload)
        assert video_id == "vid-1"
        assert len(fovs) == len(bundle.representatives)
        for sent, wire in zip(bundle.representatives, fovs):
            assert wire.key() == sent.key()
            assert wire.t_start == pytest.approx(sent.t_start)
            assert wire.theta == pytest.approx(sent.theta, abs=1e-4)  # float32

    def test_segments_cover_whole_recording(self, client):
        trace = rotation_scenario(duration_s=20, fps=10, noise=IDEAL)
        bundle = client.record_trace(trace)
        reps = bundle.representatives
        assert reps[0].t_start == pytest.approx(float(trace.t[0]))
        assert reps[-1].t_end == pytest.approx(float(trace.t[-1]))
        total_frames = sum(
            len(client.fetch_segment(r.video_id, r.segment_id).records)
            for r in reps)
        assert total_frames == len(trace)

    def test_wire_bytes_tiny_vs_video(self, client):
        # 20 s of 30 fps video -> a bundle of a few hundred bytes.
        trace = rotation_scenario(duration_s=20, fps=30, noise=IDEAL)
        bundle = client.record_trace(trace)
        assert bundle.wire_bytes < 2000


class TestSegmentStorage:
    def test_fetch_returns_stored_frames(self, client):
        trace = rotation_scenario(duration_s=10, fps=10, noise=IDEAL)
        bundle = client.record_trace(trace, video_id="v")
        seg = client.fetch_segment("v", 0)
        assert seg.records[0].t == pytest.approx(float(trace.t[0]))
        assert seg.duration >= 0.0

    def test_fetch_unknown_raises(self, client):
        with pytest.raises(KeyError):
            client.fetch_segment("nope", 0)

    def test_storage_accumulates_across_recordings(self, client):
        for _ in range(2):
            trace = rotation_scenario(duration_s=10, fps=10, noise=IDEAL)
            client.record_trace(trace)
        assert client.stored_segment_count >= 2
