"""Integration tests: privacy in the pipeline, diversified results."""

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, CloudServer, Query
from repro.core.fov import RepresentativeFoV
from repro.core.query import RankedFoV
from repro.core.ranking import diversify_results
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.privacy import GeoFence, PrivacyPolicy, SpatialCloak
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import CITY_ORIGIN, walk_scenario


class TestPrivacyInPipeline:
    def _record(self, policy, camera):
        client = ClientPipeline("priv-dev", camera, privacy=policy)
        trace = walk_scenario(duration_s=120, fps=5,
                              noise=SensorNoiseModel.ideal())
        bundle = client.record_trace(trace, video_id="walk")
        return client, trace, bundle

    def test_fenced_start_withheld(self, camera):
        # Fence the walk's starting area: early segments never upload.
        policy = PrivacyPolicy(
            fences=(GeoFence(center=CITY_ORIGIN, radius_m=60.0,
                             label="home"),))
        client, trace, bundle = self._record(policy, camera)
        audit = client.audits[-1]
        assert audit.withheld >= 1
        assert audit.uploaded == len(bundle.representatives)
        # The uploaded bundle contains no record inside the fence.
        for rep in bundle.representatives:
            assert not policy.fences[0].contains(rep.lat, rep.lng)

    def test_withheld_segments_not_fetchable(self, camera):
        policy = PrivacyPolicy(
            fences=(GeoFence(center=CITY_ORIGIN, radius_m=60.0,
                             label="home"),))
        client, _, bundle = self._record(policy, camera)
        uploaded = {rep.segment_id for rep in bundle.representatives}
        withheld = set(range(client.audits[-1].total)) - uploaded
        assert withheld
        for seg_id in withheld:
            with pytest.raises(KeyError):
                client.fetch_segment("walk", seg_id)

    def test_cloaked_bundle_round_trip(self, camera):
        policy = PrivacyPolicy(cloak=SpatialCloak(cell_m=100.0))
        client, _, bundle = self._record(policy, camera)
        assert client.audits[-1].cloaked == len(bundle.representatives)
        # Server still indexes and answers with cloaked records.
        server = CloudServer(camera)
        server.register_client(client)
        server.receive_bundle(bundle.payload, device_id="priv-dev")
        assert server.indexed_count == len(bundle.representatives)

    def test_no_policy_no_audit(self, camera):
        client = ClientPipeline("plain", camera)
        trace = walk_scenario(duration_s=30, fps=5,
                              noise=SensorNoiseModel.ideal())
        client.record_trace(trace)
        assert client.audits == []


def rows_at(positions_and_thetas):
    proj = LocalProjection(CITY_ORIGIN)
    rows = []
    for i, (x, y, theta) in enumerate(positions_and_thetas):
        p = proj.to_geo(x, y)
        rep = RepresentativeFoV(lat=p.lat, lng=p.lng, theta=theta,
                                t_start=0.0, t_end=10.0, video_id="v",
                                segment_id=i)
        rows.append(RankedFoV(fov=rep, distance=float(i), covers=True))
    return rows


class TestDiversifyResults:
    CAMERA = CameraModel()

    def test_zero_weight_keeps_order(self):
        rows = rows_at([(0, -10, 0.0), (0, -11, 0.0), (50, -10, 90.0)])
        out = diversify_results(rows, self.CAMERA, top_n=3,
                                redundancy_weight=0.0)
        assert [r.fov.segment_id for r in out] == [0, 1, 2]

    def test_promotes_different_viewpoint(self):
        # Rows 0 and 1 are near-duplicates; row 2 is a distinct angle.
        rows = rows_at([(0, -10, 0.0), (0.5, -10, 1.0), (60, -10, 120.0)])
        out = diversify_results(rows, self.CAMERA, top_n=2,
                                redundancy_weight=0.6)
        ids = [r.fov.segment_id for r in out]
        assert ids[0] == 0          # best row always first
        assert ids[1] == 2          # the duplicate is displaced

    def test_returns_at_most_top_n(self):
        rows = rows_at([(i * 5.0, -10.0, 0.0) for i in range(6)])
        assert len(diversify_results(rows, self.CAMERA, top_n=4)) == 4

    def test_empty_input(self):
        assert diversify_results([], self.CAMERA, top_n=3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            diversify_results([], self.CAMERA, top_n=0)
        with pytest.raises(ValueError):
            diversify_results([], self.CAMERA, top_n=1,
                              redundancy_weight=1.5)

    def test_membership_preserved(self):
        rows = rows_at([(i * 7.0, -15.0, i * 30.0) for i in range(8)])
        out = diversify_results(rows, self.CAMERA, top_n=8,
                                redundancy_weight=0.7)
        assert {r.fov.segment_id for r in out} == set(range(8))
