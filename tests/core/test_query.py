"""Unit tests for query/result types."""

import pytest

from repro.core.query import AREA_RADII, Query, QueryResult, RankedFoV
from repro.core.fov import RepresentativeFoV
from repro.geo.coords import GeoPoint

P = GeoPoint(40.0, 116.3)


class TestQuery:
    def test_valid(self):
        q = Query(t_start=0.0, t_end=10.0, center=P, radius=50.0)
        assert q.top_n == 10

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            Query(t_start=10.0, t_end=0.0, center=P, radius=50.0)

    def test_rejects_non_positive_radius(self):
        with pytest.raises(ValueError):
            Query(t_start=0.0, t_end=1.0, center=P, radius=0.0)

    def test_rejects_bad_top_n(self):
        with pytest.raises(ValueError):
            Query(t_start=0.0, t_end=1.0, center=P, radius=1.0, top_n=0)

    def test_instant_query_allowed(self):
        q = Query(t_start=5.0, t_end=5.0, center=P, radius=1.0)
        assert q.t_start == q.t_end

    def test_for_area_presets(self):
        # Section V-B: 20 m residential, 100 m highway.
        q = Query.for_area(0.0, 1.0, P, area="residential")
        assert q.radius == AREA_RADII["residential"] == 20.0
        q = Query.for_area(0.0, 1.0, P, area="highway")
        assert q.radius == 100.0

    def test_for_area_unknown_raises(self):
        with pytest.raises(ValueError):
            Query.for_area(0.0, 1.0, P, area="ocean")


class TestQueryResult:
    def _rep(self, i):
        return RepresentativeFoV(lat=40.0, lng=116.3, theta=0.0,
                                 t_start=0.0, t_end=1.0,
                                 video_id="v", segment_id=i)

    def test_accessors(self):
        q = Query(t_start=0.0, t_end=1.0, center=P, radius=1.0)
        rows = [RankedFoV(fov=self._rep(i), distance=float(i), covers=True)
                for i in range(3)]
        res = QueryResult(query=q, ranked=rows, candidates=5, after_filter=3)
        assert len(res) == 3
        assert res.keys() == [("v", 0), ("v", 1), ("v", 2)]
        assert [f.segment_id for f in res.fovs()] == [0, 1, 2]
