"""Epoch-tagged LRU query-result cache, alone and behind the server."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CameraModel, CloudServer, Query
from repro.core.cache import QueryResultCache, query_cache_key
from repro.core.index import FoVIndex
from repro.traces.dataset import random_representative_fovs

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def ranking(result):
    return [(r.fov.key(), r.distance, r.covers) for r in result.ranked]


class TestQueryResultCache:
    def test_round_trip(self):
        c = QueryResultCache(4)
        c.put("k", 0, "v")
        assert c.get("k", 0) == "v"
        assert len(c) == 1

    def test_miss_returns_none(self):
        assert QueryResultCache(4).get("nope", 0) is None

    def test_epoch_mismatch_is_a_miss_and_evicts(self):
        c = QueryResultCache(4)
        c.put("k", 0, "v")
        assert c.get("k", 1) is None
        assert len(c) == 0                 # stale entry dropped on sight
        assert c.get("k", 0) is None       # gone even for the old epoch

    def test_lru_eviction_order(self):
        c = QueryResultCache(2)
        c.put("a", 0, 1)
        c.put("b", 0, 2)
        assert c.get("a", 0) == 1          # refresh "a": "b" is now LRU
        c.put("c", 0, 3)
        assert c.get("b", 0) is None
        assert c.get("a", 0) == 1 and c.get("c", 0) == 3

    def test_put_overwrites(self):
        c = QueryResultCache(2)
        c.put("k", 0, "old")
        c.put("k", 1, "new")
        assert len(c) == 1
        assert c.get("k", 1) == "new"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryResultCache(0)
        assert QueryResultCache(1).capacity == 1

    def test_clear(self):
        c = QueryResultCache(4)
        c.put("k", 0, "v")
        c.clear()
        assert len(c) == 0 and c.get("k", 0) is None

    def test_query_key_identity(self):
        rng = np.random.default_rng(3)
        rep = random_representative_fovs(1, rng)[0]
        q1 = Query(t_start=0.0, t_end=10.0, center=rep.point, radius=100.0)
        q2 = Query(t_start=0.0, t_end=10.0, center=rep.point, radius=100.0)
        assert query_cache_key(q1) == query_cache_key(q2)
        q3 = Query(t_start=0.0, t_end=10.0, center=rep.point, radius=100.0,
                   top_n=3)
        assert query_cache_key(q1) != query_cache_key(q3)


def make_server(seed=5, n=400, **kw):
    rng = np.random.default_rng(seed)
    reps = random_representative_fovs(n, rng)
    server = CloudServer(CAMERA, index=FoVIndex.bulk(reps), **kw)
    queries = [Query(t_start=max(0.0, r.t_start - 300.0),
                     t_end=r.t_end + 300.0, center=r.point,
                     radius=200.0)
               for r in reps[:10]]
    return server, queries, reps


class TestServerCache:
    def test_hit_equals_cold_miss(self):
        server, queries, _ = make_server()
        cold = [server.query(q) for q in queries]
        warm = [server.query(q) for q in queries]
        assert server.stats.cache_misses == len(queries)
        assert server.stats.cache_hits == len(queries)
        assert server.stats.queries_served == 2 * len(queries)
        for a, b in zip(cold, warm):
            assert ranking(a) == ranking(b)
            assert a.candidates == b.candidates

    def test_insert_invalidates(self, rng):
        server, queries, _ = make_server()
        q = queries[0]
        server.query(q)
        server.ingest(random_representative_fovs(5, rng))
        server.query(q)
        assert server.stats.cache_hits == 0
        assert server.stats.cache_misses == 2

    def test_hit_equals_cold_after_interleaved_inserts(self, rng):
        """The acceptance property: whatever mutations interleave, a
        reported cache hit always equals recomputing from scratch."""
        server, queries, _ = make_server()
        reference = CloudServer(CAMERA, index=server.index, cache_size=0)
        for round_ in range(4):
            for q in queries:
                for _ in range(2):         # second pass served from cache
                    cached = server.query(q)
                    fresh = reference.query(q)
                    assert ranking(cached) == ranking(fresh)
                    assert cached.candidates == fresh.candidates
            server.ingest(random_representative_fovs(7, rng))
        assert server.stats.cache_hits > 0
        assert server.stats.cache_misses > 0

    def test_eviction_invalidates(self):
        server, queries, reps = make_server()
        q = queries[0]
        before = server.query(q)
        cutoff = float(np.median([r.t_end for r in reps])) + 1.0
        assert server.evict_older_than(cutoff) > 0
        after = server.query(q)
        assert server.stats.cache_hits == 0
        assert after.candidates <= before.candidates

    def test_cache_disabled(self):
        server, queries, _ = make_server(cache_size=0)
        server.query(queries[0])
        server.query(queries[0])
        assert server.stats.cache_hits == 0
        assert server.stats.cache_misses == 0

    def test_query_many_partitions_hits_and_misses(self):
        server, queries, _ = make_server(engine="packed")
        cold = server.query_many(queries)
        assert server.stats.cache_misses == len(queries)
        mixed = server.query_many(queries + queries[:3])
        assert server.stats.cache_hits == len(queries) + 3
        assert len(mixed) == len(queries) + 3
        for a, b in zip(cold, mixed):
            assert ranking(a) == ranking(b)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_prop_cached_never_diverges_from_fresh(seed):
    rng = np.random.default_rng(seed)
    server, queries, _ = make_server(seed=seed)
    fresh = CloudServer(CAMERA, index=server.index, cache_size=0)
    for q in queries:
        if rng.random() < 0.3:
            server.ingest(random_representative_fovs(3, rng))
        assert ranking(server.query(q)) == ranking(fresh.query(q))
        assert ranking(server.query(q)) == ranking(fresh.query(q))
