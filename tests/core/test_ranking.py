"""Unit tests for pluggable rankers."""

import numpy as np
import pytest

from repro import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.core.ranking import CompositeRanker, DistanceRanker
from repro.core.retrieval import RetrievalEngine
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection

CAMERA = CameraModel(half_angle=30.0, radius=100.0)
ORIGIN = GeoPoint(40.003, 116.326)
PROJ = LocalProjection(ORIGIN)
QUERY = Query(t_start=0.0, t_end=100.0, center=ORIGIN, radius=150.0,
              top_n=10)


def rep_local(x, y, theta, t0=0.0, t1=100.0, sid=0):
    p = PROJ.to_geo(x, y)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=theta,
                             t_start=t0, t_end=t1, video_id="v",
                             segment_id=sid)


def engine(reps, ranker=None):
    idx = FoVIndex()
    idx.insert_many(reps)
    return RetrievalEngine(idx, CAMERA, ranker=ranker)


class TestDistanceRanker:
    def test_scores_are_negated_distance(self):
        r = DistanceRanker()
        s = r.scores(QUERY, CAMERA, np.array([10.0, 5.0]),
                     np.array([0.0, 0.0]), np.zeros(2), np.ones(2))
        assert s[1] > s[0]

    def test_engine_default_is_distance(self):
        # Two cameras covering the centre at different ranges.
        reps = [rep_local(0, -80, 0.0, sid=0), rep_local(0, -20, 0.0, sid=1)]
        res = engine(reps).execute(QUERY)
        assert [r.fov.segment_id for r in res.ranked] == [1, 0]


class TestCompositeRanker:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            CompositeRanker(w_distance=-1.0)
        with pytest.raises(ValueError):
            CompositeRanker(w_distance=0.0, w_temporal=0.0, w_centrality=0.0)

    def test_scores_in_unit_interval(self, rng):
        r = CompositeRanker()
        n = 50
        s = r.scores(QUERY, CAMERA, rng.uniform(0, 200, n),
                     rng.uniform(0, 30, n), rng.uniform(0, 50, n),
                     rng.uniform(50, 100, n))
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_temporal_component_reorders(self):
        # Same position/orientation; one segment spans the whole window,
        # the other a sliver.  Distance ranking ties; composite prefers
        # the long-overlap segment.
        long_seg = rep_local(0, -50, 0.0, t0=0.0, t1=100.0, sid=0)
        sliver = rep_local(0, -50, 0.0, t0=0.0, t1=2.0, sid=1)
        res = engine([sliver, long_seg],
                     ranker=CompositeRanker()).execute(QUERY)
        assert res.ranked[0].fov.segment_id == 0

    def test_centrality_component_reorders(self):
        # Equal distance and time; one camera points dead-on, the other
        # catches the spot at its wedge edge.
        dead_on = rep_local(0, -50, 0.0, sid=0)
        edge = rep_local(0, -50, 29.0, sid=1)
        res = engine([edge, dead_on],
                     ranker=CompositeRanker()).execute(QUERY)
        assert res.ranked[0].fov.segment_id == 0

    def test_pure_distance_weights_match_paper(self):
        reps = [rep_local(0, -80, 0.0, sid=0), rep_local(0, -20, 0.0, sid=1),
                rep_local(0, -55, 0.0, sid=2)]
        paper = engine(reps).execute(QUERY).keys()
        composite = engine(
            reps, ranker=CompositeRanker(w_distance=1.0, w_temporal=0.0,
                                         w_centrality=0.0)
        ).execute(QUERY).keys()
        assert paper == composite

    def test_only_ordering_changes_never_membership(self, rng):
        reps = [rep_local(float(rng.uniform(-100, 100)),
                          float(rng.uniform(-100, -10)),
                          float(rng.uniform(0, 360)),
                          t0=float(rng.uniform(0, 50)),
                          t1=float(rng.uniform(50, 100)), sid=i)
                for i in range(30)]
        base = set(engine(reps).execute(QUERY).keys())
        comp = set(engine(reps, ranker=CompositeRanker()).execute(QUERY)
                   .keys())
        # top_n is 10; with the same filter the candidate pool matches,
        # so when fewer than top_n survive the sets must be identical.
        res = engine(reps).execute(QUERY)
        if res.after_filter <= QUERY.top_n:
            assert base == comp
