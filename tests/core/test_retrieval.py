"""Unit tests for the Section V-B filter/rank retrieval."""

import numpy as np
import pytest

from repro import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.core.retrieval import RetrievalEngine
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection

ORIGIN = GeoPoint(40.003, 116.326)
PROJ = LocalProjection(ORIGIN)


def rep_local(x, y, theta, t0=0.0, t1=10.0, vid="v", sid=0):
    """Representative FoV placed at local metres around ORIGIN."""
    p = PROJ.to_geo(x, y)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=theta,
                             t_start=t0, t_end=t1, video_id=vid, segment_id=sid)


def engine_with(reps, camera, **kw):
    idx = FoVIndex()
    idx.insert_many(reps)
    return RetrievalEngine(idx, camera, **kw)


def query_at_origin(radius=150.0, top_n=10):
    return Query(t_start=0.0, t_end=10.0, center=ORIGIN, radius=radius,
                 top_n=top_n)


class TestOrientationFilter:
    def test_facing_camera_kept(self, camera):
        # Camera 50 m south of the query point, facing north: covers it.
        eng = engine_with([rep_local(0, -50, 0.0)], camera)
        res = eng.execute(query_at_origin())
        assert len(res) == 1
        assert res.ranked[0].covers

    def test_facing_away_dropped(self, camera):
        # Same position, camera facing south: the Merkel/World-Cup case.
        eng = engine_with([rep_local(0, -50, 180.0)], camera)
        res = eng.execute(query_at_origin())
        assert res.candidates == 1
        assert res.after_filter == 0
        assert len(res) == 0

    def test_too_far_to_cover_dropped(self, camera):
        # Facing the right way but beyond the radius of view (R = 100).
        eng = engine_with([rep_local(0, -140, 0.0)], camera)
        res = eng.execute(query_at_origin(radius=200.0))
        assert len(res) == 0

    def test_edge_of_wedge_kept(self, camera):
        # Query point exactly on the 30-deg wedge boundary.
        eng = engine_with([rep_local(0, -50, 30.0)], camera)
        res = eng.execute(query_at_origin())
        assert len(res) == 1

    def test_just_outside_wedge_dropped(self, camera):
        eng = engine_with([rep_local(0, -50, 31.5)], camera)
        res = eng.execute(query_at_origin())
        assert len(res) == 0


class TestRanking:
    def test_sorted_by_distance(self, camera):
        reps = [rep_local(0, -d, 0.0, sid=i)
                for i, d in enumerate((80, 20, 50))]
        eng = engine_with(reps, camera)
        res = eng.execute(query_at_origin())
        dists = [r.distance for r in res.ranked]
        assert dists == sorted(dists)
        assert [r.fov.segment_id for r in res.ranked] == [1, 2, 0]

    def test_top_n_truncation(self, camera):
        reps = [rep_local(0, -10 - i, 0.0, sid=i) for i in range(8)]
        eng = engine_with(reps, camera)
        res = eng.execute(query_at_origin(top_n=3))
        assert len(res) == 3
        assert res.after_filter == 8

    def test_distance_values(self, camera):
        eng = engine_with([rep_local(30, -40, 320.0)], camera)
        res = eng.execute(query_at_origin())
        assert res.ranked[0].distance == pytest.approx(50.0, rel=1e-3)


class TestLenientMode:
    def test_strict_drops_lenient_keeps_near_miss(self, camera):
        # Camera slightly outside the wedge of the centre but its sector
        # overlaps the query disc.
        rep = rep_local(0, -60, 35.0)
        strict = engine_with([rep], camera, strict_cover=True)
        lenient = engine_with([rep], camera, strict_cover=False)
        # Radius must reach the camera position or the R-tree range
        # search never surfaces it -- the Section V-B radius tradeoff.
        q = query_at_origin(radius=70.0)
        assert len(strict.execute(q)) == 0
        assert len(lenient.execute(q)) == 1

    def test_lenient_still_drops_opposite_direction(self, camera):
        rep = rep_local(0, -90, 180.0)
        lenient = engine_with([rep], camera, strict_cover=False)
        assert len(lenient.execute(query_at_origin(radius=20.0))) == 0


class TestFunnelCounters:
    def test_counts_are_consistent(self, camera, rng):
        reps = []
        for i in range(40):
            x, y = rng.uniform(-200, 200, 2)
            reps.append(rep_local(float(x), float(y),
                                  float(rng.uniform(0, 360)), sid=i))
        eng = engine_with(reps, camera)
        res = eng.execute(query_at_origin(radius=150.0, top_n=5))
        assert res.after_filter <= res.candidates
        assert len(res) <= min(5, res.after_filter)
        assert res.elapsed_s >= 0.0

    def test_empty_index(self, camera):
        eng = engine_with([], camera)
        res = eng.execute(query_at_origin())
        assert res.candidates == 0 and len(res) == 0
