"""Unit tests for Algorithm 1 (offline and streaming forms)."""

import numpy as np
import pytest

from repro import CameraModel, FoV, FoVTrace, segment_trace
from repro.core.segmentation import (
    SegmentationConfig,
    StreamingSegmenter,
)
from repro.traces.scenarios import (
    rotation_scenario,
    translation_scenario,
)
from repro.traces.noise import SensorNoiseModel

IDEAL = SensorNoiseModel.ideal()


def stationary_trace(n=20, theta=0.0):
    return FoVTrace(np.arange(n) * 0.1, np.full(n, 40.0), np.full(n, 116.3),
                    np.full(n, theta))


class TestSegmentationConfig:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError):
            SegmentationConfig(threshold=0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            SegmentationConfig(threshold=1.5)


class TestSegmentTrace:
    def test_stationary_single_segment(self, camera):
        segs = segment_trace(stationary_trace(), camera)
        assert len(segs) == 1
        assert len(segs[0]) == 20

    def test_partition_property(self, camera):
        trace = rotation_scenario(duration_s=20, fps=10, noise=IDEAL)
        segs = segment_trace(trace, camera, SegmentationConfig(threshold=0.7))
        assert segs[0].start == 0
        assert segs[-1].stop == len(trace)
        for a, b in zip(segs, segs[1:]):
            assert a.stop == b.start

    def test_rotation_cuts_at_threshold(self, camera):
        # 12 deg/s rotation, threshold 0.5 => cut when Sim_R < 0.5, i.e.
        # after 30 deg of rotation = 2.5 s = 25 frames at 10 fps.
        trace = rotation_scenario(rate_deg_s=12.0, duration_s=30, fps=10,
                                  noise=IDEAL)
        segs = segment_trace(trace, camera, SegmentationConfig(threshold=0.5))
        lengths = [len(s) for s in segs[:-1]]
        assert all(24 <= n <= 27 for n in lengths), lengths
        assert len(segs) == pytest.approx(12, abs=1)

    def test_higher_threshold_denser_segmentation(self, camera):
        # Section VII: bigger threshold => denser segmentation.
        trace = rotation_scenario(duration_s=30, fps=10, noise=IDEAL)
        lo = segment_trace(trace, camera, SegmentationConfig(threshold=0.3))
        hi = segment_trace(trace, camera, SegmentationConfig(threshold=0.8))
        assert len(hi) > len(lo)

    def test_anchor_semantics(self, camera):
        # Every frame of a segment is similar to the segment's FIRST
        # frame (not its neighbours) by construction.
        from repro import similarity
        trace = translation_scenario(theta_p=90.0, duration_s=30, fps=10,
                                     noise=IDEAL)
        cfg = SegmentationConfig(threshold=0.6)
        for seg in segment_trace(trace, camera, cfg):
            anchor = trace[seg.start]
            for i in range(seg.start, seg.stop):
                assert similarity(anchor, trace[i], camera) >= cfg.threshold

    def test_cut_frame_starts_new_segment(self, camera):
        # The first frame past a cut must violate the threshold against
        # the previous anchor.
        from repro import similarity
        trace = rotation_scenario(duration_s=20, fps=10, noise=IDEAL)
        cfg = SegmentationConfig(threshold=0.5)
        segs = segment_trace(trace, camera, cfg)
        for prev, nxt in zip(segs, segs[1:]):
            anchor = trace[prev.start]
            first_of_next = trace[nxt.start]
            assert similarity(anchor, first_of_next, camera) < cfg.threshold

    def test_single_frame_trace(self, camera):
        segs = segment_trace(stationary_trace(1), camera)
        assert len(segs) == 1 and len(segs[0]) == 1


class TestStreamingSegmenter:
    def test_matches_offline(self, camera):
        """Streaming and offline Algorithm 1 produce identical cuts."""
        trace = rotation_scenario(duration_s=30, fps=10, noise=IDEAL, seed=3)
        cfg = SegmentationConfig(threshold=0.5)
        offline = segment_trace(trace, camera, cfg)

        seg = StreamingSegmenter(camera, cfg)
        closed = []
        for rec in trace:
            out = seg.push(rec)
            if out is not None:
                closed.append(out)
        tail = seg.finish()
        if tail is not None:
            closed.append(tail)

        assert len(closed) == len(offline)
        for stream_seg, off_seg in zip(closed, offline):
            assert len(stream_seg) == len(off_seg)
            assert stream_seg.t_start == pytest.approx(off_seg.t_start)
            assert stream_seg.t_end == pytest.approx(off_seg.t_end)

    def test_rejects_non_increasing_time(self, camera):
        seg = StreamingSegmenter(camera)
        seg.push(FoV(t=1.0, lat=40, lng=116, theta=0))
        with pytest.raises(ValueError):
            seg.push(FoV(t=1.0, lat=40, lng=116, theta=0))

    def test_finish_empty_returns_none(self, camera):
        assert StreamingSegmenter(camera).finish() is None

    def test_finish_resets_for_reuse(self, camera):
        seg = StreamingSegmenter(camera)
        seg.push(FoV(t=0.0, lat=40, lng=116, theta=0))
        first = seg.finish()
        assert first is not None and len(first) == 1
        # Clock may restart for the next recording.
        seg.push(FoV(t=0.0, lat=40, lng=116, theta=0))
        assert seg.open_length == 1

    def test_counters(self, camera):
        trace = rotation_scenario(duration_s=10, fps=10, noise=IDEAL)
        seg = StreamingSegmenter(camera, SegmentationConfig(threshold=0.5))
        for rec in trace:
            seg.push(rec)
        assert seg.closed_count >= 1
        assert seg.open_length >= 1

    def test_o1_state(self, camera):
        """The segmenter keeps only the open segment, not history."""
        trace = rotation_scenario(duration_s=30, fps=10, noise=IDEAL)
        seg = StreamingSegmenter(camera, SegmentationConfig(threshold=0.5))
        max_open = 0
        for rec in trace:
            seg.push(rec)
            max_open = max(max_open, seg.open_length)
        # At threshold 0.5 and 12 deg/s, segments are ~25 frames.
        assert max_open < 40
