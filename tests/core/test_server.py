"""Unit tests for the cloud-server facade."""

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, CloudServer, Query
from repro.core.segmentation import SegmentationConfig
from repro.net.protocol import encode_bundle
from repro.traces.dataset import random_representative_fovs
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import CITY_ORIGIN, walk_scenario


@pytest.fixture
def server(camera):
    return CloudServer(camera)


class TestIngest:
    def test_receive_bundle_indexes_records(self, server, camera):
        client = ClientPipeline("alice", camera)
        trace = walk_scenario(duration_s=30, fps=10,
                              noise=SensorNoiseModel.ideal())
        bundle = client.record_trace(trace)
        n = server.receive_bundle(bundle.payload, device_id="alice")
        assert n == len(bundle.representatives)
        assert server.indexed_count == n
        assert server.stats.bundles_received == 1
        assert server.stats.descriptor_bytes_in == bundle.wire_bytes

    def test_corrupt_bundle_rejected(self, server):
        with pytest.raises(ValueError):
            server.receive_bundle(b"garbage-not-a-bundle")

    def test_ingest_decoded(self, server, rng):
        reps = random_representative_fovs(50, rng)
        assert server.ingest(reps) == 50
        assert server.indexed_count == 50


class TestQueryAndFetch:
    def _populate(self, server, camera):
        client = ClientPipeline("alice", camera)
        server.register_client(client)
        trace = walk_scenario(duration_s=60, fps=10,
                              noise=SensorNoiseModel.ideal())
        bundle = client.record_trace(trace)
        server.receive_bundle(bundle.payload, device_id="alice")
        return client, trace

    def test_query_finds_covered_point(self, server, camera):
        _, trace = self._populate(server, camera)
        # A point 50 m ahead of the first camera pose is covered.
        from repro.geo.earth import LocalProjection
        proj = trace.projection
        xy = trace.local_xy()
        import numpy as np
        ahead = proj.to_geo(xy[0, 0] + 50 * np.sin(np.radians(30.0)),
                            xy[0, 1] + 50 * np.cos(np.radians(30.0)))
        res = server.query(Query(t_start=0.0, t_end=60.0, center=ahead,
                                 radius=60.0))
        assert len(res) >= 1
        assert server.stats.queries_served == 1

    def test_fetch_segment_moves_bytes(self, server, camera):
        _, trace = self._populate(server, camera)
        rep = next(iter(server.index.range_search(
            Query(t_start=0.0, t_end=60.0, center=trace[0].point,
                  radius=500.0))))
        seg = server.fetch_segment(rep)
        assert len(seg.records) >= 1
        assert server.stats.segments_fetched == 1
        assert server.stats.segment_bytes_moved > 0

    def test_fetch_unregistered_owner_raises(self, server, camera, rng):
        reps = random_representative_fovs(1, rng)
        server.ingest(reps)
        with pytest.raises(KeyError):
            server.fetch_segment(reps[0])


class TestBackends:
    def test_linear_backend_equivalent(self, camera, rng):
        reps = random_representative_fovs(300, rng)
        rt = CloudServer(camera, backend="rtree")
        ln = CloudServer(camera, backend="linear")
        rt.ingest(reps)
        ln.ingest(reps)
        q = Query(t_start=0.0, t_end=86400.0, center=CITY_ORIGIN,
                  radius=2500.0, top_n=50)
        assert rt.query(q).keys() == ln.query(q).keys()
