"""Unit tests for the cloud-server facade."""

import struct

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, CloudServer, Query
from repro.core.fov import RepresentativeFoV
from repro.core.segmentation import SegmentationConfig
from repro.core.server import IngestStatus
from repro.net.channel import FaultProfile, FaultyChannel, RetryPolicy
from repro.net.protocol import encode_bundle
from repro.traces.dataset import random_representative_fovs
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import CITY_ORIGIN, walk_scenario


@pytest.fixture
def server(camera):
    return CloudServer(camera)


class TestIngest:
    def test_receive_bundle_indexes_records(self, server, camera):
        client = ClientPipeline("alice", camera)
        trace = walk_scenario(duration_s=30, fps=10,
                              noise=SensorNoiseModel.ideal())
        bundle = client.record_trace(trace)
        n = server.receive_bundle(bundle.payload, device_id="alice")
        assert n == len(bundle.representatives)
        assert server.indexed_count == n
        assert server.stats.bundles_received == 1
        assert server.stats.descriptor_bytes_in == bundle.wire_bytes

    def test_corrupt_bundle_rejected(self, server):
        with pytest.raises(ValueError):
            server.receive_bundle(b"garbage-not-a-bundle")

    def test_ingest_decoded(self, server, rng):
        reps = random_representative_fovs(50, rng)
        assert server.ingest(reps) == 50
        assert server.indexed_count == 50


class TestQueryAndFetch:
    def _populate(self, server, camera):
        client = ClientPipeline("alice", camera)
        server.register_client(client)
        trace = walk_scenario(duration_s=60, fps=10,
                              noise=SensorNoiseModel.ideal())
        bundle = client.record_trace(trace)
        server.receive_bundle(bundle.payload, device_id="alice")
        return client, trace

    def test_query_finds_covered_point(self, server, camera):
        _, trace = self._populate(server, camera)
        # A point 50 m ahead of the first camera pose is covered.
        from repro.geo.earth import LocalProjection
        proj = trace.projection
        xy = trace.local_xy()
        import numpy as np
        ahead = proj.to_geo(xy[0, 0] + 50 * np.sin(np.radians(30.0)),
                            xy[0, 1] + 50 * np.cos(np.radians(30.0)))
        res = server.query(Query(t_start=0.0, t_end=60.0, center=ahead,
                                 radius=60.0))
        assert len(res) >= 1
        assert server.stats.queries_served == 1

    def test_fetch_segment_moves_bytes(self, server, camera):
        _, trace = self._populate(server, camera)
        rep = next(iter(server.index.range_search(
            Query(t_start=0.0, t_end=60.0, center=trace[0].point,
                  radius=500.0))))
        seg = server.fetch_segment(rep)
        assert len(seg.records) >= 1
        assert server.stats.segments_fetched == 1
        assert server.stats.segment_bytes_moved > 0

    def test_fetch_unregistered_owner_raises(self, server, camera, rng):
        reps = random_representative_fovs(1, rng)
        server.ingest(reps)
        with pytest.raises(KeyError):
            server.fetch_segment(reps[0])


class TestBackends:
    def test_linear_backend_equivalent(self, camera, rng):
        reps = random_representative_fovs(300, rng)
        rt = CloudServer(camera, backend="rtree")
        ln = CloudServer(camera, backend="linear")
        rt.ingest(reps)
        ln.ingest(reps)
        q = Query(t_start=0.0, t_end=86400.0, center=CITY_ORIGIN,
                  radius=2500.0, top_n=50)
        assert rt.query(q).keys() == ln.query(q).keys()


def small_bundle(vid="vid-x", n=5):
    return encode_bundle(vid, [
        RepresentativeFoV(lat=40.0, lng=116.3, theta=(30.0 * i) % 360.0,
                          t_start=float(i), t_end=float(i) + 2.0,
                          video_id=vid, segment_id=i)
        for i in range(n)
    ])


class TestIngestHardening:
    def test_duplicate_bundle_is_exactly_once(self, server):
        payload = small_bundle()
        assert server.receive_bundle(payload) == 5
        assert server.receive_bundle(payload) == 0   # redelivery: no-op
        assert server.indexed_count == 5
        assert server.stats.bundles_received == 1
        assert server.stats.bundles_duplicated == 1
        assert server.stats.descriptor_bytes_in == len(payload)

    def test_ingest_bundle_never_raises(self, server):
        outcome = server.ingest_bundle(b"garbage-not-a-bundle")
        assert outcome.status is IngestStatus.REJECTED
        assert outcome.records_indexed == 0 and outcome.reason

    def test_rejected_payload_is_quarantined_with_its_reason(self, server):
        payload = bytearray(small_bundle())
        payload[-1] ^= 0xFF
        with pytest.raises(ValueError):
            server.receive_bundle(bytes(payload))
        assert server.stats.bundles_rejected == 1
        assert server.indexed_count == 0
        assert len(server.quarantine) == 1
        (entry,) = list(server.quarantine)
        assert entry.payload == bytes(payload)
        assert server.quarantine.reasons[entry.reason] == 1

    def test_mid_bundle_corruption_leaves_no_partial_state(self, server):
        # A v1 bundle (no checksums) whose *second* record is semantic
        # junk: validation must reject the whole bundle before record 0
        # touches the index.
        good = struct.pack("<ddfddI", 40.0, 116.3, 90.0, 0.0, 2.0, 0)
        bad = struct.pack("<ddfddI", float("nan"), 116.3, 90.0, 0.0, 2.0, 1)
        vid = b"v"
        payload = struct.pack("<4sBHI", b"FOV1", 1, len(vid), 2) + vid \
            + good + bad
        epoch = server.index.epoch
        with pytest.raises(ValueError, match="record 1"):
            server.receive_bundle(payload)
        assert server.indexed_count == 0
        assert server.index.epoch == epoch
        assert server.stats.records_indexed == 0
        assert list(server.index.records()) == []

    def test_one_epoch_bump_per_bundle(self, server):
        epoch = server.index.epoch
        server.receive_bundle(small_bundle(n=20))
        assert server.index.epoch == epoch + 1   # not one bump per record

    def test_make_uploader_converges_and_counts_retries(self, server):
        channel = FaultyChannel(FaultProfile(drop_rate=0.5), seed=11)
        uploader = server.make_uploader(channel,
                                        RetryPolicy(max_attempts=40))
        receipts = [uploader.upload(small_bundle(vid=f"v{i}"))
                    for i in range(10)]
        assert all(r.accepted for r in receipts)
        assert server.stats.bundles_retried == uploader.stats.retries > 0
        assert server.indexed_count == 50


class TestEvictionStats:
    def _ingest_spread(self, server, vid="v"):
        server.ingest([
            RepresentativeFoV(lat=40.0, lng=116.3, theta=10.0,
                              t_start=float(i * 10), t_end=float(i * 10) + 5,
                              video_id=vid, segment_id=i)
            for i in range(10)
        ])

    def test_evict_preserves_cumulative_records_indexed(self, server):
        # Regression: evict_older_than used to clobber records_indexed
        # down to the live count, rewriting ingest history.
        self._ingest_spread(server)
        assert server.stats.records_indexed == 10
        evicted = server.evict_older_than(51.0)
        assert evicted == 5
        assert server.stats.records_indexed == 10     # cumulative, untouched
        assert server.stats.records_live == 5 == server.indexed_count
        assert server.stats.records_evicted == 5

    def test_eviction_counter_accumulates(self, server):
        self._ingest_spread(server, vid="a")
        self._ingest_spread(server, vid="b")
        server.evict_older_than(21.0)
        server.evict_older_than(51.0)
        assert server.stats.records_evicted == 10
        assert server.stats.records_live == 10
        assert server.stats.records_indexed == 20
