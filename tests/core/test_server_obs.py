"""Server-level observability: facade parity, reconciliation, tracing.

Three contracts pinned here:

* ``ServerStats`` is a read-through facade -- every property is backed
  by a registry family, so the Prometheus snapshot and the Python
  properties can never disagree;
* the query cache's own counters reconcile exactly with the
  server-level cache counters (a stale drop *is* a miss on both sides);
* with a tracing :class:`Observability` bundle and an injected fake
  clock, a query produces the nested span tree the CLI renders, with
  per-stage durations determined entirely by the fake clock.
"""

import pytest

from repro import CloudServer, Query
from repro.core.fov import RepresentativeFoV
from repro.core.server import IngestStatus
from repro.geo.coords import GeoPoint
from repro.net.protocol import encode_bundle
from repro.obs import Observability
from repro.traces.dataset import random_representative_fovs


class FakeClock:
    """Deterministic timer: each read advances by 1 ms."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        t = self.now
        self.now += 0.001
        return t


def _bundle(n=20, video_id="vid-a"):
    reps = [
        RepresentativeFoV(lat=40.0 + 0.0001 * i, lng=116.3,
                          theta=(30.0 * i) % 360.0,
                          t_start=float(i), t_end=float(i) + 2.0,
                          video_id=video_id, segment_id=i)
        for i in range(n)
    ]
    return encode_bundle(video_id, reps), reps


def _query_for(rec, radius=120.0, top_n=5):
    return Query(t_start=rec.t_start - 1.0, t_end=rec.t_end + 1.0,
                 center=GeoPoint(rec.lat, rec.lng), radius=radius,
                 top_n=top_n)


@pytest.fixture
def server(camera):
    return CloudServer(camera)


class TestServerStatsFacade:
    def test_ingest_counters_read_through_the_registry(self, server, rng):
        payload, reps = _bundle()
        assert server.receive_bundle(payload) == len(reps)
        reg = server.obs.registry
        bundles = reg.get("ingest.bundles")
        assert server.stats.bundles_received == 1
        assert bundles.labels(status="accepted").value == 1
        assert server.stats.records_indexed == len(reps)
        assert reg.get("ingest.records_indexed").value == len(reps)
        assert server.stats.descriptor_bytes_in == len(payload)
        assert reg.get("ingest.bytes").value == len(payload)
        assert server.stats.records_live == len(server.index)
        assert reg.get("index.records_live").value == len(server.index)
        assert reg.get("index.epoch").value == server.index.epoch

    def test_rejected_bundle_counts_journals_and_quarantines(self, server):
        outcome = server.ingest_bundle(b"garbage-not-a-bundle")
        assert outcome.status is IngestStatus.REJECTED
        reg = server.obs.registry
        assert server.stats.bundles_rejected == 1
        assert reg.get("ingest.bundles").labels(status="rejected").value == 1
        journal = server.obs.journal
        (rejected,) = journal.events("ingest.rejected")
        assert rejected.fields["digest"] == outcome.digest
        (quarantined,) = journal.events("quarantine.added")
        assert quarantined.fields["reason"] == rejected.fields["reason"]
        assert len(server.quarantine) == 1

    def test_duplicate_bundle_counted_and_journaled(self, server, rng):
        payload, _ = _bundle()
        server.receive_bundle(payload)
        assert server.receive_bundle(payload) == 0
        reg = server.obs.registry
        assert server.stats.bundles_duplicated == 1
        assert reg.get("ingest.bundles").labels(status="duplicate").value == 1
        assert len(server.obs.journal.events("ingest.duplicate")) == 1

    def test_epoch_bump_is_journaled_with_cause(self, server, rng):
        payload, _ = _bundle()
        server.receive_bundle(payload)
        bumps = server.obs.journal.events("index.epoch_bump")
        assert bumps and bumps[-1].fields["cause"] == "ingest"
        server.evict_older_than(1e12)
        bumps = server.obs.journal.events("index.epoch_bump")
        assert bumps[-1].fields["cause"] == "evict"
        assert server.stats.records_live == 0
        assert server.obs.registry.get("index.records_live").value == 0

    def test_injected_observability_is_shared(self, camera):
        obs = Observability.default()
        server = CloudServer(camera, obs=obs)
        assert server.obs is obs
        server.ingest_bundle(b"junk")
        assert obs.registry.get("ingest.bundles") \
            .labels(status="rejected").value == 1

    def test_queries_served_reads_through(self, server, rng):
        reps = random_representative_fovs(40, rng)
        server.ingest(reps)
        server.query(_query_for(reps[0]))
        server.query_many([_query_for(r) for r in reps[:4]])
        assert server.stats.queries_served == 5
        assert server.obs.registry.get("query.requests").value == 5


class TestCacheReconciliation:
    def test_server_and_cache_counters_reconcile(self, server, rng):
        """Regression: the server's cache hit/miss counters must equal

        the cache's own counters after a mixed workload that exercises
        fresh misses, repeat hits, and epoch-staleness drops.
        """
        reps = random_representative_fovs(60, rng)
        server.ingest(reps)
        queries = [_query_for(r) for r in reps[:6]]

        server.query_many(queries)          # 6 cold misses
        server.query_many(queries)          # 6 warm hits
        server.query(queries[0])            # 1 more hit

        # epoch bump invalidates every cached entry
        server.ingest(random_representative_fovs(10, rng))
        server.query_many(queries)          # 6 stale drops -> misses

        cache = server._cache
        assert cache.stale_drops == 6
        assert cache.hits == 7
        assert cache.misses == 12
        assert server.stats.cache_hits == cache.hits
        assert server.stats.cache_misses == cache.misses

        # and the registry families agree with both facades
        reg = server.obs.registry
        assert reg.get("query.cache_hits").value == cache.hits
        assert reg.get("cache.hits").value == cache.hits
        assert reg.get("query.cache_misses").value == cache.misses
        assert reg.get("cache.misses").value == cache.misses
        assert reg.get("cache.stale_drops").value == 6

    def test_cache_evictions_counted_and_journaled(self, camera, rng):
        server = CloudServer(camera, cache_size=2)
        reps = random_representative_fovs(30, rng)
        server.ingest(reps)
        for r in reps[:5]:
            server.query(_query_for(r))
        cache = server._cache
        assert cache.evictions == 3
        assert server.obs.registry.get("cache.evictions").value == 3
        assert len(server.obs.journal.events("cache.evicted")) == 3


class TestServerTracing:
    def _traced_server(self, camera, engine="dynamic", index=None):
        obs = Observability.tracing(clock=FakeClock())
        return CloudServer(camera, engine=engine, index=index, obs=obs), obs

    def test_query_produces_the_nested_stage_tree(self, camera, rng):
        server, obs = self._traced_server(camera)
        reps = random_representative_fovs(50, rng)
        server.ingest(reps)
        server.query(_query_for(reps[0]))

        root = obs.span_tracer.last_trace()
        assert root.name == "server.query"
        (execute,) = root.children
        assert execute.name == "query.execute"
        assert execute.attrs["engine"] == "dynamic"
        stages = [c.name for c in execute.children]
        assert stages[0] == "query.tree_descent"
        assert "query.rank" in stages
        # fake clock: every span closed, durations strictly positive
        for _, span in root.walk():
            assert span.end_s is not None
            assert span.duration_s > 0.0
        # children nest inside their parent's window
        assert execute.start_s >= root.start_s
        assert execute.end_s <= root.end_s

    def test_batched_packed_query_traces_batch_stages(self, camera, rng):
        server, obs = self._traced_server(camera, engine="packed")
        reps = random_representative_fovs(80, rng)
        server.ingest(reps)
        server.query_many([_query_for(r) for r in reps[:4]])

        root = obs.span_tracer.last_trace()
        assert root.name == "server.query_many"
        assert root.attrs["batch"] == 4
        many = root.children[0]
        assert many.name == "query.execute_many"
        stages = [c.name for c in many.children]
        assert stages == ["query.tree_descent", "query.projection",
                          "query.orientation_filter", "query.rank"]

    def test_span_durations_populate_the_latency_histogram(self, camera, rng):
        server, obs = self._traced_server(camera)
        reps = random_representative_fovs(30, rng)
        server.ingest(reps)
        server.query(_query_for(reps[0]))
        fam = obs.registry.get("span.duration_s")
        assert fam.labels(span="server.query").count == 1
        assert fam.labels(span="query.execute").count == 1
        assert fam.labels(span="server.query").sum > 0.0

    def test_ingest_trace_records_payload_size(self, camera, rng):
        server, obs = self._traced_server(camera)
        payload, _ = _bundle()
        server.receive_bundle(payload)
        root = obs.span_tracer.last_trace()
        assert root.name == "server.ingest_bundle"
        assert root.attrs["bytes"] == len(payload)

    def test_untraced_server_records_no_traces(self, server, rng):
        reps = random_representative_fovs(20, rng)
        server.ingest(reps)
        server.query(_query_for(reps[0]))
        assert server.obs.span_tracer is None

    def test_packed_search_counters_flow_from_query(self, camera, rng):
        server, obs = self._traced_server(camera, engine="packed")
        reps = random_representative_fovs(200, rng)
        server.ingest(reps)
        server.query(_query_for(reps[0]))
        reg = obs.registry
        assert reg.get("packed.descents").value >= 1
        tested = reg.get("packed.entries_tested")
        assert sum(c.value for _, c in tested.children()) > 0
