"""Unit tests for the Eq. 4-10 similarity measurement.

These tests pin the paper's stated properties: normalisation (Eq. 3),
the rotation law (Eq. 4), translation extremes (Eq. 5 / corrected Eq. 6
with statement 2's zero at ``2 R sin alpha``), the convex combination
(Eq. 9) and the product form (Eq. 10).
"""

import numpy as np
import pytest

from repro import CameraModel, FoV, similarity
from repro.core.similarity import (
    cross_similarity,
    pairwise_similarity,
    phi_parallel,
    phi_perpendicular,
    sim_parallel,
    sim_perpendicular,
    sim_rotation,
    sim_translation,
    similarity_local,
)


ALPHA = 30.0
R = 100.0


class TestSimRotation:
    def test_identity(self):
        assert sim_rotation(0.0, ALPHA) == 1.0

    def test_linear_decay(self):
        # Eq. 4: Sim_R = (2a - dt) / 2a for dt < 2a.
        assert sim_rotation(30.0, ALPHA) == pytest.approx(0.5)
        assert sim_rotation(15.0, ALPHA) == pytest.approx(0.75)

    def test_zero_beyond_aperture(self):
        assert sim_rotation(60.0, ALPHA) == 0.0
        assert sim_rotation(120.0, ALPHA) == 0.0

    def test_array(self):
        out = sim_rotation(np.array([0.0, 30.0, 90.0]), ALPHA)
        assert np.allclose(out, [1.0, 0.5, 0.0])


class TestPhiParallel:
    def test_equals_alpha_at_zero(self):
        # Eq. 5 at d = 0: arctan(tan(alpha)) = alpha.
        assert phi_parallel(0.0, R, ALPHA) == pytest.approx(ALPHA)

    def test_decreases_with_distance(self):
        ds = np.linspace(0, 500, 50)
        phis = phi_parallel(ds, R, ALPHA)
        assert np.all(np.diff(phis) < 0)

    def test_always_positive(self):
        # Paper statement 2: Sim_par never reaches 0.
        assert phi_parallel(10_000.0, R, ALPHA) > 0.0

    def test_symmetric_in_sign(self):
        assert phi_parallel(-50.0, R, ALPHA) == phi_parallel(50.0, R, ALPHA)


class TestPhiPerpendicular:
    def test_full_aperture_at_zero(self):
        assert phi_perpendicular(0.0, R, ALPHA) == pytest.approx(2 * ALPHA)

    def test_zero_exactly_at_2R_sin_alpha(self):
        # Paper statement 2: Sim_perp drops to 0 at d = 2 R sin(alpha).
        d_zero = 2 * R * np.sin(np.radians(ALPHA))
        assert phi_perpendicular(d_zero, R, ALPHA) == pytest.approx(0.0, abs=1e-9)
        assert phi_perpendicular(d_zero * 0.99, R, ALPHA) > 0.0
        assert phi_perpendicular(d_zero * 1.5, R, ALPHA) == 0.0

    def test_monotone_until_zero(self):
        d_zero = 2 * R * np.sin(np.radians(ALPHA))
        ds = np.linspace(0, d_zero, 50)
        phis = phi_perpendicular(ds, R, ALPHA)
        assert np.all(np.diff(phis) < 1e-12)


class TestTranslationSims:
    def test_both_one_at_zero(self):
        assert sim_parallel(0.0, R, ALPHA) == pytest.approx(1.0)
        assert sim_perpendicular(0.0, R, ALPHA) == pytest.approx(1.0)

    def test_parallel_geq_perpendicular_bulk(self):
        # Eq. 8 over the bulk of the domain.  For wide apertures
        # (alpha >= ~28 deg) Sim_par dips marginally below Sim_perp very
        # close to d = 0 (see DESIGN.md Section 2); beyond ~0.3 R sin(a)
        # the paper's inequality holds strictly.
        d_lo = 0.3 * R * np.sin(np.radians(ALPHA))
        ds = np.linspace(d_lo, 3 * R, 100)
        assert np.all(sim_parallel(ds, R, ALPHA) >=
                      sim_perpendicular(ds, R, ALPHA) - 1e-12)

    def test_parallel_geq_perpendicular_everywhere_narrow(self):
        # For narrow apertures Eq. 8 holds on the whole domain.
        for alpha in (10.0, 20.0, 25.0):
            ds = np.linspace(0.0, 3 * R, 200)
            assert np.all(sim_parallel(ds, R, alpha) >=
                          sim_perpendicular(ds, R, alpha) - 1e-9)

    def test_near_zero_violation_is_tiny(self):
        # The wide-aperture violation near d = 0 stays below 2 %.
        ds = np.linspace(0.0, 20.0, 100)
        gap = sim_perpendicular(ds, R, ALPHA) - sim_parallel(ds, R, ALPHA)
        assert gap.max() < 0.02

    def test_parallel_much_slower_at_range(self):
        d = 2 * R * np.sin(np.radians(ALPHA))   # Sim_perp == 0 here
        assert sim_parallel(d, R, ALPHA) > 0.4

    def test_values_in_unit_interval(self, rng):
        ds = rng.uniform(0, 5 * R, 200)
        for f in (sim_parallel, sim_perpendicular):
            v = f(ds, R, ALPHA)
            assert np.all((v >= 0.0) & (v <= 1.0))


class TestSimTranslation:
    def test_convex_combination(self):
        # Eq. 9 at 45 deg: the exact midpoint of the two extremes.
        d = 40.0
        s = sim_translation(d, 45.0, 0.0, R, ALPHA)
        mid = 0.5 * (sim_parallel(d, R, ALPHA) + sim_perpendicular(d, R, ALPHA))
        assert s == pytest.approx(mid)

    def test_parallel_extreme(self):
        assert sim_translation(50.0, 0.0, 0.0, R, ALPHA) == pytest.approx(
            sim_parallel(50.0, R, ALPHA))

    def test_perpendicular_extreme(self):
        assert sim_translation(50.0, 90.0, 0.0, R, ALPHA) == pytest.approx(
            sim_perpendicular(50.0, R, ALPHA))

    def test_unit_at_zero_distance(self):
        # theta_p is undefined at d = 0; Sim_T must be exactly 1.
        assert sim_translation(0.0, 123.0, 45.0, R, ALPHA) == 1.0

    def test_direction_folding(self):
        # Moving backward along the axis == moving forward (fold to acute).
        fwd = sim_translation(30.0, 0.0, 0.0, R, ALPHA)
        bwd = sim_translation(30.0, 180.0, 0.0, R, ALPHA)
        assert fwd == pytest.approx(bwd)


class TestSimilarityLocal:
    def test_eq10_product_form(self, camera):
        dx, dy, t1, t2 = 20.0, 30.0, 10.0, 40.0
        from repro.core.similarity import sim_components_local
        s_rot, s_trans = sim_components_local(dx, dy, t1, t2, camera)
        assert similarity_local(dx, dy, t1, t2, camera) == pytest.approx(
            s_rot * s_trans)

    def test_identity_is_one(self, camera):
        assert similarity_local(0.0, 0.0, 77.0, 77.0, camera) == 1.0

    def test_bounded(self, camera, rng):
        dx = rng.uniform(-300, 300, 500)
        dy = rng.uniform(-300, 300, 500)
        t1 = rng.uniform(0, 360, 500)
        t2 = rng.uniform(0, 360, 500)
        v = similarity_local(dx, dy, t1, t2, camera)
        assert np.all((v >= 0.0) & (v <= 1.0))

    def test_symmetric_under_bisector(self, camera, rng):
        dx, dy = rng.uniform(-100, 100, 50), rng.uniform(-100, 100, 50)
        t1, t2 = rng.uniform(0, 360, 50), rng.uniform(0, 360, 50)
        fwd = similarity_local(dx, dy, t1, t2, camera)
        bwd = similarity_local(-dx, -dy, t2, t1, camera)
        assert np.allclose(fwd, bwd)

    def test_first_reference_matches_paper_reading(self, camera):
        # With reference="first" the fold axis is theta_1.
        v = similarity_local(0.0, 50.0, 0.0, 0.0, camera, reference="first")
        assert v == pytest.approx(sim_parallel(50.0, R, ALPHA))

    def test_unknown_reference_raises(self, camera):
        with pytest.raises(ValueError):
            similarity_local(1.0, 1.0, 0.0, 0.0, camera, reference="nope")

    def test_rotation_only(self, camera):
        assert similarity_local(0.0, 0.0, 0.0, 30.0, camera) == pytest.approx(0.5)
        assert similarity_local(0.0, 0.0, 0.0, 61.0, camera) == 0.0

    def test_monotone_in_rotation(self, camera):
        sims = [similarity_local(0.0, 0.0, 0.0, t, camera)
                for t in np.linspace(0, 180, 60)]
        assert np.all(np.diff(sims) <= 1e-12)

    def test_monotone_in_distance_parallel(self, camera):
        sims = [similarity_local(0.0, d, 0.0, 0.0, camera)
                for d in np.linspace(0, 400, 60)]
        assert np.all(np.diff(sims) <= 1e-12)


class TestSimilarityGPS:
    def test_self_similarity(self, camera):
        f = FoV(t=0.0, lat=40.0, lng=116.3, theta=123.0)
        assert similarity(f, f, camera) == 1.0

    def test_eq3_strictness(self, camera):
        # Any position or orientation change strictly reduces similarity.
        f1 = FoV(t=0.0, lat=40.0, lng=116.3, theta=0.0)
        moved = FoV(t=1.0, lat=40.0001, lng=116.3, theta=0.0)
        turned = FoV(t=1.0, lat=40.0, lng=116.3, theta=5.0)
        assert similarity(f1, moved, camera) < 1.0
        assert similarity(f1, turned, camera) < 1.0

    def test_symmetry(self, camera):
        f1 = FoV(t=0.0, lat=40.0, lng=116.3, theta=10.0)
        f2 = FoV(t=1.0, lat=40.0004, lng=116.3005, theta=70.0)
        assert similarity(f1, f2, camera) == pytest.approx(
            similarity(f2, f1, camera))

    def test_matches_local_form(self, camera):
        from repro.geo.earth import displacement
        f1 = FoV(t=0.0, lat=40.0, lng=116.3, theta=10.0)
        f2 = FoV(t=1.0, lat=40.0003, lng=116.3004, theta=55.0)
        dx, dy = displacement(f1.point, f2.point)
        assert similarity(f1, f2, camera) == pytest.approx(
            float(similarity_local(dx, dy, f1.theta, f2.theta, camera)))


class TestPairwise:
    def test_matches_scalar(self, camera, rng):
        n = 12
        xy = rng.uniform(-80, 80, (n, 2))
        theta = rng.uniform(0, 360, n)
        M = pairwise_similarity(xy, theta, camera)
        for i in range(n):
            for j in range(n):
                expect = similarity_local(
                    xy[j, 0] - xy[i, 0], xy[j, 1] - xy[i, 1],
                    theta[i], theta[j], camera)
                assert M[i, j] == pytest.approx(float(expect))

    def test_symmetric_unit_diagonal(self, camera, rng):
        xy = rng.uniform(-50, 50, (20, 2))
        theta = rng.uniform(0, 360, 20)
        M = pairwise_similarity(xy, theta, camera)
        assert np.allclose(M, M.T)
        assert np.allclose(np.diag(M), 1.0)

    def test_shape_validation(self, camera):
        with pytest.raises(ValueError):
            pairwise_similarity(np.zeros((3, 2)), np.zeros(4), camera)

    def test_cross_similarity_shape_and_agreement(self, camera, rng):
        xy_a = rng.uniform(-50, 50, (4, 2))
        th_a = rng.uniform(0, 360, 4)
        xy_b = rng.uniform(-50, 50, (7, 2))
        th_b = rng.uniform(0, 360, 7)
        C = cross_similarity(xy_a, th_a, xy_b, th_b, camera)
        assert C.shape == (4, 7)
        full = pairwise_similarity(np.vstack([xy_a, xy_b]),
                                   np.concatenate([th_a, th_b]), camera)
        assert np.allclose(C, full[:4, 4:])
