"""Unit tests for index snapshot persistence."""

import struct

import numpy as np
import pytest

from repro.core.query import Query
from repro.core.snapshot import SNAPSHOT_MAGIC, load_snapshot, save_snapshot
from repro.traces.dataset import random_representative_fovs
from repro.traces.scenarios import CITY_ORIGIN


@pytest.fixture
def records(rng):
    return random_representative_fovs(200, rng)


class TestRoundtrip:
    def test_roundtrip_preserves_records(self, tmp_path, records):
        path = tmp_path / "index.snap"
        written = save_snapshot(path, records)
        assert written == path.stat().st_size
        index, loaded = load_snapshot(path)
        assert len(index) == len(records)
        assert sorted(r.key() for r in loaded) == \
            sorted(r.key() for r in records)

    def test_loaded_index_answers_queries(self, tmp_path, records):
        from repro.core.index import FoVIndex
        path = tmp_path / "index.snap"
        save_snapshot(path, records)
        loaded_index, _ = load_snapshot(path)
        fresh = FoVIndex()
        fresh.insert_many(records)
        q = Query(t_start=0.0, t_end=86400.0, center=CITY_ORIGIN,
                  radius=2500.0)
        assert sorted(f.key() for f in loaded_index.range_search(q)) == \
            sorted(f.key() for f in fresh.range_search(q))

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "empty.snap"
        save_snapshot(path, [])
        index, loaded = load_snapshot(path)
        assert len(index) == 0 and loaded == []

    def test_field_fidelity(self, tmp_path, records):
        path = tmp_path / "index.snap"
        save_snapshot(path, records[:3])
        _, loaded = load_snapshot(path)
        by_key = {r.key(): r for r in loaded}
        for orig in records[:3]:
            back = by_key[orig.key()]
            assert back.lat == orig.lat
            assert back.t_start == orig.t_start
            assert back.theta == pytest.approx(orig.theta, abs=1e-4)


class TestCorruption:
    def test_bad_magic(self, tmp_path, records):
        path = tmp_path / "x.snap"
        save_snapshot(path, records)
        blob = bytearray(path.read_bytes())
        blob[0] = ord("X")
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="magic"):
            load_snapshot(path)

    def test_flipped_payload_bit_fails_crc(self, tmp_path, records):
        path = tmp_path / "x.snap"
        save_snapshot(path, records)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="CRC"):
            load_snapshot(path)

    def test_truncated_file(self, tmp_path, records):
        path = tmp_path / "x.snap"
        save_snapshot(path, records)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "x.snap"
        path.write_bytes(b"FOVSNA")
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_trailing_garbage(self, tmp_path, records):
        path = tmp_path / "x.snap"
        save_snapshot(path, records[:5])
        blob = bytearray(path.read_bytes())
        # Append garbage and fix the CRC so only the length check trips.
        import zlib
        payload = bytes(blob[struct.calcsize("<8sII"):]) + b"JUNK"
        header = struct.pack("<8sII", SNAPSHOT_MAGIC, 1, zlib.crc32(payload))
        path.write_bytes(header + payload)
        with pytest.raises(ValueError):
            load_snapshot(path)
