"""The append-only write-ahead log (``core/wal.py``).

Pins the entry framing, the group-commit contract, and the failure
taxonomy: torn tails are tolerated (truncated on recovery, skipped on
replay) while mid-file corruption of committed entries always raises
``WalCorruption``.
"""

import os
import struct

import pytest

from repro.core.wal import (
    ENTRY_OVERHEAD,
    KIND_BUNDLE,
    WAL_MAGIC,
    WalCorruption,
    WriteAheadLog,
    replay,
)


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "ingest.wal"


class TestAppendReplay:
    def test_roundtrip_in_order(self, wal_path):
        payloads = [b"alpha", b"", b"\x00" * 100, b"omega"]
        with WriteAheadLog(wal_path) as wal:
            seqs = [wal.append(p) for p in payloads]
            wal.commit()
        assert seqs == [1, 2, 3, 4]
        assert replay(wal_path) == payloads

    def test_entry_overhead_is_exact(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(b"x" * 10)
            wal.commit()
        assert os.path.getsize(wal_path) == ENTRY_OVERHEAD + 10

    def test_commit_counts_one_sync_per_group(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            for _ in range(50):
                wal.append(b"bundle")
            wal.commit()
            assert wal.stats.appends == 50
            assert wal.stats.syncs == 1

    def test_non_bundle_kinds_are_skipped_by_replay(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append(b"keep")
            wal.append(b"skip", kind=2)
            wal.append(b"keep2")
            wal.commit()
        assert replay(wal_path) == [b"keep", b"keep2"]

    def test_empty_and_missing_files(self, wal_path):
        with pytest.raises(FileNotFoundError):
            replay(wal_path)
        wal_path.write_bytes(b"")
        assert replay(wal_path) == []


class TestRecovery:
    def _committed(self, wal_path, payloads):
        with WriteAheadLog(wal_path) as wal:
            for p in payloads:
                wal.append(p)
            wal.commit()
        return wal_path.read_bytes()

    def test_reopen_continues_sequence(self, wal_path):
        self._committed(wal_path, [b"a", b"b"])
        with WriteAheadLog(wal_path) as wal:
            assert wal.next_seq == 3
            wal.append(b"c")
            wal.commit()
        assert replay(wal_path) == [b"a", b"b", b"c"]

    @pytest.mark.parametrize("torn_bytes", [1, 10, ENTRY_OVERHEAD - 1,
                                            ENTRY_OVERHEAD + 3])
    def test_torn_tail_truncated_on_open(self, wal_path, torn_bytes):
        data = self._committed(wal_path, [b"a", b"bb"])
        # Simulate a crash mid-write: a partial third entry.
        with WriteAheadLog(wal_path) as wal:
            wal.append(b"torn-payload")
            wal.commit()
        torn = wal_path.read_bytes()[:len(data) + torn_bytes]
        wal_path.write_bytes(torn)
        assert replay(wal_path) == [b"a", b"bb"]
        with WriteAheadLog(wal_path) as wal:
            assert wal.next_seq == 3
            wal.append(b"c")
            wal.commit()
        assert os.path.getsize(wal_path) == len(data) + ENTRY_OVERHEAD + 1
        assert replay(wal_path) == [b"a", b"bb", b"c"]

    def test_complete_length_bad_crc_tail_is_torn(self, wal_path):
        data = bytearray(self._committed(wal_path, [b"a", b"bb"]))
        data[-1] ^= 0xFF  # flip the last payload byte of the final entry
        wal_path.write_bytes(bytes(data))
        assert replay(wal_path) == [b"a"]
        with WriteAheadLog(wal_path) as wal:
            assert wal.next_seq == 2

    def test_mid_file_corruption_raises(self, wal_path):
        data = bytearray(self._committed(wal_path, [b"aaaa", b"bb"]))
        data[ENTRY_OVERHEAD + 1] ^= 0xFF  # inside entry 1's payload
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorruption, match="CRC32"):
            replay(wal_path)
        with pytest.raises(WalCorruption):
            WriteAheadLog(wal_path)

    def test_bad_magic_raises(self, wal_path):
        self._committed(wal_path, [b"a"])
        data = bytearray(wal_path.read_bytes())
        data[0:4] = b"JUNK"
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorruption, match="magic"):
            replay(wal_path)

    def test_sequence_regression_raises(self, wal_path):
        # Splice the same committed entry twice: CRCs pass, seq repeats.
        self._committed(wal_path, [b"a"])
        entry = wal_path.read_bytes()
        wal_path.write_bytes(entry + entry)
        with pytest.raises(WalCorruption, match="regressed"):
            replay(wal_path)

    def test_unsupported_version_raises(self, wal_path):
        header = struct.Struct("<4sBBHQI").pack(WAL_MAGIC, 99, KIND_BUNDLE,
                                                0, 1, 0)
        from zlib import crc32
        wal_path.write_bytes(header + struct.pack("<I", crc32(header)))
        with pytest.raises(WalCorruption, match="version"):
            replay(wal_path)
