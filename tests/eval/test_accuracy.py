"""Unit tests for the IR metrics."""

import pytest

from repro.eval.accuracy import (
    aggregate_metrics,
    average_precision,
    ndcg_at_k,
    precision_recall_at_k,
)

RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_perfect_prefix(self):
        p, r, f1 = precision_recall_at_k(RANKED, {"a", "b"}, k=2)
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_partial(self):
        p, r, f1 = precision_recall_at_k(RANKED, {"a", "z"}, k=2)
        assert p == 0.5 and r == 0.5 and f1 == 0.5

    def test_k_beyond_list(self):
        p, r, _ = precision_recall_at_k(["a"], {"a"}, k=10)
        assert p == 1.0 and r == 1.0

    def test_empty_ranked(self):
        p, r, f1 = precision_recall_at_k([], {"a"}, k=3)
        assert p == 0.0 and r == 0.0 and f1 == 0.0

    def test_nothing_relevant_nothing_returned(self):
        p, r, _ = precision_recall_at_k([], set(), k=3)
        assert p == 1.0 and r == 1.0

    def test_k_validated(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(RANKED, set(), k=0)


class TestAveragePrecision:
    def test_all_relevant_first(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_relevant_last(self):
        # Single relevant item at rank 3: AP = 1/3.
        assert average_precision(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_missing_relevant_penalised(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_empty_relevant(self):
        assert average_precision(RANKED, set()) == 1.0


class TestNdcg:
    def test_ideal_ordering(self):
        assert ndcg_at_k(["a", "b", "x"], {"a", "b"}, k=3) == 1.0

    def test_worst_ordering_lower(self):
        good = ndcg_at_k(["a", "x", "y"], {"a"}, k=3)
        bad = ndcg_at_k(["x", "y", "a"], {"a"}, k=3)
        assert good == 1.0 and bad < good

    def test_range(self):
        v = ndcg_at_k(["x", "a", "y", "b"], {"a", "b", "c"}, k=4)
        assert 0.0 < v < 1.0

    def test_empty_relevant(self):
        assert ndcg_at_k(RANKED, set(), k=3) == 1.0


class TestAggregate:
    def test_fields_consistent(self):
        m = aggregate_metrics(RANKED, {"a", "c"}, k=3)
        assert m.k == 3
        assert m.n_relevant == 2
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == 1.0
        assert 0.0 < m.ndcg <= 1.0
