"""Unit tests for the content-based retrieval baseline."""

import numpy as np
import pytest

from repro.eval.contentbaseline import ContentRetrievalBaseline
from repro.traces.dataset import CityDataset
from repro.traces.noise import SensorNoiseModel
from repro.vision.world import random_world


@pytest.fixture(scope="module")
def city():
    return CityDataset(n_providers=5, seed=21, noise=SensorNoiseModel.ideal())


@pytest.fixture(scope="module")
def baseline(city):
    rng = np.random.default_rng(5)
    ex, ey = city.grid.extent_m
    world = random_world(rng, extent_m=max(ex, ey) + 200.0,
                         n_landmarks=250, center=(ex / 2, ey / 2))
    from repro import CameraModel
    b = ContentRetrievalBaseline(world, city.camera, width=64, height=48)
    b.index_dataset(city)
    return b


class TestContentBaseline:
    def test_indexes_every_segment(self, city, baseline):
        assert len(baseline) == len(city.all_representatives())

    def test_example_photos_shape(self, baseline):
        d = baseline.example_photos((100.0, 100.0), n_views=4)
        assert d.shape == (4, 512)
        assert np.allclose(d.sum(axis=1), 1.0)

    def test_query_returns_ranked_keys(self, city, baseline):
        t0, t1 = city.time_span()
        keys = baseline.query((200.0, 200.0), (t0, t1), top_n=5)
        assert 0 < len(keys) <= 5
        all_keys = {rep.key() for rep in city.all_representatives()}
        assert set(keys) <= all_keys

    def test_temporal_window_filters(self, city, baseline):
        keys = baseline.query((200.0, 200.0), (1e9, 2e9), top_n=5)
        assert keys == []

    def test_empty_index(self, city):
        from repro import CameraModel
        rng = np.random.default_rng(0)
        b = ContentRetrievalBaseline(random_world(rng), CameraModel())
        assert b.query((0.0, 0.0), (0.0, 1.0)) == []

    def test_better_than_chance_on_truth(self, city, baseline):
        """Top-ranked content matches beat a random ranking on average."""
        from repro.eval.groundtruth import relevant_segments
        from repro.eval.accuracy import precision_recall_at_k
        rng = np.random.default_rng(11)
        t_window = city.time_span()
        all_keys = [rep.key() for rep in city.all_representatives()]
        content_p, random_p = [], []
        for _ in range(8):
            qp = city.random_query_point(rng)
            xy = city.projection.to_local_arrays([qp.lat], [qp.lng])[0]
            truth = relevant_segments(city, xy, t_window)
            if not truth:
                continue
            got = baseline.query(xy, t_window, top_n=5)
            content_p.append(precision_recall_at_k(got, truth, 5)[0])
            shuffled = [all_keys[i] for i in rng.permutation(len(all_keys))]
            random_p.append(precision_recall_at_k(shuffled[:5], truth, 5)[0])
        assert content_p, "no truthful queries sampled"
        assert np.mean(content_p) >= np.mean(random_p)
