"""Unit tests for spatial coverage maps."""

import numpy as np
import pytest

from repro import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.eval.coverage_map import build_coverage_map
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection

ORIGIN = GeoPoint(40.0, 116.3)
PROJ = LocalProjection(ORIGIN)
CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def rep_local(x, y, theta, t0=0.0, t1=10.0, sid=0):
    p = PROJ.to_geo(x, y)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=theta,
                             t_start=t0, t_end=t1, video_id="v",
                             segment_id=sid)


EXTENT = (-100.0, -100.0, 100.0, 100.0)


class TestBuildCoverageMap:
    def test_empty(self):
        m = build_coverage_map([], PROJ, CAMERA, EXTENT, cell_m=50.0)
        assert m.counts.sum() == 0
        assert m.covered_fraction() == 0.0

    def test_single_north_facing_camera(self):
        m = build_coverage_map([rep_local(0.0, -90.0, 0.0)], PROJ, CAMERA,
                               EXTENT, cell_m=20.0)
        # Cells straight ahead are covered; cells behind are not.
        assert m.count_at(0.0, -30.0) == 1     # 60 m ahead
        assert m.count_at(0.0, -99.0) == 0     # just behind (cell centre -90
        assert m.count_at(90.0, 90.0) == 0     # far corner

    def test_counts_accumulate(self):
        reps = [rep_local(0.0, -90.0, 0.0, sid=i) for i in range(3)]
        m = build_coverage_map(reps, PROJ, CAMERA, EXTENT, cell_m=20.0)
        assert m.count_at(0.0, -30.0) == 3

    def test_time_window_filters(self):
        reps = [rep_local(0.0, -90.0, 0.0, t0=0.0, t1=10.0),
                rep_local(0.0, -90.0, 0.0, t0=100.0, t1=110.0, sid=1)]
        m = build_coverage_map(reps, PROJ, CAMERA, EXTENT, cell_m=20.0,
                               t_window=(0.0, 50.0))
        assert m.count_at(0.0, -30.0) == 1

    def test_covered_fraction_monotone(self):
        reps = [rep_local(0.0, 0.0, float(t), sid=i)
                for i, t in enumerate(range(0, 360, 60))]
        m = build_coverage_map(reps, PROJ, CAMERA, EXTENT, cell_m=20.0)
        assert m.covered_fraction(1) >= m.covered_fraction(2)
        with pytest.raises(ValueError):
            m.covered_fraction(0)

    def test_hotspots_sorted(self):
        reps = [rep_local(0.0, -90.0, 0.0, sid=i) for i in range(4)]
        m = build_coverage_map(reps, PROJ, CAMERA, EXTENT, cell_m=20.0)
        hs = m.hotspots(3)
        counts = [c for _, _, c in hs]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 4

    def test_out_of_extent_query_rejected(self):
        m = build_coverage_map([], PROJ, CAMERA, EXTENT, cell_m=50.0)
        with pytest.raises(ValueError):
            m.count_at(500.0, 0.0)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            build_coverage_map([], PROJ, CAMERA, (0, 0, 0, 10), cell_m=10.0)

    def test_zero_coverage_cell_is_truthful(self):
        """A retrieval query centred on a zero-coverage cell finds nothing."""
        from repro import CloudServer, Query
        reps = [rep_local(0.0, -90.0, 0.0)]
        m = build_coverage_map(reps, PROJ, CAMERA, EXTENT, cell_m=20.0)
        server = CloudServer(CAMERA)
        server.ingest(reps)
        # Pick a far cell with zero coverage.
        assert m.count_at(90.0, 90.0) == 0
        res = server.query(Query(t_start=0.0, t_end=10.0,
                                 center=PROJ.to_geo(90.0, 90.0), radius=10.0))
        assert len(res) == 0
