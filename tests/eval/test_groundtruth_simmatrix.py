"""Unit tests for geometric ground truth and similarity matrices."""

import numpy as np
import pytest

from repro import CameraModel
from repro.eval.groundtruth import relevant_segments, segment_covers_point
from repro.eval.harness import Table, best_of, time_call
from repro.eval.simmatrix import (
    cross_trace_similarity_matrix,
    matrix_correlation,
    normalized,
    trace_similarity_matrix,
)
from repro.traces.dataset import CityDataset
from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import rotation_scenario
from repro.traces.walkers import straight_line


class TestSegmentCoversPoint:
    def test_point_in_front_covered(self, camera):
        traj = straight_line(duration_s=10, fps=2, heading_deg=0.0)
        # 50 m north of the start, in view of the first frames.
        assert segment_covers_point(traj, 0.0, 10.0, (0.0, 50.0), camera)

    def test_point_behind_not_covered(self, camera):
        traj = straight_line(duration_s=10, fps=2, heading_deg=0.0)
        assert not segment_covers_point(traj, 0.0, 10.0, (0.0, -50.0), camera)

    def test_time_window_restricts(self, camera):
        traj = straight_line(speed_mps=10.0, duration_s=30, fps=2,
                             heading_deg=0.0)
        pt = (0.0, 350.0)   # only visible near t = 25..30
        assert segment_covers_point(traj, 0.0, 30.0, pt, camera)
        assert not segment_covers_point(traj, 0.0, 30.0, pt, camera,
                                        query_window=(0.0, 10.0))

    def test_empty_window_false(self, camera):
        traj = straight_line(duration_s=10, fps=2)
        assert not segment_covers_point(traj, 0.0, 10.0, (0.0, 10.0), camera,
                                        query_window=(20.0, 30.0))


class TestRelevantSegments:
    def test_keys_well_formed_and_truthful(self, camera):
        ds = CityDataset(n_providers=4, seed=3,
                         noise=SensorNoiseModel.ideal())
        rng = np.random.default_rng(0)
        qp = ds.random_query_point(rng)
        xy = ds.projection.to_local_arrays([qp.lat], [qp.lng])[0]
        window = ds.time_span()
        rel = relevant_segments(ds, xy, window)
        all_keys = {rep.key() for rec in ds.recordings
                    for rep in rec.bundle.representatives}
        assert rel <= all_keys
        # Verify one positive example against the raw predicate.
        for rec in ds.recordings:
            for rep in rec.bundle.representatives:
                expected = segment_covers_point(
                    rec.trajectory, rep.t_start, rep.t_end, xy, camera,
                    query_window=window)
                assert (rep.key() in rel) == expected


class TestSimMatrix:
    def test_trace_matrix_properties(self, camera):
        trace = rotation_scenario(duration_s=10, fps=3,
                                  noise=SensorNoiseModel.ideal())
        M = trace_similarity_matrix(trace, camera)
        assert M.shape == (len(trace), len(trace))
        assert np.allclose(np.diag(M), 1.0)
        assert np.allclose(M, M.T)

    def test_subsampling(self, camera):
        trace = rotation_scenario(duration_s=10, fps=3,
                                  noise=SensorNoiseModel.ideal())
        M = trace_similarity_matrix(trace, camera, indices=[0, 5, 10])
        assert M.shape == (3, 3)

    def test_cross_matrix_self_is_pairwise(self, camera):
        trace = rotation_scenario(duration_s=10, fps=3,
                                  noise=SensorNoiseModel.ideal())
        C = cross_trace_similarity_matrix(trace, trace, camera)
        assert np.allclose(np.diag(C), 1.0)
        assert np.allclose(C, trace_similarity_matrix(trace, camera))

    def test_cross_matrix_asymmetric_shapes(self, camera):
        a = rotation_scenario(duration_s=10, fps=3,
                              noise=SensorNoiseModel.ideal())
        b = rotation_scenario(duration_s=6, fps=2,
                              noise=SensorNoiseModel.ideal())
        C = cross_trace_similarity_matrix(a, b, camera)
        assert C.shape == (len(a), len(b))
        assert np.all((0.0 <= C) & (C <= 1.0))
        # Swapping the traces transposes the matrix (both projected
        # into the first trace's plane; the planes agree to fp noise
        # over city-scale separations).
        assert np.allclose(cross_trace_similarity_matrix(b, a, camera), C.T)

    def test_cross_matrix_subsampling(self, camera):
        trace = rotation_scenario(duration_s=10, fps=3,
                                  noise=SensorNoiseModel.ideal())
        C = cross_trace_similarity_matrix(trace, trace, camera,
                                          indices_a=[0, 5],
                                          indices_b=[0, 5, 10])
        assert C.shape == (2, 3)
        full = cross_trace_similarity_matrix(trace, trace, camera)
        assert np.allclose(C, full[np.ix_([0, 5], [0, 5, 10])])

    def test_correlation_perfect_for_identical(self, rng):
        a = rng.uniform(0, 1, (6, 6))
        a = (a + a.T) / 2
        assert matrix_correlation(a, a) == pytest.approx(1.0)

    def test_correlation_sign(self, rng):
        a = rng.uniform(0, 1, (6, 6))
        assert matrix_correlation(a, 1.0 - a) == pytest.approx(-1.0)

    def test_correlation_validation(self, rng):
        with pytest.raises(ValueError):
            matrix_correlation(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            matrix_correlation(np.ones((4, 4)), np.ones((4, 4)))  # constant

    def test_normalized(self):
        v = normalized(np.array([2.0, 4.0, 6.0]))
        assert np.allclose(v, [0.0, 0.5, 1.0])
        assert np.allclose(normalized(np.array([3.0, 3.0])), 1.0)


class TestHarness:
    def test_table_renders(self):
        t = Table("demo", ["name", "value"])
        t.add("x", 1.5)
        t.add("longer-name", 1234567.0)
        out = t.render()
        assert "demo" in out and "longer-name" in out

    def test_table_arity_checked(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_time_call(self):
        dt, result = time_call(lambda: 42)
        assert result == 42 and dt >= 0.0

    def test_best_of(self):
        assert best_of(lambda: None, repeats=2) >= 0.0
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)
