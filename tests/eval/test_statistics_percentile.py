"""The shared percentile helper's edge-case contract.

``repro.eval.statistics.percentile`` is the one definition both
``SimulationReport.latency_percentile`` and the city-scale harness
report through; these tests pin the edges that used to be easy to get
wrong when each caller hand-rolled ``np.percentile``:

* empty samples report 0.0 (a stage that never ran renders as zero,
  not a crash);
* ``q`` is in percent and validated -- the classic fraction/percent
  mixup (``q=0.99`` silently meaning "the bottom of the
  distribution") raises instead;
* a single sample is every percentile of itself;
* ``q=0`` / ``q=100`` are the exact min / max.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.statistics import percentile
from repro.sim.simulation import SimulationReport


def test_empty_samples_report_zero():
    assert percentile([], 50.0) == 0.0
    assert percentile([], 0.0) == 0.0
    assert percentile([], 100.0) == 0.0


def test_single_sample_is_every_percentile():
    for q in (0.0, 1.0, 50.0, 99.0, 99.9, 100.0):
        assert percentile([42.5], q) == 42.5


def test_extremes_are_exact_min_and_max():
    samples = [5.0, 1.0, 9.0, 3.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 100.0) == 9.0


def test_median_of_known_samples():
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50.0) == 3.0
    assert percentile(np.arange(101.0), 99.0) == 99.0


@pytest.mark.parametrize("bad_q", [-0.1, 100.1, 0.99 * 1000.0])
def test_out_of_range_q_raises(bad_q):
    with pytest.raises(ValueError, match="percentile q"):
        percentile([1.0, 2.0], bad_q)


def test_simulation_report_delegates_to_shared_helper():
    report = SimulationReport()
    assert report.latency_percentile(99.0) == 0.0       # no samples yet
    report.query_latencies_ms.append(7.0)
    for q in (0.0, 50.0, 99.9, 100.0):                  # single sample
        assert report.latency_percentile(q) == 7.0
    report.query_latencies_ms.extend([1.0, 3.0])
    assert report.latency_percentile(0.0) == 1.0
    assert report.latency_percentile(100.0) == 7.0
    with pytest.raises(ValueError):
        report.latency_percentile(0.99 * 1000.0)
