# fovlint: module=repro.core.bad_fixture
"""Seeded-violation fixture for the fovlint acceptance test.

Every RF rule must fire at least once on this file; the test pins the
exact rule ids so a regression in any rule is caught.  The module
pragma above places the file inside ``repro.core`` so the
package-scoped rules (RF003, RF005) apply.

This module is never imported -- it is linted as text only.
"""

import math
import random
import struct
import time

import numpy as np

__all__ = ["coverage_score", "vanished"]      # "vanished" is undefined: RF003


def coverage_score(theta, lat, lng, hits=[]):     # mutable default: RF004
    """Score one candidate FoV.

    Returns
    -------
    float or ndarray
        The score.                  # promises dual form, never normalises: RF006
    """
    stamp = time.time()                           # wall clock: RF005
    jitter = random.random()                      # global RNG: RF005
    noise = np.random.normal()                    # legacy numpy RNG: RF005
    x = math.sin(theta)                           # degrees into trig: RF001
    hits.append(x)
    return x + jitter + noise + stamp


def parse_upload(payload):
    """Peek at a wire bundle without the protocol layer."""
    return struct.unpack("<4sB", payload[:5])  # bare wire unpack: RF007


def per_user_counter(registry, uid):
    """Mint one metric family per user id."""
    return registry.counter(f"per_user.{uid}")    # runtime name: RF008


def swapped_call(my_lat, my_lng):
    """Call a (lng, lat) helper with the arguments reversed."""
    return _axis_helper(my_lat, my_lng)           # swapped order: RF002


def _axis_helper(lng, lat):
    return lng, lat
