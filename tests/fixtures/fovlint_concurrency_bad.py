# fovlint: module=repro.shard.conc_fixture
"""Seeded-violation fixture for the concurrency rules (RF009-RF014).

One small class per rule, each reproducing the bug shape the rule
exists for; the acceptance test pins that every rule id fires on this
file.  The module pragma places the file inside ``repro.shard`` so the
whole-program rules apply while the ``repro.core``-scoped per-file
rules (RF003, RF005) stay out of the way.

This module is never imported -- it is linted as text only.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor


class RacyCounter:
    """RF009: `_items` is written under `_lock` but also touched bare."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._high_water = 0

    def record(self, item):
        with self._lock:
            self._items.append(item)
            self._high_water = max(self._high_water, len(self._items))

    def forget(self, item):
        self._items.remove(item)              # unguarded mutate: RF009

    def reset(self):
        self._high_water = 0                  # unguarded rebind: RF009

    def snapshot(self):
        return list(self._items)              # unguarded read: RF009


class CrossedLocks:
    """RF010: `_a` before `_b` in one method, `_b` before `_a` in another."""

    def __init__(self, n):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(n)]

    def forward(self):
        with self._a:
            with self._b:                     # a -> b edge
                pass

    def backward(self):
        with self._b:
            with self._a:                     # b -> a edge: cycle, RF010
                pass

    def migrate(self, i, j):
        with self._shard_locks[i]:
            with self._shard_locks[j]:        # intra-family nest: RF010
                pass


class ForgetfulIndex:
    """RF011: storage mutations with missing / per-record epoch bumps."""

    def __init__(self):
        self._epoch = 0
        self._records = []

    def insert(self, rec):
        self._records.append(rec)             # no bump on any path: RF011

    def insert_many(self, recs):
        for rec in recs:
            self._records.append(rec)
            self._epoch += 1                  # bump per record: RF011

    def clear(self):
        self._records.clear()
        self._epoch += 1                      # fine: one bump per batch


class SleepyServer:
    """RF012: blocking calls inside the guarded region."""

    def __init__(self):
        self._lock = threading.Lock()

    def throttle(self):
        with self._lock:
            time.sleep(0.5)                   # blocking under lock: RF012


def typo_metrics(registry):
    """RF013: unknown family name and kind drift against the catalog."""
    miss = registry.counter("cache.hit")      # typo'd family: RF013
    drift = registry.gauge("cache.hits")      # counter bound as gauge: RF013
    return miss, drift


class LeakyWorkers:
    """RF014: thread and pool with no reachable join/shutdown."""

    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=2)   # no shutdown: RF014

    def fire_and_forget(self, fn):
        threading.Thread(target=fn).start()   # unbound thread: RF014

    def run_local(self, fn):
        worker = threading.Thread(target=fn)  # local, never joined: RF014
        worker.start()
