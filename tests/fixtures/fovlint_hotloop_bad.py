# fovlint: module=repro.core.retrieval
"""Seeded-violation fixture for the RF015 acceptance test.

RF015 is scoped to the query hot-path modules, so this file borrows
``repro.core.retrieval``'s name via the module pragma; the loops below
must each fire exactly once, and the sanctioned ``.tolist()`` funnel
must stay quiet.

This module is never imported -- it is linted as text only.
"""

__all__ = ["fast_scan", "slow_scan"]


def slow_scan(view, queries):
    """Iterate packed columns the slow way (every loop here: RF015)."""
    total = 0.0
    for v in view.lat:                         # direct column iteration
        total += v
    for r in view.grid.fused[10:20]:           # a slice is still the column
        total += r[0]
    for i, t in enumerate(view.theta):         # enumerate() is transparent
        total += i * t
    return total


def fast_scan(view):
    """The sanctioned funnel: one bulk conversion, then plain floats."""
    total = 0.0
    for v in view.lat.tolist():                # exempt: explicit funnel
        total += v
    return total
