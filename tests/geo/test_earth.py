"""Unit tests for the Eq. 12 transform and the local projection."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.geo.earth import (
    EARTH_RADIUS_M,
    LocalProjection,
    displacement,
    haversine_distance,
    metres_per_degree,
    radius_to_degrees,
)


class TestMetresPerDegree:
    def test_equator(self):
        m_lng, m_lat = metres_per_degree(0.0)
        expected = 2 * np.pi * EARTH_RADIUS_M / 360.0
        assert m_lng == pytest.approx(expected)
        assert m_lat == pytest.approx(expected)

    def test_longitude_shrinks_with_latitude(self):
        m_lng_40, m_lat_40 = metres_per_degree(40.0)
        assert m_lng_40 == pytest.approx(m_lat_40 * np.cos(np.radians(40.0)))

    def test_roughly_111km(self):
        _, m_lat = metres_per_degree(40.0)
        assert 110_000 < m_lat < 112_000


class TestDisplacement:
    def test_zero(self):
        p = GeoPoint(40.0, 116.0)
        assert displacement(p, p) == (0.0, 0.0)

    def test_north_positive_y(self):
        p1 = GeoPoint(40.0, 116.0)
        p2 = GeoPoint(40.001, 116.0)
        dx, dy = displacement(p1, p2)
        assert dx == pytest.approx(0.0)
        assert dy > 0

    def test_east_positive_x(self):
        p1 = GeoPoint(40.0, 116.0)
        p2 = GeoPoint(40.0, 116.001)
        dx, dy = displacement(p1, p2)
        assert dy == pytest.approx(0.0)
        assert dx > 0

    def test_antisymmetric(self):
        p1 = GeoPoint(40.0, 116.0)
        p2 = GeoPoint(40.002, 116.003)
        d12 = displacement(p1, p2)
        d21 = displacement(p2, p1)
        assert d12[0] == pytest.approx(-d21[0], rel=1e-9)
        assert d12[1] == pytest.approx(-d21[1], rel=1e-9)

    def test_agrees_with_haversine_city_scale(self):
        p1 = GeoPoint(40.0, 116.0)
        p2 = GeoPoint(40.01, 116.015)   # ~1.7 km apart
        dx, dy = displacement(p1, p2)
        flat = float(np.hypot(dx, dy))
        sphere = haversine_distance(p1, p2)
        assert flat == pytest.approx(sphere, rel=1e-3)

    def test_paper_formula_close_at_small_scale(self):
        p1 = GeoPoint(40.0, 116.0)
        p2 = GeoPoint(40.0005, 116.0008)
        corrected = displacement(p1, p2)
        literal = displacement(p1, p2, paper_formula=True)
        # The literal Eq. 12 mis-scales longitude by ~cos(lat) but at
        # sub-km displacements both give the same order of magnitude;
        # this documents the deviation rather than hiding it.
        assert np.sign(corrected[0]) == np.sign(literal[0])
        assert corrected[1] == pytest.approx(literal[1])


class TestHaversine:
    def test_zero(self):
        p = GeoPoint(40.0, 116.0)
        assert haversine_distance(p, p) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_distance(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0))
        assert d == pytest.approx(2 * np.pi * EARTH_RADIUS_M / 360.0, rel=1e-9)

    def test_symmetric(self):
        p1, p2 = GeoPoint(40.0, 116.0), GeoPoint(41.0, 117.0)
        assert haversine_distance(p1, p2) == pytest.approx(
            haversine_distance(p2, p1)
        )


class TestRadiusToDegrees:
    def test_inverse_of_scale(self):
        r_lng, r_lat = radius_to_degrees(1000.0, 40.0)
        m_lng, m_lat = metres_per_degree(40.0)
        assert r_lng * m_lng == pytest.approx(1000.0)
        assert r_lat * m_lat == pytest.approx(1000.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            radius_to_degrees(-1.0, 40.0)

    def test_pole_raises(self):
        with pytest.raises(ValueError):
            radius_to_degrees(10.0, 90.0)


class TestLocalProjection:
    def test_origin_maps_to_zero(self, projection, origin):
        assert projection.to_local(origin) == (0.0, 0.0)

    def test_roundtrip(self, projection):
        p = projection.to_geo(123.4, -56.7)
        x, y = projection.to_local(p)
        assert x == pytest.approx(123.4, abs=1e-6)
        assert y == pytest.approx(-56.7, abs=1e-6)

    def test_vectorised_matches_scalar(self, projection, rng):
        lats = 40.003 + rng.uniform(-0.01, 0.01, 20)
        lngs = 116.326 + rng.uniform(-0.01, 0.01, 20)
        xy = projection.to_local_arrays(lats, lngs)
        for i in range(20):
            x, y = projection.to_local(GeoPoint(float(lats[i]), float(lngs[i])))
            assert xy[i, 0] == pytest.approx(x, abs=1e-9)
            assert xy[i, 1] == pytest.approx(y, abs=1e-9)


class TestGeoPoint:
    def test_validates_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_validates_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)
