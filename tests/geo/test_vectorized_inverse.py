"""Tests for the vectorised inverse projection and batch queries."""

import numpy as np
import pytest

from repro import CameraModel, CloudServer, Query
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.traces.dataset import random_representative_fovs


class TestToGeoArrays:
    def test_matches_scalar(self, projection, rng):
        xy = rng.uniform(-2000, 2000, (50, 2))
        lats, lngs = projection.to_geo_arrays(xy)
        for i in range(50):
            p = projection.to_geo(float(xy[i, 0]), float(xy[i, 1]))
            assert lats[i] == pytest.approx(p.lat, abs=1e-12)
            assert lngs[i] == pytest.approx(p.lng, abs=1e-12)

    def test_roundtrip(self, projection, rng):
        xy = rng.uniform(-5000, 5000, (100, 2))
        lats, lngs = projection.to_geo_arrays(xy)
        back = projection.to_local_arrays(lats, lngs)
        assert np.allclose(back, xy, atol=1e-6)

    def test_empty(self, projection):
        lats, lngs = projection.to_geo_arrays(np.empty((0, 2)))
        assert lats.size == 0 and lngs.size == 0


class TestBatchQueries:
    def test_query_many_matches_singles(self, camera, rng):
        server = CloudServer(camera)
        reps = random_representative_fovs(500, rng)
        server.ingest(reps)
        queries = []
        for _ in range(10):
            anchor = reps[int(rng.integers(len(reps)))]
            queries.append(Query(t_start=anchor.t_start - 100,
                                 t_end=anchor.t_end + 100,
                                 center=anchor.point, radius=200.0))
        batch = server.query_many(queries)
        singles = [server.query(q) for q in queries]
        assert [r.keys() for r in batch] == [r.keys() for r in singles]
        assert server.stats.queries_served == 20

    def test_empty_batch(self, camera):
        server = CloudServer(camera)
        assert server.query_many([]) == []
