"""Edge cases of the angle kernels at the seams of their contracts.

Complements ``test_angles.py`` with the boundary values the domain
lint rules exist to protect: the 0/360 wrap itself, the exact 90-deg
fold point, antipodal circular means, and scalar/array dual-form
parity (every function must return a Python ``float``/``bool`` for
scalar inputs and an ndarray for array inputs -- the RF006 contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.angles import (
    angle_between,
    angular_difference,
    circular_mean,
    circular_variance,
    fold_to_acute,
    normalize_angle,
    normalize_angle_signed,
    unwrap_degrees,
)


class TestWrapBoundary:
    def test_exact_360_maps_to_zero(self):
        assert normalize_angle(360.0) == 0.0

    def test_exact_720_maps_to_zero(self):
        assert normalize_angle(720.0) == 0.0

    def test_tiny_negative_stays_in_half_open_range(self):
        # np.mod(-1e-15, 360) rounds to exactly 360.0; the contract is
        # [0, 360) for *every* float, so it must fold back to 0.
        out = normalize_angle(-1e-15)
        assert 0.0 <= out < 360.0

    def test_tiny_negative_array(self):
        out = normalize_angle(np.array([-1e-15, -1e-13, 359.9999]))
        assert np.all(out >= 0.0) and np.all(out < 360.0)

    def test_difference_across_wrap_is_tiny(self):
        assert angular_difference(359.5, 0.5) == pytest.approx(1.0)

    def test_difference_at_exact_180(self):
        assert angular_difference(0.0, 180.0) == pytest.approx(180.0)

    def test_signed_wrap_convention(self):
        # (-180, 180]: exact -180 input belongs to the +180 side.
        assert normalize_angle_signed(-180.0) == 180.0
        assert normalize_angle_signed(180.0) == 180.0

    def test_arc_membership_at_zero(self):
        assert angle_between(0.0, 350.0, 10.0)
        assert angle_between(350.0, 350.0, 10.0)
        assert angle_between(10.0, 350.0, 10.0)
        assert not angle_between(180.0, 350.0, 10.0)


class TestFoldAtNinety:
    def test_exact_90_stays_90(self):
        assert fold_to_acute(90.0, 0.0) == pytest.approx(90.0)

    def test_just_past_90_folds_back(self):
        assert fold_to_acute(90.0 + 1e-9, 0.0) == pytest.approx(90.0)

    def test_180_folds_to_zero(self):
        assert fold_to_acute(180.0, 0.0) == pytest.approx(0.0)

    def test_symmetric_about_90(self):
        for eps in (0.5, 5.0, 30.0):
            lo = fold_to_acute(90.0 - eps, 0.0)
            hi = fold_to_acute(90.0 + eps, 0.0)
            assert lo == pytest.approx(hi)

    def test_range_never_exceeded_on_dense_sweep(self):
        sweep = np.linspace(-720.0, 720.0, 14401)
        out = np.asarray(fold_to_acute(sweep, 33.0))
        assert np.all(out >= 0.0) and np.all(out <= 90.0)


class TestAntipodalMean:
    def test_two_opposed_angles_raise(self):
        with pytest.raises(ValueError, match="undefined"):
            circular_mean([0.0, 180.0])

    def test_four_way_symmetric_raises(self):
        with pytest.raises(ValueError, match="undefined"):
            circular_mean([0.0, 90.0, 180.0, 270.0])

    def test_weights_can_break_the_tie(self):
        # Asymmetric weights make the antipodal pair well-defined again.
        assert circular_mean([0.0, 180.0], weights=[3.0, 1.0]) \
            == pytest.approx(0.0)

    def test_nearly_antipodal_is_still_defined(self):
        out = circular_mean([0.0, 179.0])
        assert out == pytest.approx(89.5)

    def test_antipodal_variance_is_one(self):
        assert circular_variance([0.0, 180.0]) == pytest.approx(1.0)

    def test_mean_of_359_and_1_is_zero(self):
        assert circular_mean([359.0, 1.0]) == pytest.approx(0.0, abs=1e-9)


class TestScalarArrayParity:
    """Dual-form contract: scalar in -> float out, array in -> array out."""

    def test_normalize_angle_types(self):
        assert isinstance(normalize_angle(370.0), float)
        assert isinstance(normalize_angle(np.array([370.0])), np.ndarray)

    def test_normalize_angle_signed_types(self):
        assert isinstance(normalize_angle_signed(190.0), float)
        assert isinstance(normalize_angle_signed(np.array([190.0])),
                          np.ndarray)

    def test_angular_difference_types(self):
        assert isinstance(angular_difference(10.0, 20.0), float)
        assert isinstance(angular_difference(np.array([10.0]), 20.0),
                          np.ndarray)

    def test_angle_between_types(self):
        assert isinstance(angle_between(5.0, 0.0, 10.0), bool)
        out = angle_between(np.array([5.0, 20.0]), 0.0, 10.0)
        assert isinstance(out, np.ndarray) and out.dtype == bool

    def test_fold_to_acute_types(self):
        assert isinstance(fold_to_acute(120.0, 0.0), float)
        assert isinstance(fold_to_acute(np.array([120.0]), 0.0), np.ndarray)

    def test_values_agree_between_forms(self):
        thetas = [-370.0, -1e-15, 0.0, 89.999, 90.0, 180.0, 359.5, 360.0]
        vec = np.asarray(normalize_angle(np.array(thetas)))
        for i, t in enumerate(thetas):
            assert normalize_angle(t) == pytest.approx(vec[i])
        vec = np.asarray(fold_to_acute(np.array(thetas), 45.0))
        for i, t in enumerate(thetas):
            assert fold_to_acute(t, 45.0) == pytest.approx(vec[i])

    def test_unwrap_returns_array_even_for_short_input(self):
        out = unwrap_degrees([350.0, 10.0])
        assert isinstance(out, np.ndarray)
        assert out[1] == pytest.approx(370.0)
