"""Unit tests for angle arithmetic (wrap, fold, circular statistics)."""

import numpy as np
import pytest

from repro.geometry.angles import (
    angle_between,
    angular_difference,
    circular_mean,
    circular_variance,
    fold_to_acute,
    normalize_angle,
    normalize_angle_signed,
    unwrap_degrees,
)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(45.0) == 45.0

    def test_wraps_over_360(self):
        assert normalize_angle(370.0) == pytest.approx(10.0)

    def test_wraps_negative(self):
        assert normalize_angle(-30.0) == pytest.approx(330.0)

    def test_multiple_turns(self):
        assert normalize_angle(725.0) == pytest.approx(5.0)

    def test_array_input(self):
        out = normalize_angle(np.array([-10.0, 0.0, 360.0, 540.0]))
        assert np.allclose(out, [350.0, 0.0, 0.0, 180.0])


class TestNormalizeAngleSigned:
    def test_small_positive(self):
        assert normalize_angle_signed(30.0) == pytest.approx(30.0)

    def test_wraps_to_negative(self):
        assert normalize_angle_signed(270.0) == pytest.approx(-90.0)

    def test_exact_180_maps_to_positive(self):
        assert normalize_angle_signed(180.0) == pytest.approx(180.0)
        assert normalize_angle_signed(-180.0) == pytest.approx(180.0)

    def test_array(self):
        out = normalize_angle_signed(np.array([0.0, 359.0, 181.0]))
        assert np.allclose(out, [0.0, -1.0, -179.0])


class TestAngularDifference:
    def test_zero_for_equal(self):
        assert angular_difference(123.0, 123.0) == 0.0

    def test_simple(self):
        assert angular_difference(10.0, 50.0) == pytest.approx(40.0)

    def test_wraparound_shorter_arc(self):
        assert angular_difference(350.0, 10.0) == pytest.approx(20.0)

    def test_max_is_180(self):
        assert angular_difference(0.0, 180.0) == pytest.approx(180.0)

    def test_symmetric(self):
        assert angular_difference(33.0, 271.0) == angular_difference(271.0, 33.0)

    def test_eq2_definition(self):
        # delta_theta = min(|t2 - t1|, 360 - |t2 - t1|) for t in [0, 360)
        for t1, t2 in [(0, 90), (45, 315), (359, 1), (180, 180)]:
            d = abs(t2 - t1)
            assert angular_difference(t1, t2) == pytest.approx(min(d, 360 - d))

    def test_broadcast(self):
        out = angular_difference(np.array([0.0, 90.0]), 45.0)
        assert np.allclose(out, [45.0, 45.0])


class TestAngleBetween:
    def test_inside_simple_arc(self):
        assert angle_between(30.0, 0.0, 90.0)

    def test_outside_simple_arc(self):
        assert not angle_between(120.0, 0.0, 90.0)

    def test_wraparound_arc(self):
        assert angle_between(5.0, 350.0, 20.0)
        assert angle_between(355.0, 350.0, 20.0)
        assert not angle_between(180.0, 350.0, 20.0)

    def test_endpoints_inclusive(self):
        assert angle_between(350.0, 350.0, 20.0)
        assert angle_between(20.0, 350.0, 20.0)


class TestFoldToAcute:
    def test_parallel_is_zero(self):
        assert fold_to_acute(0.0, 0.0) == 0.0

    def test_antiparallel_is_zero(self):
        # Moving backward along the axis is still a parallel translation.
        assert fold_to_acute(180.0, 0.0) == pytest.approx(0.0)

    def test_perpendicular_is_90(self):
        assert fold_to_acute(90.0, 0.0) == pytest.approx(90.0)
        assert fold_to_acute(270.0, 0.0) == pytest.approx(90.0)

    def test_oblique(self):
        assert fold_to_acute(45.0, 0.0) == pytest.approx(45.0)
        assert fold_to_acute(135.0, 0.0) == pytest.approx(45.0)

    def test_relative_to_axis(self):
        assert fold_to_acute(100.0, 40.0) == pytest.approx(60.0)

    def test_range_bounds(self):
        rng = np.random.default_rng(0)
        tp = rng.uniform(0, 360, 200)
        ax = rng.uniform(0, 360, 200)
        out = fold_to_acute(tp, ax)
        assert np.all(out >= 0.0) and np.all(out <= 90.0)


class TestCircularMean:
    def test_plain_mean_when_no_wrap(self):
        assert circular_mean([10.0, 20.0, 30.0]) == pytest.approx(20.0)

    def test_wraparound(self):
        # The mean of 359 and 1 is 0 (equivalently 360), never 180.
        mean = circular_mean([359.0, 1.0])
        assert angular_difference(mean, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_weighted(self):
        out = circular_mean([0.0, 90.0], weights=[3.0, 1.0])
        assert 0.0 < out < 45.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean([])

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            circular_mean([0.0, 180.0])

    def test_bad_weights_raise(self):
        with pytest.raises(ValueError):
            circular_mean([0.0, 10.0], weights=[0.0, 0.0])


class TestCircularVariance:
    def test_zero_for_identical(self):
        assert circular_variance([42.0] * 5) == pytest.approx(0.0)

    def test_one_for_opposed(self):
        assert circular_variance([0.0, 180.0]) == pytest.approx(1.0)

    def test_monotone_with_spread(self):
        tight = circular_variance([0.0, 5.0, 10.0])
        loose = circular_variance([0.0, 60.0, 120.0])
        assert tight < loose


class TestUnwrapDegrees:
    def test_continuous_through_wrap(self):
        wrapped = [350.0, 355.0, 0.0, 5.0]
        out = unwrap_degrees(wrapped)
        assert np.all(np.diff(out) > 0)
        assert out[-1] == pytest.approx(365.0)
