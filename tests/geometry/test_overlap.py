"""Unit tests for sector overlap via convex clipping.

Includes the model-validation test: for co-located sectors the exact
geometric overlap fraction equals the paper's rotation similarity
(Eq. 4) -- the overlap interpretation the paper builds Sim_R from.
"""

import numpy as np
import pytest

from repro.core.similarity import sim_rotation
from repro.geometry.overlap import (
    convex_clip,
    overlap_fraction,
    sector_overlap_area,
    sector_polygon,
)
from repro.geometry.polygon import polygon_area
from repro.geometry.sector import Sector
from repro.geometry.vec import Vec2


def sector(x=0.0, y=0.0, az=0.0, half=30.0, r=100.0):
    return Sector(Vec2(x, y), az, half, r)


class TestConvexClip:
    def test_overlapping_squares(self):
        a = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], float)
        b = np.array([[1, 1], [3, 1], [3, 3], [1, 3]], float)
        assert polygon_area(convex_clip(a, b)) == pytest.approx(1.0)

    def test_winding_independent(self):
        a = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], float)
        b = np.array([[1, 1], [3, 1], [3, 3], [1, 3]], float)
        assert polygon_area(convex_clip(a, b[::-1])) == pytest.approx(1.0)

    def test_contained(self):
        outer = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], float)
        inner = np.array([[2, 2], [3, 2], [3, 3], [2, 3]], float)
        assert polygon_area(convex_clip(inner, outer)) == pytest.approx(1.0)
        assert polygon_area(convex_clip(outer, inner)) == pytest.approx(1.0)

    def test_disjoint_empty(self):
        a = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], float)
        b = np.array([[5, 5], [6, 5], [6, 6], [5, 6]], float)
        assert convex_clip(a, b).shape[0] < 3 or \
            polygon_area(convex_clip(a, b)) == pytest.approx(0.0, abs=1e-12)


class TestSectorPolygon:
    def test_area_converges_to_sector(self):
        s = sector()
        approx = polygon_area(sector_polygon(s, arc_points=128))
        assert approx == pytest.approx(s.area(), rel=1e-3)

    def test_rejects_reflex(self):
        with pytest.raises(ValueError):
            sector_polygon(sector(half=100.0))

    def test_rejects_tiny_arc(self):
        with pytest.raises(ValueError):
            sector_polygon(sector(), arc_points=1)


class TestSectorOverlap:
    def test_self_overlap_is_area(self):
        s = sector()
        assert sector_overlap_area(s, s) == pytest.approx(s.area(), rel=1e-3)
        assert overlap_fraction(s, s) == pytest.approx(1.0, abs=1e-3)

    def test_symmetric(self):
        a = sector(az=10.0)
        b = sector(x=30.0, y=20.0, az=50.0)
        assert sector_overlap_area(a, b) == pytest.approx(
            sector_overlap_area(b, a), rel=1e-9)

    def test_opposite_directions_zero(self):
        assert sector_overlap_area(sector(az=0.0), sector(az=180.0)) == 0.0

    def test_far_apart_zero(self):
        assert sector_overlap_area(sector(), sector(x=500.0)) == 0.0

    def test_rotation_overlap_matches_eq4(self):
        """Co-located sectors: exact overlap fraction == Sim_R (Eq. 4)."""
        base = sector()
        for dtheta in (0.0, 10.0, 25.0, 45.0, 59.0, 61.0, 90.0):
            frac = overlap_fraction(base, sector(az=dtheta), arc_points=256)
            assert frac == pytest.approx(
                sim_rotation(dtheta, 30.0), abs=2e-3), f"dtheta={dtheta}"

    def test_monotone_in_separation(self):
        base = sector()
        areas = [sector_overlap_area(base, sector(x=d))
                 for d in (0.0, 20.0, 50.0, 90.0, 130.0)]
        assert all(b <= a + 1e-9 for a, b in zip(areas, areas[1:]))

    def test_correlates_with_overlap_for_similar_orientations(self, rng):
        """For near-parallel cameras, Eq. 10 tracks true area overlap.

        Restricted to similar orientations on purpose: for *opposed*
        cameras the two measures diverge by design -- their sectors can
        overlap almost entirely in area while Sim is 0, because they
        film opposite faces of the same space (see the next test).
        """
        from repro.core.similarity import similarity_local
        from repro import CameraModel
        camera = CameraModel()
        sims, overlaps = [], []
        for _ in range(60):
            dx, dy = rng.uniform(-120, 120, 2)
            t1 = float(rng.uniform(0, 360))
            t2 = t1 + float(rng.uniform(-40, 40))
            sims.append(float(similarity_local(dx, dy, t1, t2, camera)))
            overlaps.append(overlap_fraction(
                sector(az=t1), sector(x=dx, y=dy, az=t2), arc_points=32))
        corr = float(np.corrcoef(sims, overlaps)[0, 1])
        assert corr > 0.6, f"model vs geometry correlation too low: {corr}"

    def test_opposed_cameras_overlap_without_similarity(self):
        """Facing cameras: large area overlap, zero model similarity --
        the content-free measure is about *shared view direction*, not
        shared floor space (you cannot match footage of the front of a
        building against footage of its back)."""
        from repro.core.similarity import similarity_local
        from repro import CameraModel
        a = sector(az=0.0)
        b = sector(x=0.0, y=100.0, az=180.0)   # 100 m ahead, facing back
        assert overlap_fraction(a, b) > 0.4
        assert similarity_local(0.0, 100.0, 0.0, 180.0, CameraModel()) == 0.0
