"""Unit tests for polygon area and rectangle-union sweeps."""

import numpy as np
import pytest

from repro.geometry.polygon import (
    clip_rectangle,
    polygon_area,
    rectangle_union_area,
    rectangle_union_length_1d,
)


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == 1.0

    def test_winding_invariant(self):
        cw = [(0, 0), (0, 1), (1, 1), (1, 0)]
        ccw = list(reversed(cw))
        assert polygon_area(cw) == polygon_area(ccw) == 1.0

    def test_triangle(self):
        assert polygon_area([(0, 0), (4, 0), (0, 3)]) == 6.0

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            polygon_area([(0, 0), (1, 1)])


class TestUnionLength1D:
    def test_empty(self):
        assert rectangle_union_length_1d(np.empty((0, 2))) == 0.0

    def test_disjoint(self):
        assert rectangle_union_length_1d([(0, 1), (2, 3)]) == 2.0

    def test_overlapping(self):
        assert rectangle_union_length_1d([(0, 2), (1, 3)]) == 3.0

    def test_nested(self):
        assert rectangle_union_length_1d([(0, 10), (2, 3)]) == 10.0

    def test_touching(self):
        assert rectangle_union_length_1d([(0, 1), (1, 2)]) == 2.0

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            rectangle_union_length_1d([(2, 1)])


class TestUnionArea:
    def test_empty(self):
        assert rectangle_union_area([]) == 0.0

    def test_single(self):
        assert rectangle_union_area([(0, 0, 2, 3)]) == 6.0

    def test_disjoint_sum(self):
        assert rectangle_union_area([(0, 0, 1, 1), (5, 5, 7, 6)]) == 3.0

    def test_identical_count_once(self):
        assert rectangle_union_area([(0, 0, 2, 2)] * 4) == 4.0

    def test_partial_overlap(self):
        # Two 2x2 squares overlapping in a 1x1 corner: 4 + 4 - 1.
        assert rectangle_union_area([(0, 0, 2, 2), (1, 1, 3, 3)]) == 7.0

    def test_cross_shape(self):
        # Horizontal 6x2 and vertical 2x6 bars crossing: 12 + 12 - 4.
        out = rectangle_union_area([(-3, -1, 3, 1), (-1, -3, 1, 3)])
        assert out == 20.0

    def test_degenerate_contributes_zero(self):
        assert rectangle_union_area([(0, 0, 0, 5), (1, 1, 1, 1)]) == 0.0

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            rectangle_union_area([(1, 0, 0, 1)])

    def test_montecarlo_agreement(self, rng):
        """Sweep-line area must match Monte-Carlo estimation."""
        rects = []
        for _ in range(12):
            x0, y0 = rng.uniform(0, 8, 2)
            rects.append((x0, y0, x0 + rng.uniform(0.5, 3), y0 + rng.uniform(0.5, 3)))
        exact = rectangle_union_area(rects)
        pts = rng.uniform(0, 12, size=(200_000, 2))
        r = np.asarray(rects)
        inside = ((pts[:, None, 0] >= r[None, :, 0]) & (pts[:, None, 0] <= r[None, :, 2]) &
                  (pts[:, None, 1] >= r[None, :, 1]) & (pts[:, None, 1] <= r[None, :, 3]))
        mc = inside.any(axis=1).mean() * 144.0
        assert exact == pytest.approx(mc, rel=0.05)


class TestClipRectangle:
    def test_inside_unchanged(self):
        assert clip_rectangle((1, 1, 2, 2), (0, 0, 10, 10)) == (1, 1, 2, 2)

    def test_partial_clip(self):
        assert clip_rectangle((-1, -1, 5, 5), (0, 0, 3, 3)) == (0, 0, 3, 3)

    def test_disjoint_returns_none(self):
        assert clip_rectangle((10, 10, 12, 12), (0, 0, 5, 5)) is None
