"""Unit tests for the viewing sector and its predicates."""

import numpy as np
import pytest

from repro.geometry.sector import (
    Sector,
    sector_circle_intersects,
    sector_contains_point,
    sector_contains_points,
    sectors_overlap_angle,
)
from repro.geometry.vec import Vec2


def north_sector(radius=100.0, half_angle=30.0, apex=Vec2(0, 0)):
    return Sector(apex=apex, azimuth=0.0, half_angle=half_angle, radius=radius)


class TestSectorValidation:
    def test_rejects_zero_half_angle(self):
        with pytest.raises(ValueError):
            Sector(Vec2(0, 0), 0.0, 0.0, 10.0)

    def test_rejects_wide_half_angle(self):
        with pytest.raises(ValueError):
            Sector(Vec2(0, 0), 0.0, 181.0, 10.0)

    def test_rejects_non_positive_radius(self):
        with pytest.raises(ValueError):
            Sector(Vec2(0, 0), 0.0, 30.0, 0.0)

    def test_angle_range_wraps(self):
        s = Sector(Vec2(0, 0), 10.0, 30.0, 10.0)
        assert s.angle_range == (340.0, 40.0)

    def test_area(self):
        s = north_sector(radius=10.0, half_angle=90.0)  # half disc
        assert s.area() == pytest.approx(np.pi * 100.0 / 2.0)


class TestContainsPoint:
    def test_apex_inside(self):
        assert sector_contains_point(north_sector(), Vec2(0, 0))

    def test_straight_ahead_inside(self):
        assert sector_contains_point(north_sector(), Vec2(0, 50))

    def test_beyond_radius_outside(self):
        assert not sector_contains_point(north_sector(), Vec2(0, 101))

    def test_on_arc_inside(self):
        assert sector_contains_point(north_sector(), Vec2(0, 100))

    def test_outside_wedge(self):
        # 45 deg off-axis > 30 deg half angle.
        assert not sector_contains_point(north_sector(), Vec2(50, 50))

    def test_on_edge_inside(self):
        # Exactly 30 deg off axis.
        p = Vec2(50 * np.sin(np.radians(30)), 50 * np.cos(np.radians(30)))
        assert sector_contains_point(north_sector(), p)

    def test_behind_outside(self):
        assert not sector_contains_point(north_sector(), Vec2(0, -10))

    def test_wrapping_azimuth(self):
        s = Sector(Vec2(0, 0), 350.0, 30.0, 100.0)
        assert sector_contains_point(s, Vec2(0, 50))       # north within (320, 20)
        assert not sector_contains_point(s, Vec2(50, 0))   # east outside


class TestContainsPointsVectorised:
    def test_matches_scalar(self, rng):
        apexes = rng.uniform(-50, 50, size=(8, 2))
        azimuths = rng.uniform(0, 360, size=8)
        points = rng.uniform(-120, 120, size=(20, 2))
        out = sector_contains_points(apexes, azimuths, 30.0, 100.0, points)
        assert out.shape == (8, 20)
        for i in range(8):
            s = Sector(Vec2(*apexes[i]), float(azimuths[i]), 30.0, 100.0)
            for j in range(20):
                assert out[i, j] == sector_contains_point(s, Vec2(*points[j])), (
                    f"mismatch at sector {i}, point {j}"
                )


class TestCircleIntersects:
    def test_disc_containing_apex(self):
        assert sector_circle_intersects(north_sector(), Vec2(0, -3), 5.0)

    def test_center_inside_sector(self):
        assert sector_circle_intersects(north_sector(), Vec2(0, 50), 1.0)

    def test_disc_far_away(self):
        assert not sector_circle_intersects(north_sector(), Vec2(0, 300), 10.0)

    def test_disc_behind(self):
        assert not sector_circle_intersects(north_sector(), Vec2(0, -50), 10.0)

    def test_disc_touching_edge(self):
        # Circle centred east of the sector, touching the right edge.
        edge_dir = np.radians(30.0)
        mid_edge = Vec2(50 * np.sin(edge_dir), 50 * np.cos(edge_dir))
        outward = Vec2(np.cos(edge_dir), -np.sin(edge_dir))  # perpendicular
        c = mid_edge + outward * 4.0
        assert sector_circle_intersects(north_sector(), c, 4.5)
        assert not sector_circle_intersects(north_sector(), c, 3.0)

    def test_disc_beyond_arc_within_reach(self):
        assert sector_circle_intersects(north_sector(), Vec2(0, 105), 6.0)
        assert not sector_circle_intersects(north_sector(), Vec2(0, 105), 4.0)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            sector_circle_intersects(north_sector(), Vec2(0, 0), -1.0)

    def test_montecarlo_against_sampling(self, rng):
        """The predicate must agree with dense point sampling of the disc."""
        for _ in range(30):
            s = Sector(Vec2(*rng.uniform(-20, 20, 2)),
                       float(rng.uniform(0, 360)), 35.0, 60.0)
            c = Vec2(*rng.uniform(-80, 80, 2))
            r = float(rng.uniform(1.0, 25.0))
            # Sample the disc densely.
            phi = rng.uniform(0, 2 * np.pi, 400)
            rad = np.sqrt(rng.uniform(0, 1, 400)) * r
            pts = np.stack([c.x + rad * np.cos(phi), c.y + rad * np.sin(phi)],
                           axis=-1)
            sampled = sector_contains_points(
                np.array([[s.apex.x, s.apex.y]]), np.array([s.azimuth]),
                s.half_angle, s.radius, pts,
            ).any()
            predicate = sector_circle_intersects(s, c, r)
            if sampled:
                assert predicate, "sampling found overlap the predicate missed"
            # (predicate may be True when only the boundary sliver overlaps;
            # sampling can miss that, so no assertion the other way)


class TestOverlapAngle:
    def test_identical(self):
        assert sectors_overlap_angle(10.0, 10.0, 30.0) == 60.0

    def test_partial(self):
        assert sectors_overlap_angle(0.0, 20.0, 30.0) == pytest.approx(40.0)

    def test_disjoint(self):
        assert sectors_overlap_angle(0.0, 90.0, 30.0) == 0.0

    def test_wraparound(self):
        assert sectors_overlap_angle(350.0, 10.0, 30.0) == pytest.approx(40.0)

    def test_wide_sectors_min_overlap(self):
        # Two 150-deg half-angle sectors always overlap >= 2*300 - 360.
        assert sectors_overlap_angle(0.0, 180.0, 150.0) == pytest.approx(240.0)
