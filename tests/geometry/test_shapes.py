"""Unit tests for box algebra (the R-tree's substrate)."""

import numpy as np
import pytest

from repro.geometry.shapes import (
    Box,
    box_area,
    box_contains,
    box_intersects,
    box_union,
    boxes_intersect_matrix,
    boxes_union_all,
    enlargement,
    stacked_area,
    stacked_margin,
    stacked_union,
)


class TestBoxValidation:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Box((1.0,), (0.0,))

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            Box((0.0,), (1.0, 2.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_degenerate_allowed(self):
        b = Box.from_point((1.0, 2.0, 3.0))
        assert b.mins == b.maxs
        assert box_area(b) == 0.0

    def test_center_and_extents(self):
        b = Box((0.0, 0.0), (4.0, 2.0))
        assert b.center == (2.0, 1.0)
        assert b.extents() == (4.0, 2.0)


class TestPredicates:
    def test_area(self):
        assert box_area(Box((0, 0, 0), (2, 3, 4))) == 24.0

    def test_intersects_overlapping(self):
        assert box_intersects(Box((0, 0), (2, 2)), Box((1, 1), (3, 3)))

    def test_intersects_touching(self):
        assert box_intersects(Box((0, 0), (1, 1)), Box((1, 1), (2, 2)))

    def test_disjoint(self):
        assert not box_intersects(Box((0, 0), (1, 1)), Box((2, 2), (3, 3)))

    def test_contains(self):
        outer = Box((0, 0), (10, 10))
        assert box_contains(outer, Box((1, 1), (9, 9)))
        assert box_contains(outer, outer)
        assert not box_contains(outer, Box((5, 5), (11, 11)))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            box_intersects(Box((0,), (1,)), Box((0, 0), (1, 1)))


class TestUnion:
    def test_union_covers_both(self):
        a, b = Box((0, 0), (1, 1)), Box((2, -1), (3, 0.5))
        u = box_union(a, b)
        assert box_contains(u, a) and box_contains(u, b)
        assert u == Box((0, -1), (3, 1))

    def test_union_all(self):
        boxes = [Box((i, i), (i + 1, i + 1)) for i in range(5)]
        u = boxes_union_all(boxes)
        assert u == Box((0, 0), (5, 5))

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            boxes_union_all([])

    def test_enlargement(self):
        mbr = Box((0, 0), (2, 2))
        assert enlargement(mbr, Box((1, 1), (2, 2))) == 0.0
        assert enlargement(mbr, Box((0, 0), (4, 2))) == pytest.approx(4.0)


class TestStackedKernels:
    def test_stacked_area_margin(self):
        mins = np.array([[0.0, 0.0], [1.0, 1.0]])
        maxs = np.array([[2.0, 3.0], [1.0, 4.0]])
        assert np.allclose(stacked_area(mins, maxs), [6.0, 0.0])
        assert np.allclose(stacked_margin(mins, maxs), [5.0, 3.0])

    def test_stacked_union(self):
        mins = np.array([[0.0, 0.0]])
        maxs = np.array([[1.0, 1.0]])
        u_min, u_max = stacked_union(mins, maxs, np.array([-1.0, 0.5]),
                                     np.array([0.5, 2.0]))
        assert np.allclose(u_min, [[-1.0, 0.0]])
        assert np.allclose(u_max, [[1.0, 2.0]])

    def test_intersect_matrix_matches_scalar(self, rng):
        a_min = rng.uniform(0, 10, (6, 3))
        a_max = a_min + rng.uniform(0, 5, (6, 3))
        b_min = rng.uniform(0, 10, (9, 3))
        b_max = b_min + rng.uniform(0, 5, (9, 3))
        mat = boxes_intersect_matrix(a_min, a_max, b_min, b_max)
        assert mat.shape == (6, 9)
        for i in range(6):
            for j in range(9):
                expect = box_intersects(Box.from_arrays(a_min[i], a_max[i]),
                                        Box.from_arrays(b_min[j], b_max[j]))
                assert mat[i, j] == expect
