"""Unit tests for 2-D vector helpers and the compass convention."""

import numpy as np
import pytest

from repro.geometry.vec import (
    Vec2,
    bearing_of,
    distance,
    heading_to_unit,
    rotate,
    unit_to_heading,
)


class TestVec2:
    def test_arithmetic(self):
        a, b = Vec2(1, 2), Vec2(3, -1)
        assert a + b == Vec2(4, 1)
        assert a - b == Vec2(-2, 3)
        assert 2 * a == Vec2(2, 4)
        assert -a == Vec2(-1, -2)

    def test_dot_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0

    def test_norm_and_normalized(self):
        v = Vec2(3, 4)
        assert v.norm() == 5.0
        assert v.normalized().norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(0, 0).normalized()

    def test_array_roundtrip(self):
        v = Vec2(1.5, -2.5)
        assert Vec2.from_array(v.as_array()) == v


class TestCompassConvention:
    def test_north_is_plus_y(self):
        u = heading_to_unit(0.0)
        assert np.allclose(u, [0.0, 1.0])

    def test_east_is_plus_x(self):
        u = heading_to_unit(90.0)
        assert np.allclose(u, [1.0, 0.0], atol=1e-12)

    def test_roundtrip(self):
        for theta in [0.0, 30.0, 90.0, 179.0, 270.0, 359.0]:
            assert unit_to_heading(heading_to_unit(theta)) == pytest.approx(theta)

    def test_array_form(self):
        thetas = np.array([0.0, 90.0, 180.0, 270.0])
        u = heading_to_unit(thetas)
        assert u.shape == (4, 2)
        back = unit_to_heading(u)
        assert np.allclose(back, thetas, atol=1e-9)


class TestBearing:
    def test_due_north(self):
        assert bearing_of(Vec2(0, 0), Vec2(0, 10)) == pytest.approx(0.0)

    def test_due_east(self):
        assert bearing_of(Vec2(0, 0), Vec2(10, 0)) == pytest.approx(90.0)

    def test_south_west(self):
        b = bearing_of(Vec2(0, 0), Vec2(-1, -1))
        assert b == pytest.approx(225.0)

    def test_array_inputs(self):
        a = np.zeros((3, 2))
        b = np.array([[0, 1], [1, 0], [0, -1]], dtype=float)
        assert np.allclose(bearing_of(a, b), [0.0, 90.0, 180.0])


class TestDistance:
    def test_vec2(self):
        assert distance(Vec2(0, 0), Vec2(3, 4)) == 5.0

    def test_arrays(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        assert np.allclose(distance(a, b), [5.0, 0.0])


class TestRotate:
    def test_plus_90_north_to_east(self):
        v = rotate(Vec2(0, 1), 90.0)
        assert v.x == pytest.approx(1.0)
        assert v.y == pytest.approx(0.0, abs=1e-12)

    def test_heading_addition(self):
        # unit(theta) rotated by d equals unit(theta + d)
        for theta, d in [(0, 45), (30, 90), (300, 120)]:
            v = rotate(heading_to_unit(float(theta)), float(d))
            assert unit_to_heading(v) == pytest.approx((theta + d) % 360)

    def test_preserves_norm(self):
        v = rotate(Vec2(3, 4), 37.0)
        assert v.norm() == pytest.approx(5.0)

    def test_array_form(self):
        vs = heading_to_unit(np.array([0.0, 90.0]))
        out = rotate(vs, 90.0)
        assert np.allclose(unit_to_heading(out), [90.0, 180.0])
