"""Concurrent serving: ingest and query threads interleaving safely.

The sharded tier serves queries while upload bundles land.  These tests
hammer one :class:`ShardedCloudServer` from writer and reader threads
and pin the concurrency contract:

* **No torn bundles.**  Every bundle here sits in a single grid cell,
  so its records land on one shard under one ``insert_many`` (one
  epoch bump).  A concurrent reader must therefore see each bundle
  all-or-nothing: either every record of a video matches, or none.
* **Accounting reconciles exactly.**  Every query passes the result
  cache exactly once, so ``cache.hits + cache.misses ==
  queries_served`` -- regardless of interleaving -- and fleet-wide
  ingest dedup keeps redelivered bundles exactly-once.
* **No torn cache.**  Entries are only cached when the epoch vector is
  unchanged across the scatter, so once writers stop, answers are
  bit-identical to a fresh single server over the same records.
"""

import threading

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.core.server import CloudServer, IngestStatus
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.net.protocol import encode_bundle
from repro.shard import ShardedCloudServer

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
PROJ = LocalProjection(ORIGIN)

N_WRITERS = 4
BUNDLES_PER_WRITER = 6
RECORDS_PER_BUNDLE = 12
HORIZON_S = 3600.0


def _bundle(writer: int, b: int) -> tuple[str, bytes, Query]:
    """One single-cell bundle plus a query that matches all its records.

    Each (writer, bundle) pair gets its own lattice point far from its
    neighbours (>= 900 m, beyond any camera radius used here), so a
    query centred there matches exactly that bundle's records.
    """
    video_id = f"w{writer}-b{b}"
    x = 900.0 * (writer + 1)
    y = 900.0 * (b + 1)
    p = PROJ.to_geo(x, y)
    fovs = [
        RepresentativeFoV(lat=p.lat, lng=p.lng, theta=float(37 * i % 360),
                          t_start=0.0, t_end=HORIZON_S,
                          video_id=video_id, segment_id=i)
        for i in range(RECORDS_PER_BUNDLE)
    ]
    query = Query(t_start=0.0, t_end=HORIZON_S, center=p, radius=50.0,
                  top_n=RECORDS_PER_BUNDLE * 2)
    return video_id, encode_bundle(video_id, fovs), query


def test_interleaved_ingest_and_query():
    camera = CameraModel()
    server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN,
                                cache_size=256)
    plan = [[_bundle(w, b) for b in range(BUNDLES_PER_WRITER)]
            for w in range(N_WRITERS)]
    all_queries = [q for row in plan for _, _, q in row]

    start = threading.Barrier(N_WRITERS + 2)
    errors: list[BaseException] = []
    torn: list[str] = []
    outcomes: list[IngestStatus] = []
    outcome_lock = threading.Lock()
    writers_done = threading.Event()

    def writer(w: int) -> None:
        try:
            start.wait()
            for _, payload, _ in plan[w]:
                # Deliver twice: at-least-once transport; the redelivery
                # must dedup fleet-wide even under contention.
                first = server.ingest_bundle(payload)
                second = server.ingest_bundle(payload)
                with outcome_lock:
                    outcomes.extend([first.status, second.status])
        except BaseException as exc:  # noqa: BLE001 - surfaced in main thread
            errors.append(exc)

    def reader() -> None:
        try:
            start.wait()
            while not writers_done.is_set():
                for result in server.query_many(all_queries):
                    per_video: dict[str, int] = {}
                    for row in result.ranked:
                        per_video[row.fov.video_id] = (
                            per_video.get(row.fov.video_id, 0) + 1)
                    for vid, count in per_video.items():
                        if count != RECORDS_PER_BUNDLE:
                            torn.append(f"{vid}: saw {count}")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(N_WRITERS)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads[:N_WRITERS]:
        t.join()
    writers_done.set()
    for t in threads[N_WRITERS:]:
        t.join()

    assert not errors, errors
    assert not torn, torn[:10]

    # Exactly-once ingest: every bundle accepted once, redelivery deduped.
    n_bundles = N_WRITERS * BUNDLES_PER_WRITER
    assert outcomes.count(IngestStatus.ACCEPTED) == n_bundles
    assert outcomes.count(IngestStatus.DUPLICATE) == n_bundles
    assert server.indexed_count == n_bundles * RECORDS_PER_BUNDLE
    assert server.stats.records_indexed == n_bundles * RECORDS_PER_BUNDLE

    # The cache ledger reconciles exactly, whatever the interleaving.
    stats = server.stats
    assert stats.cache_hits + stats.cache_misses == stats.queries_served
    assert stats.queries_served > 0

    # Settled answers are bit-identical to a fresh unsharded server.
    single = CloudServer(camera, engine="packed", cache_size=0)
    single.ingest(server.records())
    sharded_res = server.query_many(all_queries)
    single_res = single.query_many(all_queries)
    for a, b in zip(sharded_res, single_res):
        assert a.candidates == b.candidates
        assert a.after_filter == b.after_filter
        assert ([(r.fov.key(), r.distance, r.covers, r.score)
                 for r in a.ranked]
                == [(r.fov.key(), r.distance, r.covers, r.score)
                    for r in b.ranked])


def test_cache_ledger_reconciles_with_mutating_fleet():
    """Hits + misses == queries served, across cold, warm and
    invalidated rounds (a shard mutating must not break the ledger)."""
    camera = CameraModel()
    server = ShardedCloudServer(camera, n_shards=3, origin=ORIGIN,
                                cache_size=64)
    vid, payload, query = _bundle(0, 0)
    assert server.ingest_bundle(payload).status is IngestStatus.ACCEPTED

    server.query_many([query, query])     # cold round: both miss
    server.query_many([query])            # warm hit
    _, payload2, query2 = _bundle(1, 1)
    server.ingest_bundle(payload2)        # bumps one shard's epoch
    server.query_many([query, query2])    # vector changed: misses again

    stats = server.stats
    assert stats.queries_served == 5
    assert stats.cache_hits + stats.cache_misses == 5
    assert stats.cache_hits >= 1          # the warm round must hit
