"""End-to-end integration: capture -> segment -> upload -> index -> query
-> fetch, across multiple providers, exactly the Figure 1 workflow."""

import numpy as np
import pytest

from repro import CameraModel, ClientPipeline, CloudServer, Query
from repro.core.segmentation import SegmentationConfig
from repro.eval.accuracy import aggregate_metrics
from repro.eval.groundtruth import relevant_segments
from repro.net.clock import DeviceClock
from repro.traces.dataset import CityDataset
from repro.traces.noise import SensorNoiseModel
from repro.core.fov import FoV


@pytest.fixture(scope="module")
def city():
    return CityDataset(n_providers=8, seed=42)


@pytest.fixture(scope="module")
def city_server(city):
    server = CloudServer(city.camera)
    for rec in city.recordings:
        server.register_client(city.clients[rec.device_id])
        server.receive_bundle(rec.bundle.payload, device_id=rec.device_id)
    return server


class TestFullWorkflow:
    def test_everything_indexed(self, city, city_server):
        assert city_server.indexed_count == len(city.all_representatives())

    def test_queries_answerable_and_fetchable(self, city, city_server):
        rng = np.random.default_rng(7)
        t0, t1 = city.time_span()
        answered = 0
        for _ in range(10):
            qp = city.random_query_point(rng)
            res = city_server.query(Query(t_start=t0, t_end=t1, center=qp,
                                          radius=60.0, top_n=5))
            if len(res) == 0:
                continue
            answered += 1
            seg = city_server.fetch_segment(res.ranked[0].fov)
            assert seg.records, "fetched segment must contain frames"
            # The fetched segment's time range matches the indexed record.
            rep = res.ranked[0].fov
            assert seg.records[0].t == pytest.approx(rep.t_start)
            assert seg.records[-1].t == pytest.approx(rep.t_end)
        assert answered >= 3, "too few answerable queries in a dense city"

    def test_results_ranked_and_within_radius_of_view(self, city, city_server):
        rng = np.random.default_rng(8)
        t0, t1 = city.time_span()
        for _ in range(5):
            qp = city.random_query_point(rng)
            res = city_server.query(Query(t_start=t0, t_end=t1, center=qp,
                                          radius=80.0, top_n=10))
            dists = [r.distance for r in res.ranked]
            assert dists == sorted(dists)
            assert all(r.covers for r in res.ranked)
            assert all(r.distance <= city.camera.radius for r in res.ranked)

    def test_retrieval_matches_ground_truth_reasonably(self, city, city_server):
        """FoV retrieval finds most truly-covering segments (recall) and
        what it returns mostly covers (precision) -- the abstract's
        'comparable search accuracy' sanity floor."""
        rng = np.random.default_rng(9)
        t0, t1 = city.time_span()
        metrics = []
        for _ in range(15):
            qp = city.random_query_point(rng)
            xy = city.projection.to_local_arrays([qp.lat], [qp.lng])[0]
            truth = relevant_segments(city, xy, (t0, t1))
            if not truth:
                continue
            res = city_server.query(Query(t_start=t0, t_end=t1, center=qp,
                                          radius=100.0, top_n=10))
            metrics.append(aggregate_metrics(res.keys(), truth, k=10))
        assert metrics, "no queries had any relevant segments"
        mean_recall = float(np.mean([m.recall for m in metrics]))
        mean_precision = float(np.mean([m.precision for m in metrics]))
        assert mean_recall > 0.4, f"recall too low: {mean_recall}"
        assert mean_precision > 0.4, f"precision too low: {mean_precision}"

    def test_traffic_negligible(self, city, city_server):
        """Descriptor traffic is orders of magnitude below raw upload."""
        total_desc = city.total_descriptor_bytes()
        raw = city_server.traffic.profile.bytes_for(
            city.total_recording_seconds())
        assert raw / total_desc > 1000


class TestClockSkewInsensitivity:
    def test_subsecond_skew_preserves_results(self, camera):
        """Section VI-A: sub-second clock error does not change answers."""
        from repro.traces.scenarios import walk_scenario
        trace = walk_scenario(duration_s=60, fps=10,
                              noise=SensorNoiseModel.ideal())

        def build(skew_s):
            client = ClientPipeline("dev", camera)
            server = CloudServer(camera)
            server.register_client(client)
            clock = DeviceClock(offset_s=skew_s)
            client.start_recording("vid")
            for rec in trace:
                client.push(FoV(t=clock.local_time(rec.t), lat=rec.lat,
                                lng=rec.lng, theta=rec.theta))
            bundle = client.stop_recording()
            server.receive_bundle(bundle.payload, device_id="dev")
            return server

        q = Query(t_start=-5.0, t_end=65.0, center=trace[30].point,
                  radius=80.0, top_n=10)
        baseline = build(0.0).query(q).keys()
        skewed = build(0.4).query(q).keys()
        assert baseline == skewed

    def test_large_skew_does_break_results(self, camera):
        """Sanity check of the test above: hour-scale skew shifts segments
        out of the query window, so the insensitivity is really about the
        *magnitude* of the error."""
        from repro.traces.scenarios import walk_scenario
        trace = walk_scenario(duration_s=60, fps=10,
                              noise=SensorNoiseModel.ideal())
        client = ClientPipeline("dev", camera)
        server = CloudServer(camera)
        server.register_client(client)
        client.start_recording("vid")
        for rec in trace:
            client.push(FoV(t=rec.t + 3600.0, lat=rec.lat, lng=rec.lng,
                            theta=rec.theta))
        server.receive_bundle(client.stop_recording().payload, device_id="dev")
        q = Query(t_start=-5.0, t_end=65.0, center=trace[30].point,
                  radius=80.0)
        assert len(server.query(q)) == 0
