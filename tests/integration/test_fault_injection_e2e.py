"""End-to-end ingest over a hostile uplink (the ISSUE acceptance run).

A seeded channel drops 10%, duplicates 10%, and corrupts 5% of
transmitted copies; the retrying uploader must still converge, and the
faulty server's indexed state and query answers must come out
bit-identical to a lossless control run.  Along the way: no bundle is
ever partially indexed, every corrupt delivery is quarantined and
counted, and redeliveries dedup to exactly-once.

``FUZZ_SEED`` (set by the CI fuzz-smoke matrix) picks the channel seed
so each CI job exercises a different fault schedule.
"""

import os

import numpy as np
import pytest

from repro import CloudServer, Query
from repro.net.channel import FaultProfile, FaultyChannel, RetryPolicy
from repro.traces.dataset import CityDataset

CHANNEL_SEED = int(os.environ.get("FUZZ_SEED", "0"))

PROFILE = FaultProfile(drop_rate=0.10, duplicate_rate=0.10,
                       corrupt_rate=0.05, reorder_rate=0.05)


@pytest.fixture(scope="module")
def city():
    # 24 providers keeps every CI seed's run fault-ridden: the odds of
    # a copy passing the 10/10/5/5% gauntlet untouched are ~73%, so a
    # fully clean 24-bundle run is a ~5e-4 fluke.
    return CityDataset(n_providers=24, seed=42)


@pytest.fixture(scope="module")
def converged(city):
    """Run the lossless control and the faulty upload once, together."""
    control = CloudServer(city.camera)
    faulty = CloudServer(city.camera)
    channel = FaultyChannel(PROFILE, seed=CHANNEL_SEED)
    uploader = faulty.make_uploader(channel,
                                    policy=RetryPolicy(max_attempts=40))
    receipts = []
    for rec in city.recordings:
        control.receive_bundle(rec.bundle.payload, device_id=rec.device_id)
        receipts.append(uploader.upload(rec.bundle.payload))
    for delivery in channel.flush():   # stragglers held back by reordering
        faulty.ingest_bundle(delivery.payload)
    return control, faulty, channel, uploader, receipts


class TestConvergence:
    def test_every_upload_is_acknowledged(self, converged):
        *_, receipts = converged
        assert all(r.accepted for r in receipts)

    def test_the_channel_actually_misbehaved(self, converged):
        _, _, channel, uploader, _ = converged
        # The run is only meaningful if faults fired and forced retries.
        assert channel.stats.dropped + channel.stats.corrupted > 0
        assert uploader.stats.attempts >= uploader.stats.uploads

    def test_indexed_state_matches_the_lossless_run(self, converged):
        control, faulty, *_ = converged
        assert faulty.indexed_count == control.indexed_count
        assert sorted(f.key() for f in faulty.index.records()) == \
            sorted(f.key() for f in control.index.records())

    def test_query_results_are_bit_identical(self, city, converged):
        control, faulty, *_ = converged
        rng = np.random.default_rng(7)
        t0, t1 = city.time_span()
        for _ in range(12):
            q = Query(t_start=t0, t_end=t1,
                      center=city.random_query_point(rng),
                      radius=float(rng.uniform(50.0, 400.0)), top_n=20)
            a, b = control.query(q), faulty.query(q)
            assert [(r.fov, r.distance, r.covers) for r in a.ranked] == \
                [(r.fov, r.distance, r.covers) for r in b.ranked]


class TestFaultAccounting:
    def test_no_partial_bundles(self, city, converged):
        # Every indexed video holds either all of its records or none:
        # per-video record counts must equal the client-side bundles.
        _, faulty, *_ = converged
        per_video = {}
        for fov in faulty.index.records():
            per_video[fov.video_id] = per_video.get(fov.video_id, 0) + 1
        expected = {rec.video_id: len(rec.bundle.representatives)
                    for rec in city.recordings}
        assert per_video == expected

    def test_every_corrupt_delivery_is_quarantined(self, converged):
        _, faulty, channel, *_ = converged
        # Corruption is guaranteed to change bytes, and v2 checksums
        # catch every change, so the counts must agree exactly (flush
        # delivered all held copies before this assertion runs).
        assert channel.stats.corrupted == faulty.stats.bundles_rejected
        assert faulty.quarantine.total_quarantined == \
            faulty.stats.bundles_rejected
        for entry in faulty.quarantine:
            assert entry.reason

    def test_redelivery_dedups_to_exactly_once(self, city, converged):
        _, faulty, channel, uploader, _ = converged
        assert faulty.stats.bundles_received == len(city.recordings)
        # Everything beyond one accepted copy per bundle was deduped or
        # rejected -- nothing was indexed twice.
        extra = (channel.stats.delivered - channel.stats.corrupted
                 - len(city.recordings))
        assert faulty.stats.bundles_duplicated == extra
        assert faulty.stats.bundles_retried == uploader.stats.retries

    def test_epoch_bumps_once_per_accepted_bundle(self, city, converged):
        _, faulty, *_ = converged
        assert faulty.index.epoch == len(city.recordings)


class TestBatchedConvergence:
    """The commit-group fast path must converge bit-identically to the
    sequential control, even with a WAL and back-pressure in front and
    corrupt deliveries mixed into the groups."""

    def test_batched_wal_ingest_matches_sequential(self, city, converged,
                                                   tmp_path):
        from repro.core.wal import WriteAheadLog

        control, *_ = converged
        rng = np.random.default_rng(CHANNEL_SEED)
        payloads = [rec.bundle.payload for rec in city.recordings]
        # Corrupt a few copies in place, exactly like the channel does.
        for i in rng.choice(len(payloads), size=4, replace=False):
            flipped = bytearray(payloads[i])
            flipped[int(rng.integers(len(flipped)))] ^= 0xFF
            payloads[int(i)] = bytes(flipped)
        clean = [rec.bundle.payload for rec in city.recordings]

        wal = WriteAheadLog(tmp_path / "ingest.wal")
        batched = CloudServer(city.camera, wal=wal,
                              admission_capacity=8)
        pending = payloads + clean     # redeliver every clean copy once
        while pending:
            group, pending = pending[:8], pending[8:]
            outcomes = batched.ingest_batch(group)
            # Shed bundles are retryable: re-offer them.
            pending.extend(group[i] for i, o in enumerate(outcomes)
                           if o.status.value == "shed")
        assert batched.index.content_digest() == \
            control.index.content_digest()
        assert batched.stats.bundles_rejected == 4

        # A crash-recovered replay of the WAL converges to the same
        # digest again: the log holds exactly the accepted payloads.
        recovered = CloudServer(city.camera)
        recovered.replay_wal(wal.path)
        assert recovered.index.content_digest() == \
            control.index.content_digest()
