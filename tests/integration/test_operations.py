"""Operational integration: retention, snapshots and the live service
working together — the lifecycle a real deployment runs daily."""

import numpy as np
import pytest

from repro import CameraModel, CloudServer, Query
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.sim.simulation import ServiceSimulation, SimulationConfig


class TestServiceLifecycle:
    @pytest.fixture(scope="class")
    def served(self):
        cfg = SimulationConfig(duration_s=1800.0, n_providers=8,
                               recordings_per_provider=1.5,
                               query_rate_hz=0.01, seed=17)
        sim = ServiceSimulation(cfg)
        sim.run()
        return sim

    def test_snapshot_after_service_roundtrips(self, served, tmp_path):
        """Nightly snapshot: dump the live index, reload, same answers."""
        server = served.server
        records = [fov for _, _, fov in server.index._index.items()]
        assert records, "the simulated service must have indexed something"
        path = tmp_path / "nightly.fov"
        save_snapshot(path, records)
        restored, loaded = load_snapshot(path)
        assert len(restored) == server.indexed_count

        q = Query(t_start=0.0, t_end=1800.0,
                  center=records[0].point, radius=300.0, top_n=50)
        assert sorted(f.key() for f in restored.range_search(q)) == \
            sorted(f.key() for f in server.index.range_search(q))

    def test_retention_during_service(self, served):
        """Evicting the first half-hour leaves later queries intact."""
        server = served.server
        before = server.indexed_count
        cutoff = 900.0
        old = sum(1 for _, _, f in server.index._index.items()
                  if f.t_end < cutoff)
        evicted = server.evict_older_than(cutoff)
        assert evicted == old
        assert server.indexed_count == before - evicted
        # Early-window queries now come back empty...
        early = Query(t_start=0.0, t_end=cutoff - 1.0,
                      center=served.projection.to_geo(400.0, 400.0),
                      radius=5000.0, top_n=50)
        assert all(f.t_end >= cutoff
                   for f in server.index.range_search(early))
        # ...and the index is still structurally sound.
        from repro.spatial.metrics import check_invariants
        check_invariants(server.index._index)

    def test_stats_reflect_lifecycle(self, served):
        stats = served.server.stats
        assert stats.bundles_received == served.report.recordings_completed
        assert stats.queries_served >= served.report.queries_issued - \
            served.report.queries_issued  # served counts only routed queries
        assert stats.descriptor_bytes_in == served.report.descriptor_bytes
