"""WAL crash-replay: kill the server between the WAL commit and the
index insert, then replay the log into a fresh server and require the
same content digest an uninterrupted run produces.

``FUZZ_SEED`` (set by the CI fuzz-smoke matrix) varies the workload and
the crash point, so each CI job kills the server mid-stream at a
different commit group.
"""

import os

import numpy as np
import pytest

from repro import CloudServer
from repro.core.wal import WriteAheadLog, replay
from repro.traces.dataset import CityDataset

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", "0"))

GROUP = 4


@pytest.fixture(scope="module")
def city():
    return CityDataset(n_providers=16, seed=1000 + FUZZ_SEED)


def groups(city):
    payloads = [rec.bundle.payload for rec in city.recordings]
    return [payloads[i:i + GROUP] for i in range(0, len(payloads), GROUP)]


class _CrashBeforeIndex(RuntimeError):
    """Stands in for the process dying after the WAL fsync."""


def test_crash_between_wal_commit_and_index_insert(city, tmp_path):
    # The uninterrupted run defines the digest replay must reach.
    want = CloudServer(city.camera)
    for group in groups(city):
        want.ingest_batch(group)
    want_digest = want.index.content_digest()

    rng = np.random.default_rng(FUZZ_SEED)
    crash_at = int(rng.integers(1, len(groups(city))))

    path = tmp_path / "ingest.wal"
    wal = WriteAheadLog(path)
    victim = CloudServer(city.camera, wal=wal)
    real_insert = victim.index.insert_many

    def dying_insert(fovs):
        # The WAL entry for this group is already durable; the index
        # never sees it -- the worst-case window the log exists for.
        raise _CrashBeforeIndex()

    for i, group in enumerate(groups(city)):
        if i == crash_at:
            victim.index.insert_many = dying_insert
            with pytest.raises(_CrashBeforeIndex):
                victim.ingest_batch(group)
            break
        victim.ingest_batch(group)
    wal.close()
    victim.index.insert_many = real_insert

    # The dead group's payloads are in the log even though the index
    # never saw them.
    logged = replay(path)
    assert len(logged) == (crash_at + 1) * GROUP
    assert victim.indexed_count < want.indexed_count

    # Recovery: replay the WAL into a fresh server, then re-offer the
    # rest of the stream exactly as the uploaders would.
    recovered = CloudServer(city.camera)
    assert recovered.replay_wal(path) == len(logged)
    for group in groups(city)[crash_at + 1:]:
        recovered.ingest_batch(group)
    assert recovered.index.content_digest() == want_digest


def test_replay_into_warm_server_is_idempotent(city, tmp_path):
    # Crash *after* the index insert instead: the group is in both the
    # WAL and the snapshot the operator restores from.  Replay must
    # dedup, not double-index.
    path = tmp_path / "ingest.wal"
    with WriteAheadLog(path) as wal:
        server = CloudServer(city.camera, wal=wal)
        for group in groups(city):
            server.ingest_batch(group)
        digest = server.index.content_digest()
        assert server.replay_wal() == 0
        assert server.index.content_digest() == digest


def test_torn_tail_replay_still_converges(city, tmp_path):
    # A crash mid-write leaves a torn final entry; recovery drops it
    # (it was never acknowledged) and replay covers everything else.
    path = tmp_path / "ingest.wal"
    wal = WriteAheadLog(path)
    server = CloudServer(city.camera, wal=wal)
    gs = groups(city)
    for group in gs[:-1]:
        server.ingest_batch(group)
    wal.close()
    data = path.read_bytes()
    path.write_bytes(data[:-11])     # tear the final committed entry

    recovered = CloudServer(city.camera)
    n = recovered.replay_wal(path)
    # One bundle of the final committed group was torn away...
    assert n == sum(len(g) for g in gs[:-1]) - 1
    # ...so re-offering the whole stream (at-least-once) converges.
    for group in gs:
        recovered.ingest_batch(group)
    want = CloudServer(city.camera)
    for group in gs:
        want.ingest_batch(group)
    assert recovered.index.content_digest() == want.index.content_digest()
