"""Unit tests for the Section I architecture cost models."""

import pytest

from repro.net.architectures import (
    ArchitectureCosts,
    CostConstants,
    Workload,
    compare_architectures,
)
from repro.net.traffic import VideoProfile

WORKLOAD = Workload(
    n_providers=100,
    video_seconds_per_provider=300.0,
    fps=30.0,
    segments_per_provider=20,
    n_queries=50,
    matched_segments_per_query=5,
    matched_segment_seconds=30.0,
)


class TestWorkload:
    def test_totals(self):
        assert WORKLOAD.total_video_seconds == 30_000.0
        assert WORKLOAD.total_frames == 900_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(n_providers=-1, video_seconds_per_provider=1, fps=30,
                     segments_per_provider=1, n_queries=1,
                     matched_segments_per_query=1, matched_segment_seconds=1)
        with pytest.raises(ValueError):
            Workload(n_providers=1, video_seconds_per_provider=1, fps=0,
                     segments_per_provider=1, n_queries=1,
                     matched_segments_per_query=1, matched_segment_seconds=1)


class TestCompare:
    def test_names_and_order(self):
        rows = compare_architectures(WORKLOAD)
        assert [r.name for r in rows] == [
            "data-centric", "query-centric", "content-free (FoV)"]

    def test_content_free_wins_network(self):
        data, query, free = compare_architectures(WORKLOAD)
        # The on-demand evidence fetch dominates the content-free and
        # query-centric totals equally; the decisive gap is the upfront
        # full-footage upload only data-centric pays.
        assert free.network_bytes < data.network_bytes / 10
        assert free.network_bytes <= query.network_bytes

    def test_upfront_gap_is_orders_of_magnitude(self):
        # With no queries issued yet, content-free has moved only
        # descriptor bytes while data-centric has moved all the footage.
        idle = Workload(n_providers=100, video_seconds_per_provider=300.0,
                        fps=30.0, segments_per_provider=20, n_queries=0,
                        matched_segments_per_query=0,
                        matched_segment_seconds=0.0)
        data, _, free = compare_architectures(idle)
        assert data.network_bytes / free.network_bytes > 100_000

    def test_content_free_wins_phone_cpu(self):
        _, query, free = compare_architectures(WORKLOAD)
        assert free.phone_cpu_s < query.phone_cpu_s / 100

    def test_content_free_wins_latency(self):
        data, query, free = compare_architectures(WORKLOAD)
        assert free.per_query_latency_s < data.per_query_latency_s
        assert free.per_query_latency_s < query.per_query_latency_s

    def test_data_centric_network_dominated_by_video(self):
        data, _, _ = compare_architectures(WORKLOAD,
                                           profile=VideoProfile(1280, 720))
        expected = VideoProfile(1280, 720).bytes_for(30_000.0)
        assert data.network_bytes == pytest.approx(expected, rel=0.01)

    def test_query_centric_scales_with_queries(self):
        few = compare_architectures(WORKLOAD)[1]
        many = compare_architectures(Workload(
            n_providers=100, video_seconds_per_provider=300.0, fps=30.0,
            segments_per_provider=20, n_queries=500,
            matched_segments_per_query=5, matched_segment_seconds=30.0))[1]
        assert many.phone_cpu_s > few.phone_cpu_s

    def test_custom_constants_respected(self):
        c = CostConstants(fov_match_s=1.0)
        free = compare_architectures(WORKLOAD, constants=c)[2]
        assert free.per_query_latency_s == pytest.approx(
            100 * 20 * 1.0)

    def test_row_shape(self):
        for r in compare_architectures(WORKLOAD):
            assert len(r.row()) == 5
