"""Unit tests for the fault-injected channel and the retrying uploader."""

import numpy as np
import pytest

from repro.net.channel import (
    FaultProfile,
    FaultyChannel,
    RetryPolicy,
    RetryingUploader,
)
from repro.net.protocol import decode_bundle, encode_bundle


PAYLOAD = b"the quick brown payload jumps over the lossy uplink"


class TestFaultProfile:
    @pytest.mark.parametrize("field", ["drop_rate", "duplicate_rate",
                                       "corrupt_rate", "reorder_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultProfile(**{field: bad})

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FaultProfile(latency_s=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(jitter_s=-0.5)

    def test_lossless_profile_is_clean(self):
        p = FaultProfile.lossless()
        assert (p.drop_rate, p.duplicate_rate, p.corrupt_rate,
                p.reorder_rate) == (0.0, 0.0, 0.0, 0.0)


class TestFaultyChannel:
    def test_lossless_delivers_one_intact_copy(self):
        ch = FaultyChannel()
        out = ch.transmit(PAYLOAD)
        assert [d.payload for d in out] == [PAYLOAD]
        assert not out[0].corrupted and not out[0].delayed
        assert ch.stats.sent == ch.stats.delivered == 1

    def test_full_drop_delivers_nothing(self):
        ch = FaultyChannel(FaultProfile(drop_rate=1.0), seed=3)
        for _ in range(10):
            assert ch.transmit(PAYLOAD) == []
        assert ch.stats.dropped == 10 and ch.stats.delivered == 0

    def test_full_duplication_delivers_two_copies(self):
        ch = FaultyChannel(FaultProfile(duplicate_rate=1.0), seed=3)
        out = ch.transmit(PAYLOAD)
        assert [d.payload for d in out] == [PAYLOAD, PAYLOAD]
        assert ch.stats.duplicated == 1 and ch.stats.delivered == 2

    def test_corruption_always_changes_bytes(self):
        ch = FaultyChannel(FaultProfile(corrupt_rate=1.0), seed=3)
        for _ in range(50):
            (d,) = ch.transmit(PAYLOAD)
            assert d.corrupted and d.payload != PAYLOAD

    def test_corrupted_bundle_never_decodes(self):
        bundle = encode_bundle("v", [])
        ch = FaultyChannel(FaultProfile(corrupt_rate=1.0), seed=3)
        for _ in range(50):
            (d,) = ch.transmit(bundle)
            with pytest.raises(ValueError):
                decode_bundle(d.payload)

    def test_reordered_copy_arrives_on_a_later_transmit(self):
        ch = FaultyChannel(FaultProfile(reorder_rate=1.0), seed=3)
        assert ch.transmit(b"first") == []
        assert ch.pending == 1
        out = ch.transmit(b"second")       # "second" itself gets held
        assert [d.payload for d in out] == [b"first"]
        assert out[0].delayed
        assert [d.payload for d in ch.flush()] == [b"second"]
        assert ch.pending == 0 and ch.flush() == []

    def test_same_seed_replays_bit_identically(self):
        profile = FaultProfile(drop_rate=0.3, duplicate_rate=0.3,
                               corrupt_rate=0.3, reorder_rate=0.3,
                               jitter_s=0.01)
        a = FaultyChannel(profile, seed=42)
        b = FaultyChannel(profile, seed=42)
        for i in range(40):
            payload = bytes([i]) * 20
            assert ([d.payload for d in a.transmit(payload)]
                    == [d.payload for d in b.transmit(payload)])
        assert a.stats == b.stats

    def test_explicit_rng_overrides_seed(self):
        rng = np.random.default_rng(7)
        ch = FaultyChannel(FaultProfile(drop_rate=0.5), seed=0, rng=rng)
        assert ch.rng is rng


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        p = RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0,
                        backoff_cap_s=5.0)
        assert [p.backoff_s(a) for a in range(5)] == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestRetryingUploader:
    def test_first_try_on_a_clean_channel(self):
        up = RetryingUploader(FaultyChannel(), deliver=lambda p: "accepted")
        receipt = up.upload(PAYLOAD)
        assert receipt.accepted and receipt.attempts == 1
        assert up.stats.retries == 0

    def test_duplicate_ack_counts_as_delivered(self):
        up = RetryingUploader(FaultyChannel(), deliver=lambda p: "duplicate")
        assert up.upload(PAYLOAD).accepted

    def test_gives_up_after_the_attempt_budget(self):
        retries = []
        up = RetryingUploader(
            FaultyChannel(FaultProfile(drop_rate=1.0), seed=1),
            deliver=lambda p: "accepted",
            policy=RetryPolicy(max_attempts=4),
            on_retry=lambda: retries.append(1))
        receipt = up.upload(PAYLOAD)
        assert not receipt.accepted and receipt.attempts == 4
        assert up.stats.gave_up == 1 and len(retries) == 3
        assert receipt.waited_s > 0   # timeouts + backoff were charged

    def test_retries_through_a_lossy_channel(self):
        ch = FaultyChannel(FaultProfile(drop_rate=0.6), seed=5)
        up = RetryingUploader(ch, deliver=lambda p: "accepted",
                              policy=RetryPolicy(max_attempts=50))
        receipts = [up.upload(bytes([i]) * 10) for i in range(20)]
        assert all(r.accepted for r in receipts)
        assert up.stats.retries > 0      # the channel did drop some

    def test_rejected_acks_keep_retrying(self):
        acks = iter(["rejected", "rejected", "accepted"])
        up = RetryingUploader(FaultyChannel(),
                              deliver=lambda p: next(acks),
                              policy=RetryPolicy(max_attempts=5))
        receipt = up.upload(PAYLOAD)
        assert receipt.accepted and receipt.attempts == 3
        assert up.stats.acks_rejected == 2

    def test_enum_style_outcomes_are_understood(self):
        from repro.core.server import IngestOutcome, IngestStatus
        outcome = IngestOutcome(status=IngestStatus.ACCEPTED,
                                records_indexed=1, digest="d")
        up = RetryingUploader(FaultyChannel(), deliver=lambda p: outcome)
        assert up.upload(PAYLOAD).accepted
