"""Registry/journal instrumentation of the fault-injected transport.

The channel and uploader keep their original dataclass stats (the
simulation API); when handed a registry they mirror every increment
into metric families.  These tests pin the mirror: after any seeded
run, dataclass and registry must agree exactly.
"""

import pytest

from repro import CameraModel, CloudServer
from repro.core.fov import RepresentativeFoV
from repro.net.channel import (
    FaultProfile,
    FaultyChannel,
    RetryingUploader,
    RetryPolicy,
)
from repro.net.protocol import encode_bundle
from repro.obs import EventJournal, MetricsRegistry


def _bundle(video_id="vid-net", n=6):
    reps = [
        RepresentativeFoV(lat=40.0, lng=116.3, theta=(40.0 * i) % 360.0,
                          t_start=float(i), t_end=float(i) + 2.0,
                          video_id=video_id, segment_id=i)
        for i in range(n)
    ]
    return encode_bundle(video_id, reps)


LOSSY = FaultProfile(drop_rate=0.25, duplicate_rate=0.15,
                     corrupt_rate=0.15, reorder_rate=0.1)


class TestChannelMetrics:
    def test_registry_mirrors_the_dataclass_stats(self):
        reg = MetricsRegistry()
        channel = FaultyChannel(LOSSY, seed=42, registry=reg)
        payload = _bundle()
        for _ in range(200):
            channel.transmit(payload)
        channel.flush()

        copies = reg.get("channel.copies")
        by_fate = {vals[0]: c.value for vals, c in copies.children()}
        s = channel.stats
        assert reg.get("channel.transmissions").value == s.sent == 200
        assert by_fate.get("delivered", 0) == s.delivered
        assert by_fate.get("dropped", 0) == s.dropped
        assert by_fate.get("duplicated", 0) == s.duplicated
        assert by_fate.get("corrupted", 0) == s.corrupted
        assert by_fate.get("reordered", 0) == s.reordered
        # the lossy profile actually exercised every fate
        assert s.dropped > 0 and s.corrupted > 0 and s.reordered > 0

    def test_channel_without_registry_is_unchanged(self):
        channel = FaultyChannel(LOSSY, seed=7)
        channel.transmit(_bundle())
        assert channel._copies is None   # no registry, no mirroring


class TestUploaderMetrics:
    def _server_and_uploader(self, profile, seed, max_attempts=8):
        server = CloudServer(CameraModel(half_angle=30.0, radius=100.0))
        channel = FaultyChannel(profile, seed=seed,
                                registry=server.obs.registry)
        uploader = server.make_uploader(
            channel, policy=RetryPolicy(max_attempts=max_attempts,
                                        timeout_s=0.05))
        return server, uploader

    def test_retries_mirror_into_registry_journal_and_server_stats(self):
        server, uploader = self._server_and_uploader(
            FaultProfile(drop_rate=0.7), seed=3)
        receipt = uploader.upload(_bundle())
        assert receipt.accepted
        assert uploader.stats.retries > 0

        reg = server.obs.registry
        assert reg.get("upload.retries").value == uploader.stats.retries
        assert reg.get("upload.attempts").value == uploader.stats.attempts
        outcomes = reg.get("upload.outcomes")
        assert outcomes.labels(outcome="accepted").value == 1
        # one journal entry per retransmission, numbered by attempt
        retry_events = server.obs.journal.events("upload.retry")
        assert len(retry_events) == uploader.stats.retries
        assert [e.fields["attempt"] for e in retry_events] == \
            list(range(1, uploader.stats.retries + 1))
        # the server facade counts the same retransmissions
        assert server.stats.bundles_retried == uploader.stats.retries

    def test_giving_up_is_counted_and_journaled(self):
        server, uploader = self._server_and_uploader(
            FaultProfile(drop_rate=1.0), seed=0, max_attempts=3)
        receipt = uploader.upload(_bundle())
        assert not receipt.accepted
        reg = server.obs.registry
        assert reg.get("upload.outcomes").labels(outcome="gave_up").value == 1
        (gave_up,) = server.obs.journal.events("upload.gave_up")
        assert gave_up.fields["attempts"] == 3

    def test_standalone_uploader_accepts_registry_and_journal(self):
        reg = MetricsRegistry()
        journal = EventJournal()
        channel = FaultyChannel(seed=1)
        uploader = RetryingUploader(channel, lambda payload: "accepted",
                                    registry=reg, journal=journal)
        receipt = uploader.upload(b"\x00\x01")
        assert receipt.accepted
        assert reg.get("upload.attempts").value == 1
        assert reg.get("upload.retries").value == 0
        assert journal.events("upload.retry") == []

    def test_duplicate_deliveries_do_not_double_count_outcomes(self):
        server, uploader = self._server_and_uploader(
            FaultProfile(duplicate_rate=1.0), seed=5)
        uploader.upload(_bundle())
        uploader.upload(_bundle(video_id="vid-other"))
        outcomes = server.obs.registry.get("upload.outcomes")
        assert outcomes.labels(outcome="accepted").value == 2


def test_profiles_validate_rates():
    with pytest.raises(ValueError):
        FaultProfile(drop_rate=1.5)
