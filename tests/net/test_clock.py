"""Unit tests for clock skew and SNTP synchronisation."""

import numpy as np
import pytest

from repro.net.clock import DeviceClock, SntpSynchronizer


class TestDeviceClock:
    def test_offset(self):
        c = DeviceClock(offset_s=1.5)
        assert c.local_time(10.0) == 11.5

    def test_drift(self):
        c = DeviceClock(offset_s=0.0, drift_ppm=100.0)
        assert c.local_time(1e6) == pytest.approx(1e6 + 100.0)

    def test_error_at(self):
        c = DeviceClock(offset_s=-2.0)
        assert c.error_at(5.0) == 2.0
        c.correction_s = 2.0
        assert c.error_at(5.0) == 0.0


class TestSntp:
    def test_symmetric_delay_gives_exact_offset(self):
        clock = DeviceClock(offset_s=3.7)
        sync = SntpSynchronizer(uplink_delay_s=0.05, downlink_delay_s=0.05,
                                jitter_s=0.0)
        res = sync.synchronize(clock, true_t=100.0)
        assert res.measured_offset_s == pytest.approx(-3.7)
        assert res.residual_error_s == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric_delay_leaves_subsecond_residual(self):
        clock = DeviceClock(offset_s=10.0)
        sync = SntpSynchronizer(uplink_delay_s=0.200, downlink_delay_s=0.020,
                                jitter_s=0.0)
        res = sync.synchronize(clock, true_t=0.0)
        # Residual equals half the delay asymmetry: 90 ms here.
        assert res.residual_error_s == pytest.approx(0.090, abs=1e-6)
        assert res.residual_error_s < 1.0   # the paper's sub-second claim

    def test_jitter_reproducible_with_seed(self):
        def run(seed):
            clock = DeviceClock(offset_s=5.0)
            sync = SntpSynchronizer(jitter_s=0.01,
                                    rng=np.random.default_rng(seed))
            return sync.synchronize(clock, 0.0).measured_offset_s
        assert run(3) == run(3)

    def test_repeated_sync_converges(self):
        clock = DeviceClock(offset_s=30.0, drift_ppm=20.0)
        sync = SntpSynchronizer(jitter_s=0.0)
        for k in range(3):
            sync.synchronize(clock, true_t=float(k * 60))
        assert clock.error_at(180.0) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SntpSynchronizer(uplink_delay_s=-0.1)
