"""Unit tests for the binary wire format."""

import pytest

from repro.core.fov import RepresentativeFoV
from repro.net.protocol import (
    FOV_RECORD_SIZE,
    bundle_size,
    decode_bundle,
    decode_fov,
    encode_bundle,
    encode_fov,
)


def rep(i=0, vid="video-1"):
    return RepresentativeFoV(lat=40.0 + i * 1e-4, lng=116.3, theta=123.45,
                             t_start=float(i), t_end=float(i) + 2.5,
                             video_id=vid, segment_id=i)


class TestRecord:
    def test_fixed_size(self):
        assert len(encode_fov(rep())) == FOV_RECORD_SIZE == 40

    def test_roundtrip(self):
        r = rep(3)
        back = decode_fov(encode_fov(r), video_id=r.video_id)
        assert back.lat == r.lat
        assert back.lng == r.lng
        assert back.t_start == r.t_start
        assert back.t_end == r.t_end
        assert back.segment_id == r.segment_id
        assert back.theta == pytest.approx(r.theta, abs=1e-4)  # float32

    def test_decode_wrong_size_raises(self):
        with pytest.raises(ValueError):
            decode_fov(b"\x00" * 39)


class TestBundle:
    def test_roundtrip(self):
        fovs = [rep(i) for i in range(5)]
        payload = encode_bundle("video-1", fovs)
        vid, back = decode_bundle(payload)
        assert vid == "video-1"
        assert [f.key() for f in back] == [f.key() for f in fovs]

    def test_empty_bundle(self):
        payload = encode_bundle("v", [])
        vid, back = decode_bundle(payload)
        assert vid == "v" and back == []

    def test_size_formula(self):
        fovs = [rep(i) for i in range(7)]
        payload = encode_bundle("video-xyz", fovs)
        assert len(payload) == bundle_size("video-xyz", 7)

    def test_unicode_video_id(self):
        payload = encode_bundle("caméra-07", [rep()])
        vid, _ = decode_bundle(payload)
        assert vid == "caméra-07"

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_bundle("v", [rep()]))
        payload[0] = ord("X")
        with pytest.raises(ValueError):
            decode_bundle(bytes(payload))

    def test_truncated_rejected(self):
        payload = encode_bundle("v", [rep()])
        with pytest.raises(ValueError):
            decode_bundle(payload[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            decode_bundle(b"FO")

    def test_bad_version_rejected(self):
        payload = bytearray(encode_bundle("v", [rep()]))
        payload[4] = 9
        with pytest.raises(ValueError):
            decode_bundle(bytes(payload))

    def test_minute_of_video_under_a_kilobyte(self):
        # A minute of capture at a typical segmentation density (one
        # segment every ~3 s) -> ~20 records -> < 1 kB on the wire.
        assert bundle_size("video-1", 20) < 1024
