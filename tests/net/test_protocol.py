"""Unit tests for the binary wire format (v1 and the checksummed v2)."""

import struct
import zlib

import pytest

from repro.core.fov import RepresentativeFoV
from repro.net.protocol import (
    BUNDLE_MAGIC,
    BUNDLE_MAGIC_V2,
    DEFAULT_BUNDLE_VERSION,
    FOV_RECORD_SIZE,
    FOV_RECORD_SIZE_V2,
    bundle_size,
    decode_bundle,
    decode_fov,
    deframe_bundles,
    encode_bundle,
    encode_fov,
    frame_bundles,
)


def rep(i=0, vid="video-1"):
    return RepresentativeFoV(lat=40.0 + i * 1e-4, lng=116.3, theta=123.45,
                             t_start=float(i), t_end=float(i) + 2.5,
                             video_id=vid, segment_id=i)


class TestRecord:
    def test_fixed_size(self):
        assert len(encode_fov(rep())) == FOV_RECORD_SIZE == 40

    def test_roundtrip(self):
        r = rep(3)
        back = decode_fov(encode_fov(r), video_id=r.video_id)
        assert back.lat == r.lat
        assert back.lng == r.lng
        assert back.t_start == r.t_start
        assert back.t_end == r.t_end
        assert back.segment_id == r.segment_id
        assert back.theta == pytest.approx(r.theta, abs=1e-4)  # float32

    def test_decode_wrong_size_raises(self):
        with pytest.raises(ValueError):
            decode_fov(b"\x00" * 39)


class TestBundle:
    def test_roundtrip(self):
        fovs = [rep(i) for i in range(5)]
        payload = encode_bundle("video-1", fovs)
        vid, back = decode_bundle(payload)
        assert vid == "video-1"
        assert [f.key() for f in back] == [f.key() for f in fovs]

    def test_empty_bundle(self):
        payload = encode_bundle("v", [])
        vid, back = decode_bundle(payload)
        assert vid == "v" and back == []

    def test_size_formula(self):
        fovs = [rep(i) for i in range(7)]
        payload = encode_bundle("video-xyz", fovs)
        assert len(payload) == bundle_size("video-xyz", 7)

    def test_unicode_video_id(self):
        payload = encode_bundle("caméra-07", [rep()])
        vid, _ = decode_bundle(payload)
        assert vid == "caméra-07"

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_bundle("v", [rep()]))
        payload[0] = ord("X")
        with pytest.raises(ValueError):
            decode_bundle(bytes(payload))

    def test_truncated_rejected(self):
        payload = encode_bundle("v", [rep()])
        with pytest.raises(ValueError):
            decode_bundle(payload[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            decode_bundle(b"FO")

    def test_bad_version_rejected(self):
        payload = bytearray(encode_bundle("v", [rep()]))
        payload[4] = 9
        with pytest.raises(ValueError):
            decode_bundle(bytes(payload))

    def test_minute_of_video_under_a_kilobyte(self):
        # A minute of capture at a typical segmentation density (one
        # segment every ~3 s) -> ~20 records -> < 1 kB on the wire.
        assert bundle_size("video-1", 20) < 1024


def raw_record(lat=40.0, lng=116.3, theta=90.0, t_start=0.0, t_end=1.0,
               seg_id=0):
    """Hand-pack a 40-byte record, bypassing RepresentativeFoV checks."""
    return struct.pack("<ddfddI", lat, lng, theta, t_start, t_end, seg_id)


def rewrite_v2_crc(payload: bytes) -> bytes:
    """Recompute a tampered v2 bundle's CRC so only deeper checks fire."""
    prefix, body = payload[:15], payload[19:]
    crc = zlib.crc32(body, zlib.crc32(prefix))
    return prefix + struct.pack("<I", crc) + body


class TestBundleV2:
    def test_default_version_is_v2(self):
        payload = encode_bundle("v", [rep()])
        assert payload[:4] == BUNDLE_MAGIC_V2
        assert DEFAULT_BUNDLE_VERSION == 2

    def test_v2_size_formula(self):
        vid = "caméra-07"
        payload = encode_bundle(vid, [rep(i) for i in range(3)])
        assert len(payload) == bundle_size(vid, 3)
        assert len(payload) == 19 + len(vid.encode()) + 3 * FOV_RECORD_SIZE_V2

    def test_empty_v2_bundle_roundtrip(self):
        vid, back = decode_bundle(encode_bundle("v", []))
        assert vid == "v" and back == []

    def test_every_single_byte_flip_rejected(self):
        payload = encode_bundle("vid", [rep(0), rep(1)])
        for i in range(len(payload)):
            for xor in (0x01, 0xFF):
                mutated = bytearray(payload)
                mutated[i] ^= xor
                with pytest.raises(ValueError):
                    decode_bundle(bytes(mutated))

    def test_every_truncation_rejected(self):
        payload = encode_bundle("vid", [rep(0)])
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                decode_bundle(payload[:cut])

    def test_extension_rejected(self):
        payload = encode_bundle("vid", [rep(0)])
        with pytest.raises(ValueError, match="trailing"):
            decode_bundle(payload + b"\x00")

    def test_record_checksum_localises_corruption(self):
        # Flip a byte inside record 1 and *repair* the bundle CRC: only
        # the per-record checksum is left to catch it.
        payload = bytearray(encode_bundle("v", [rep(0), rep(1)]))
        rec1_start = 19 + 1 + FOV_RECORD_SIZE_V2
        payload[rec1_start] ^= 0xFF
        repaired = rewrite_v2_crc(bytes(payload))
        with pytest.raises(ValueError, match="record 1"):
            decode_bundle(repaired)

    def test_version_byte_flip_alone_rejected(self):
        v2 = bytearray(encode_bundle("v", [rep()]))
        v2[4] = 1
        with pytest.raises(ValueError):
            decode_bundle(bytes(v2))
        v1 = bytearray(encode_bundle("v", [rep()], version=1))
        v1[4] = 2
        with pytest.raises(ValueError):
            decode_bundle(bytes(v1))

    def test_unknown_encode_version_rejected(self):
        with pytest.raises(ValueError):
            encode_bundle("v", [], version=3)
        with pytest.raises(ValueError):
            bundle_size("v", 0, version=3)


class TestBundleV1Compat:
    def test_v1_roundtrip_still_decodes(self):
        fovs = [rep(i, vid="legacy-vid") for i in range(4)]
        payload = encode_bundle("legacy-vid", fovs, version=1)
        assert payload[:4] == BUNDLE_MAGIC
        vid, back = decode_bundle(payload)
        assert vid == "legacy-vid"
        assert [f.key() for f in back] == [f.key() for f in fovs]

    def test_v1_size_formula(self):
        assert bundle_size("abc", 5, version=1) == 11 + 3 + 5 * FOV_RECORD_SIZE

    def test_v1_invalid_utf8_video_id_rejected(self):
        header = struct.pack("<4sBHI", b"FOV1", 1, 2, 0)
        with pytest.raises(ValueError, match="UTF-8"):
            decode_bundle(header + b"\xff\xfe")


class TestWireValidation:
    @pytest.mark.parametrize("kwargs,needle", [
        ({"lat": float("nan")}, "non-finite lat"),
        ({"lng": float("inf")}, "non-finite lng"),
        ({"theta": float("-inf")}, "non-finite theta"),
        ({"t_start": float("nan")}, "non-finite t_start"),
        ({"t_end": float("nan")}, "non-finite t_end"),
        ({"lat": 90.5}, "lat"),
        ({"lat": -91.0}, "lat"),
        ({"lng": 180.5}, "lng"),
        ({"lng": -200.0}, "lng"),
        ({"theta": 360.5}, "theta"),
        ({"theta": -1.0}, "theta"),
        ({"t_start": 5.0, "t_end": 4.0}, "before t_start"),
    ])
    def test_semantic_corruption_rejected(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            decode_fov(raw_record(**kwargs))

    def test_boundary_values_accepted(self):
        # Closed bounds everywhere; theta == 360.0 is legal because the
        # float32 quantisation can round an azimuth up to exactly 360.
        fov = decode_fov(raw_record(lat=-90.0, lng=180.0, theta=360.0,
                                    t_start=3.0, t_end=3.0))
        assert fov.lat == -90.0 and fov.theta == 360.0

    def test_corrupt_record_inside_v1_bundle_names_its_index(self):
        vid = b"v"
        body = raw_record(seg_id=0) + raw_record(lat=float("nan"), seg_id=1)
        header = struct.pack("<4sBHI", b"FOV1", 1, len(vid), 2)
        with pytest.raises(ValueError, match="record 1"):
            decode_bundle(header + vid + body)


class TestFraming:
    def test_roundtrip(self):
        bundles = [encode_bundle(f"v{i}", [rep(j, vid=f"v{i}")
                                           for j in range(i)])
                   for i in range(4)]
        assert deframe_bundles(frame_bundles(bundles)) == bundles

    def test_empty_stream(self):
        assert frame_bundles([]) == b""
        assert deframe_bundles(b"") == []

    def test_truncated_prefix_rejected(self):
        stream = frame_bundles([b"abcd"])
        with pytest.raises(ValueError, match="length prefix"):
            deframe_bundles(stream + b"\x01")

    def test_truncated_frame_rejected(self):
        stream = frame_bundles([b"abcd", b"efgh"])
        with pytest.raises(ValueError, match="bundle frame"):
            deframe_bundles(stream[:-1])
