"""The vectorized v2 decode path (``decode_bundle_columns``).

The batched decoder must be observationally identical to the scalar
``decode_bundle`` loop: same records out, same ``ValueError`` text for
every corruption class, and the vectorized CRC32 kernel bit-identical
to ``zlib.crc32``.  These tests pin that parity plus the edge cases
the batch path introduces (mid-record truncation, empty bundles, and
the small-bundle scalar-CRC crossover).
"""

import struct
import zlib

import numpy as np
import pytest

from repro.core.fov import RepresentativeFoV
from repro.net.protocol import (
    _CRC_VECTOR_MIN,
    BundleColumns,
    crc32_rows,
    decode_bundle,
    decode_bundle_columns,
    encode_bundle,
)


def reps(n, vid="video-1"):
    return [
        RepresentativeFoV(lat=40.0 + i * 1e-4, lng=116.3 - i * 1e-4,
                          theta=(i * 7.31) % 360.0,
                          t_start=float(i), t_end=float(i) + 2.5,
                          video_id=vid, segment_id=i)
        for i in range(n)
    ]


def rewrite_v2_crc(payload: bytes) -> bytes:
    """Recompute a tampered v2 bundle's CRC so only deeper checks fire."""
    prefix, body = payload[:15], payload[19:]
    crc = zlib.crc32(body, zlib.crc32(prefix))
    return prefix + struct.pack("<I", crc) + body


class TestCrc32Rows:
    def test_bit_identical_to_zlib(self, rng):
        for width in (1, 7, 40):
            rows = rng.integers(0, 256, size=(65, width), dtype=np.uint8)
            want = [zlib.crc32(rows[i].tobytes()) for i in range(65)]
            assert crc32_rows(rows).tolist() == want

    def test_empty_rows(self):
        rows = np.zeros((0, 40), dtype=np.uint8)
        assert crc32_rows(rows).shape == (0,)

    def test_zero_width_rows_match_empty_input_crc(self):
        rows = np.zeros((3, 0), dtype=np.uint8)
        assert crc32_rows(rows).tolist() == [zlib.crc32(b"")] * 3


class TestDecodeParity:
    @pytest.mark.parametrize("n", [0, 1, 2, 50, _CRC_VECTOR_MIN,
                                   _CRC_VECTOR_MIN + 13])
    def test_matches_scalar_decode(self, n):
        # Both CRC branches of the batch path (scalar below the
        # crossover, vectorized at and above it) must reproduce the
        # scalar loop exactly -- including the float32 theta rounding.
        payload = encode_bundle("video-xyz", reps(n))
        vid, want = decode_bundle(payload)
        cols = decode_bundle_columns(payload)
        assert isinstance(cols, BundleColumns)
        assert cols.video_id == vid
        assert len(cols) == n
        assert cols.records() == want

    def test_v1_payload_falls_back(self):
        payload = encode_bundle("video-v1", reps(4), version=1)
        _vid, want = decode_bundle(payload)
        cols = decode_bundle_columns(payload)
        assert cols.records() == want

    def test_empty_bundle(self):
        cols = decode_bundle_columns(encode_bundle("solo", []))
        assert len(cols) == 0
        assert cols.records() == []
        assert cols.lat.dtype == np.float64


def _expect_same_error(payload: bytes):
    """Both decoders must raise a ValueError with identical text."""
    with pytest.raises(ValueError) as scalar:
        decode_bundle(payload)
    with pytest.raises(ValueError) as batch:
        decode_bundle_columns(payload)
    assert str(batch.value) == str(scalar.value)
    return str(batch.value)


class TestCorruptionParity:
    def test_mid_record_truncation(self):
        payload = encode_bundle("video-1", reps(5))
        # Cut inside record 3's payload: a length check, not a CRC one.
        msg = _expect_same_error(payload[:-60])
        assert "bundle truncated" in msg

    @pytest.mark.parametrize("n", [5, _CRC_VECTOR_MIN + 5])
    def test_single_record_crc_corruption_names_the_record(self, n):
        payload = bytearray(encode_bundle("video-1", reps(n)))
        # Record i occupies the slice [len - (n - i) * 44, ...); flip a
        # byte inside record n-3's 40-byte payload.
        offset = len(payload) - 3 * 44 + 20
        payload[offset] ^= 0xFF
        msg = _expect_same_error(rewrite_v2_crc(bytes(payload)))
        assert msg == f"record {n - 3} failed its checksum"

    def test_semantic_corruption_names_record_and_field(self):
        fovs = reps(6)
        payload = bytearray(encode_bundle("video-1", fovs))
        # Overwrite record 4 with out-of-range latitude and a *valid*
        # record CRC, so only the semantic check can fire.
        rec = struct.pack("<ddfddI", 200.0, 116.3, 90.0, 0.0, 1.0, 4)
        offset = len(payload) - (6 - 4) * 44
        payload[offset:offset + 40] = rec
        payload[offset + 40:offset + 44] = struct.pack("<I", zlib.crc32(rec))
        msg = _expect_same_error(rewrite_v2_crc(bytes(payload)))
        assert msg == "record 4: corrupt record: lat 200.0 outside [-90, 90]"

    def test_bundle_crc_corruption(self):
        payload = bytearray(encode_bundle("video-1", reps(3)))
        payload[-1] ^= 0x01
        msg = _expect_same_error(bytes(payload))
        assert "CRC32" in msg

    def test_every_truncation_matches_scalar(self):
        payload = encode_bundle("v", reps(2))
        for cut in range(len(payload)):
            _expect_same_error(payload[:cut])
