"""Fuzzing the wire protocol: mutate, truncate, replay -- never index junk.

Two layers:

* Hypothesis property tests -- random video ids (full multi-byte
  UTF-8), random byte-level mutations and truncations of valid v2
  bundles, and completely arbitrary byte strings.  The contract under
  test: a damaged v2 bundle always raises ``ValueError`` (never decodes,
  never escapes with a different exception type), and arbitrary bytes
  never crash the decoder with anything but ``ValueError``.
* A deterministic seed-matrix sweep -- the CI fuzz-smoke job sets
  ``FUZZ_SEED`` (one job per seed) and each seed drives a different
  ``numpy`` mutation schedule over a corpus of v1 and v2 bundles, so a
  red run reproduces locally with ``FUZZ_SEED=<n> pytest <this file>``.

Plus the server-level redelivery property: delivering the same bundle
twice must index it exactly once.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fov import RepresentativeFoV
from repro.core.server import CloudServer, IngestStatus
from repro.net.protocol import decode_bundle, encode_bundle

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", "0"))


def rep(i, vid):
    return RepresentativeFoV(lat=40.0 + i * 1e-3, lng=116.3 - i * 1e-3,
                             theta=(i * 37.0) % 360.0,
                             t_start=float(i), t_end=float(i) + 3.0,
                             video_id=vid, segment_id=i)


def bundle_for(vid, n):
    return encode_bundle(vid, [rep(i, vid) for i in range(n)])


video_ids = st.text(max_size=60)  # full unicode, incl. multi-byte/astral

fov_lists = st.lists(
    st.tuples(st.floats(-89.0, 89.0), st.floats(-179.0, 179.0),
              st.floats(0.0, 359.9), st.floats(0.0, 1e5),
              st.floats(0.0, 1e4)),
    max_size=12)


def build(video_id, rows):
    return [RepresentativeFoV(lat=lat, lng=lng, theta=theta, t_start=t0,
                              t_end=t0 + dur, video_id=video_id,
                              segment_id=i)
            for i, (lat, lng, theta, t0, dur) in enumerate(rows)]


@settings(max_examples=80)
@given(video_ids, fov_lists)
def test_roundtrip_any_unicode_video_id(video_id, rows):
    fovs = build(video_id, rows)
    vid, back = decode_bundle(encode_bundle(video_id, fovs))
    assert vid == video_id
    assert [f.key() for f in back] == [f.key() for f in fovs]


@settings(max_examples=120)
@given(video_ids, fov_lists, st.data())
def test_any_mutation_of_a_v2_bundle_raises_valueerror(video_id, rows, data):
    payload = encode_bundle(video_id, build(video_id, rows))
    i = data.draw(st.integers(0, len(payload) - 1))
    xor = data.draw(st.integers(1, 255))
    mutated = bytearray(payload)
    mutated[i] ^= xor
    try:
        decode_bundle(bytes(mutated))
    except ValueError:
        return
    raise AssertionError("mutated bundle decoded instead of raising")


@settings(max_examples=80)
@given(video_ids, fov_lists, st.data())
def test_any_truncation_of_a_v2_bundle_raises_valueerror(video_id, rows,
                                                         data):
    payload = encode_bundle(video_id, build(video_id, rows))
    cut = data.draw(st.integers(0, len(payload) - 1))
    with pytest.raises(ValueError):
        decode_bundle(payload[:cut])


@settings(max_examples=200)
@given(st.binary(max_size=400))
def test_arbitrary_bytes_never_crash_with_anything_but_valueerror(blob):
    try:
        decode_bundle(blob)
    except ValueError:
        pass  # the only legal failure mode


class TestSeedMatrixSweep:
    """The CI fuzz-smoke job's deterministic mutation schedule."""

    CORPUS = [("v", 0, 2), ("camera-01", 5, 2), ("caméra-07", 1, 2),
              ("視频-9", 8, 2), ("legacy", 4, 1), ("legacy-big", 9, 1)]

    def test_mutation_sweep_is_contained(self):
        rng = np.random.default_rng(FUZZ_SEED)
        checked = 0
        for vid, n, version in self.CORPUS:
            payload = encode_bundle(vid, [rep(i, vid) for i in range(n)],
                                    version=version)
            for _ in range(120):
                mode = int(rng.integers(0, 3))
                if mode == 0:                       # flip one byte
                    buf = bytearray(payload)
                    buf[int(rng.integers(0, len(buf)))] ^= \
                        int(rng.integers(1, 256))
                    mutated = bytes(buf)
                elif mode == 1:                     # truncate the tail
                    mutated = payload[:int(rng.integers(0, len(payload)))]
                else:                               # append garbage
                    mutated = payload + rng.bytes(int(rng.integers(1, 9)))
                try:
                    decode_bundle(mutated)
                    survived = True
                except ValueError:
                    survived = False
                # v2's checksums catch *every* mutation; v1 predates the
                # checksums, so a flipped float may decode -- the sweep
                # only demands v1 never escapes with another exception.
                if version == 2:
                    assert not survived, (
                        f"seed {FUZZ_SEED}: v2 mutation decoded "
                        f"(vid={vid!r}, n={n})")
                checked += 1
        assert checked == 120 * len(self.CORPUS)


class TestServerRedelivery:
    def test_duplicate_redelivery_is_a_noop(self, camera):
        server = CloudServer(camera)
        payload = bundle_for("vid-a", 6)
        first = server.ingest_bundle(payload)
        epoch = server.index.epoch
        second = server.ingest_bundle(payload)
        assert first.status is IngestStatus.ACCEPTED
        assert second.status is IngestStatus.DUPLICATE
        assert second.records_indexed == 0
        assert second.digest == first.digest
        assert server.indexed_count == 6
        assert server.index.epoch == epoch       # no cache invalidation
        assert server.stats.bundles_duplicated == 1

    def test_corrupt_delivery_never_reaches_the_index(self, camera):
        server = CloudServer(camera)
        payload = bytearray(bundle_for("vid-a", 6))
        payload[25] ^= 0xFF
        outcome = server.ingest_bundle(bytes(payload))
        assert outcome.status is IngestStatus.REJECTED
        assert outcome.reason
        assert server.indexed_count == 0
        assert len(server.quarantine) == 1
