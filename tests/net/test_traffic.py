"""Unit tests for the traffic model."""

import pytest

from repro.net.traffic import BITRATE_PRESETS_KBPS, TrafficModel, VideoProfile


class TestVideoProfile:
    def test_preset_bitrates(self):
        assert VideoProfile(1280, 720).resolved_bitrate_kbps() == 4000.0
        assert VideoProfile(320, 240).resolved_bitrate_kbps() == 500.0

    def test_explicit_bitrate_wins(self):
        p = VideoProfile(1280, 720, bitrate_kbps=1234.0)
        assert p.resolved_bitrate_kbps() == 1234.0

    def test_unknown_resolution_scales(self):
        p = VideoProfile(2560, 1440)
        assert p.resolved_bitrate_kbps() == pytest.approx(
            4000.0 * (2560 * 1440) / (1280 * 720))

    def test_bytes_for(self):
        p = VideoProfile(bitrate_kbps=8000.0)
        assert p.bytes_for(10.0) == pytest.approx(8000 * 1000 / 8 * 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoProfile(width=0)
        with pytest.raises(ValueError):
            VideoProfile().bytes_for(-1.0)


class TestTrafficModel:
    def test_savings_orders_of_magnitude(self):
        # 60 s of 720p, 20 segments uploaded as descriptors, nothing
        # fetched: the content-free total is >10,000x smaller.
        model = TrafficModel(VideoProfile(1280, 720))
        rpt = model.report("vid", n_segments=20, duration_s=60.0)
        assert rpt.full_video_bytes == pytest.approx(30e6, rel=0.01)
        assert rpt.descriptor_bytes < 1000
        assert rpt.savings_ratio > 10_000

    def test_matched_segments_accounted(self):
        model = TrafficModel(VideoProfile(bitrate_kbps=1000.0))
        rpt = model.report("vid", n_segments=10, duration_s=100.0,
                           matched_durations_s=[5.0, 5.0])
        assert rpt.matched_segment_bytes == pytest.approx(1000 * 1000 / 8 * 10)
        assert rpt.content_free_total == rpt.descriptor_bytes + \
            rpt.matched_segment_bytes

    def test_matched_cannot_exceed_duration(self):
        model = TrafficModel()
        with pytest.raises(ValueError):
            model.report("vid", 5, duration_s=10.0,
                         matched_durations_s=[11.0])

    def test_zero_total_gives_infinite_ratio(self):
        from repro.net.traffic import TrafficReport
        rpt = TrafficReport(descriptor_bytes=0, matched_segment_bytes=0.0,
                            full_video_bytes=100.0)
        assert rpt.savings_ratio == float("inf")
