"""Event journal tests: bounded retention, monotone sequence numbers."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.journal import Event, EventJournal


class TestEvent:
    def test_str_is_compact(self):
        e = Event(seq=3, kind="ingest.rejected",
                  fields={"digest": "ab", "reason": "crc"})
        assert str(e) == "#3 ingest.rejected digest=ab reason=crc"
        assert str(Event(seq=0, kind="t.bare")) == "#0 t.bare"

    def test_frozen(self):
        e = Event(seq=0, kind="t.bare")
        with pytest.raises(AttributeError):
            e.seq = 1


class TestEventJournal:
    def test_emit_assigns_sequential_numbers(self):
        j = EventJournal()
        a = j.emit("t.first")
        b = j.emit("t.second", detail=1)
        assert (a.seq, b.seq) == (0, 1)
        assert b.fields["detail"] == 1

    def test_fields_are_read_only(self):
        j = EventJournal()
        e = j.emit("t.first", x=1)
        with pytest.raises(TypeError):
            e.fields["x"] = 2

    def test_bounded_retention_keeps_counting(self):
        j = EventJournal(capacity=3)
        for i in range(5):
            j.emit("t.tick", i=i)
        assert len(j) == 3
        assert j.total == 5
        assert j.dropped == 2
        assert [e.seq for e in j] == [2, 3, 4]

    def test_filter_tail_and_counts(self):
        j = EventJournal()
        j.emit("t.a")
        j.emit("t.b")
        j.emit("t.a")
        assert [e.kind for e in j.events("t.a")] == ["t.a", "t.a"]
        assert [e.kind for e in j.tail(2)] == ["t.b", "t.a"]
        assert j.tail(0) == []
        assert j.counts() == {"t.a": 2, "t.b": 1}

    def test_counts_survive_eviction(self):
        j = EventJournal(capacity=2)
        for _ in range(5):
            j.emit("t.tick")
        assert j.counts() == {"t.tick": 5}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


def test_interleaved_writers_get_gap_free_monotone_seqs():
    """N threads emitting concurrently never skip or repeat a seq."""
    j = EventJournal(capacity=100_000)
    per_thread = 2000
    threads = [
        threading.Thread(
            target=lambda k=k: [j.emit("t.writer", writer=k)
                                for _ in range(per_thread)])
        for k in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seqs = [e.seq for e in j]
    assert seqs == sorted(seqs)
    assert seqs == list(range(4 * per_thread))
    assert j.total == 4 * per_thread


@settings(max_examples=60, deadline=None)
@given(schedule=st.lists(st.integers(min_value=0, max_value=2),
                         min_size=1, max_size=200),
       capacity=st.integers(min_value=1, max_value=32))
def test_seq_monotone_under_any_interleaving(schedule, capacity):
    """Property: any interleaving of writers yields strictly increasing,

    gap-free sequence numbers, and the retained window is always the
    suffix of the full emission order.
    """
    j = EventJournal(capacity=capacity)
    for writer in schedule:
        j.emit("t.writer", writer=writer)
    seqs = [e.seq for e in j]
    assert all(b == a + 1 for a, b in zip(seqs, seqs[1:]))
    assert j.total == len(schedule)
    assert seqs == list(range(max(0, len(schedule) - capacity),
                              len(schedule)))
    assert j.dropped == max(0, len(schedule) - capacity)
