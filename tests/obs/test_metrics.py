"""Unit and property tests for the metrics registry and exposition."""

import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    metric_name_ok,
    parse_prometheus,
)


class TestNaming:
    def test_accepts_dot_namespaced_snake_case(self):
        for name in ("ingest.bundles", "query.latency_s",
                     "packed.entries_tested", "a.b.c_d2"):
            assert metric_name_ok(name)

    def test_rejects_everything_else(self):
        for name in ("Requests", "ingest", "ingest.", ".bundles",
                     "ingest.Bundles", "ingest-bundles", "2x.y",
                     "ingest..bundles", "ingest.bundles "):
            assert not metric_name_ok(name)

    def test_registry_enforces_the_convention(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="RF008"):
            reg.counter("Requests")


class TestCounter:
    def test_counts_up(self):
        c = MetricsRegistry().counter("t.events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("t.events")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        fam = MetricsRegistry().counter("t.events", labelnames=("status",))
        fam.labels(status="ok").inc(3)
        fam.labels(status="err").inc()
        assert fam.labels(status="ok").value == 3
        assert fam.labels(status="err").value == 1

    def test_labeled_family_requires_labels_call(self):
        fam = MetricsRegistry().counter("t.events", labelnames=("status",))
        with pytest.raises(ValueError, match="labels"):
            fam.inc()

    def test_wrong_label_set_rejected(self):
        fam = MetricsRegistry().counter("t.events", labelnames=("status",))
        with pytest.raises(ValueError):
            fam.labels(other="x")

    def test_thread_safe_increments(self):
        c = MetricsRegistry().counter("t.events")

        def spin():
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 20000


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("t.level")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        h = MetricsRegistry().histogram("t.lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)                       # == boundary: inclusive
        assert h.cumulative_counts() == (0, 1, 1, 1)

    def test_above_all_bounds_goes_to_inf(self):
        h = MetricsRegistry().histogram("t.lat", buckets=(1.0, 2.0))
        h.observe(99.0)
        assert h.cumulative_counts() == (0, 0, 1)

    def test_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("t.a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("t.b", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("t.c", buckets=(1.0, float("inf")))

    def test_default_buckets_are_shared_constants(self):
        h = MetricsRegistry().histogram("t.lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("t.events", labelnames=("status",))
        b = reg.counter("t.events", labelnames=("status",))
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("t.events")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("t.events")

    def test_labelname_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("t.events", labelnames=("status",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("t.events")

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("t.lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("t.lat", buckets=(1.0, 3.0))

    def test_families_sorted_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b.x")
        reg.gauge("a.y")
        assert [f.name for f in reg.families()] == ["a.y", "b.x"]
        assert reg.get("b.x").kind == "counter"
        assert reg.get("nope.nothing") is None


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("ingest.bundles", "Bundles by outcome",
                labelnames=("status",)).labels(status="accepted").inc(7)
    reg.get("ingest.bundles").labels(status="rejected").inc(2)
    reg.gauge("index.records_live", "Records live").set(41)
    h = reg.histogram("query.latency_s", "Latency", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.05, 3.0):
        h.observe(v)
    return reg


class TestPrometheusExposition:
    def test_renders_help_type_and_flattened_names(self):
        text = _populated_registry().render_prometheus()
        assert "# HELP ingest_bundles Bundles by outcome" in text
        assert "# TYPE ingest_bundles counter" in text
        assert 'ingest_bundles{status="accepted"} 7' in text
        assert "# TYPE query_latency_s histogram" in text
        assert 'query_latency_s_bucket{le="+Inf"} 4' in text
        assert "query_latency_s_count 4" in text

    def test_round_trip_preserves_every_sample(self):
        reg = _populated_registry()
        families = parse_prometheus(reg.render_prometheus())
        assert set(families) == {"ingest_bundles", "index_records_live",
                                 "query_latency_s"}
        bundles = families["ingest_bundles"]
        assert bundles.kind == "counter"
        by_status = {s.labels["status"]: s.value for s in bundles.samples}
        assert by_status == {"accepted": 7.0, "rejected": 2.0}

        hist = families["query_latency_s"]
        buckets = {s.labels["le"]: s.value for s in hist.samples
                   if s.name.endswith("_bucket")}
        # cumulative and +Inf == count
        assert buckets["0.001"] == 1.0
        assert buckets["0.01"] == 2.0
        assert buckets["0.1"] == 3.0
        assert buckets["+Inf"] == 4.0
        count = [s for s in hist.samples if s.name == "query_latency_s_count"]
        assert count[0].value == 4.0

    def test_label_values_escape_and_unescape(self):
        reg = MetricsRegistry()
        fam = reg.counter("t.odd", labelnames=("what",))
        fam.labels(what='quo"te\\back\nline').inc()
        parsed = parse_prometheus(reg.render_prometheus())
        (sample,) = parsed["t_odd"].samples
        assert sample.labels["what"] == 'quo"te\\back\nline'

    def test_counter_named_like_histogram_series_not_misattributed(self):
        reg = MetricsRegistry()
        reg.histogram("t.x", buckets=(1.0,)).observe(0.5)
        reg.counter("t.x_count").inc(9)
        parsed = parse_prometheus(reg.render_prometheus())
        assert [s.value for s in parsed["t_x_count"].samples] == [9.0]
        hist_counts = [s for s in parsed["t_x"].samples
                       if s.name == "t_x_count"]
        assert [s.value for s in hist_counts] == [1.0]

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not an exposition line at all {")

    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus("orphan_metric 3")


class TestJsonExposition:
    def test_snapshot_is_json_serialisable_and_complete(self):
        snap = _populated_registry().render_json()
        blob = json.loads(json.dumps(snap))
        assert blob["ingest.bundles"]["type"] == "counter"
        rows = {tuple(s["labels"].items()): s["value"]
                for s in blob["ingest.bundles"]["samples"]}
        assert rows[(("status", "accepted"),)] == 7
        hist = blob["query.latency_s"]["samples"][0]
        assert hist["count"] == 4
        assert hist["buckets"]["+Inf"] == 4


# -- hypothesis properties ---------------------------------------------------

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(finite, max_size=60))
def test_histogram_cumulative_counts_are_monotone(values):
    """Cumulative bucket counts never decrease and end at ``count``."""
    h = MetricsRegistry().histogram("p.lat", buckets=(-10.0, 0.0, 1.0, 100.0))
    for v in values:
        h.observe(v)
    cum = h.cumulative_counts()
    assert all(a <= b for a, b in zip(cum, cum[1:]))
    assert cum[-1] == h.count == len(values)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(finite, max_size=60))
def test_histogram_sum_matches_observations(values):
    """``sum`` is exactly the float sum of everything observed."""
    h = MetricsRegistry().histogram("p.lat", buckets=(0.5,))
    total = 0.0
    for v in values:
        h.observe(v)
        total += float(v)
    assert h.sum == pytest.approx(total)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=40),
       bounds=st.lists(finite, min_size=1, max_size=8, unique=True))
def test_histogram_bucketing_is_deterministic(values, bounds):
    """Same observations + same bounds => identical bucket vectors."""
    buckets = tuple(sorted(bounds))
    snapshots = []
    for _ in range(2):
        h = MetricsRegistry().histogram("p.lat", buckets=buckets)
        for v in values:
            h.observe(v)
        snapshots.append(h.cumulative_counts())
    assert snapshots[0] == snapshots[1]
    # boundary semantics: a value equal to a bound is <= that bound
    h = MetricsRegistry().histogram("p.lat", buckets=buckets)
    h.observe(buckets[0])
    assert h.cumulative_counts()[0] == 1
