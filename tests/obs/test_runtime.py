"""Observability bundle and packed-search recorder tests."""

import numpy as np

from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.geo.coords import GeoPoint
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    NULL_TRACER,
    Observability,
    PackedSearchRecorder,
    SpanTracer,
)
from repro.traces.dataset import random_representative_fovs


class TestObservability:
    def test_default_has_no_tracer(self):
        obs = Observability.default()
        assert obs.tracer is NULL_TRACER
        assert obs.span_tracer is None
        assert isinstance(obs.registry, MetricsRegistry)
        assert isinstance(obs.journal, EventJournal)

    def test_tracing_wires_spans_into_the_registry(self):
        ticks = iter(float(i) for i in range(100))
        obs = Observability.tracing(clock=lambda: next(ticks))
        assert isinstance(obs.tracer, SpanTracer)
        assert obs.span_tracer is obs.tracer
        with obs.tracer.span("t.stage"):
            pass
        fam = obs.registry.get("span.duration_s")
        assert fam.labels(span="t.stage").count == 1

    def test_capacities_are_forwarded(self):
        obs = Observability.default(journal_capacity=2)
        for _ in range(3):
            obs.journal.emit("t.tick")
        assert len(obs.journal) == 2 and obs.journal.total == 3


class TestPackedSearchRecorder:
    def test_direct_protocol_calls(self):
        reg = MetricsRegistry()
        rec = PackedSearchRecorder(reg)
        rec.on_descent(4)
        rec.on_level(0, tested=32, matched=8)
        rec.on_level(1, tested=64, matched=3)
        rec.on_level(1, tested=16, matched=1)
        assert reg.get("packed.descents").value == 1
        tested = reg.get("packed.entries_tested")
        assert tested.labels(level="0").value == 32
        assert tested.labels(level="1").value == 80
        matched = reg.get("packed.entries_matched")
        assert matched.labels(level="1").value == 4
        assert reg.get("packed.frontier_width_peak").value == 64

    def test_peak_gauge_never_falls(self):
        rec = PackedSearchRecorder(MetricsRegistry())
        rec.on_level(0, tested=100, matched=1)
        rec.on_level(0, tested=5, matched=1)
        assert rec._peak.value == 100

    def test_real_packed_search_reports_through_the_recorder(self, rng):
        reps = random_representative_fovs(500, rng)
        index = FoVIndex.bulk(reps).packed_view()
        reg = MetricsRegistry()
        rec = PackedSearchRecorder(reg)
        rec0 = reps[0]
        q = Query(t_start=rec0.t_start - 1.0, t_end=rec0.t_end + 1.0,
                  center=GeoPoint(rec0.lat, rec0.lng), radius=150.0)
        ids = index.range_search_ids(q, observer=rec)
        assert ids.size >= 1
        assert reg.get("packed.descents").value == 1
        # every level of the descent reported a pass
        tested = reg.get("packed.entries_tested")
        total_tested = sum(c.value for _, c in tested.children())
        assert total_tested > 0
        assert reg.get("packed.frontier_width_peak").value > 0

    def test_batched_search_counts_the_whole_batch(self, rng):
        reps = random_representative_fovs(300, rng)
        index = FoVIndex.bulk(reps).packed_view()
        reg = MetricsRegistry()
        rec = PackedSearchRecorder(reg)
        queries = []
        for rec_fov in reps[:8]:
            queries.append(Query(t_start=rec_fov.t_start - 1.0,
                                 t_end=rec_fov.t_end + 1.0,
                                 center=GeoPoint(rec_fov.lat, rec_fov.lng),
                                 radius=100.0))
        qids, rows = index.search_many_ids(queries, observer=rec)
        assert rows.size >= 1
        assert reg.get("packed.descents").value == 1
        assert np.unique(qids).size >= 1
