"""Span tracer tests, all under an injected deterministic fake clock."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    format_span_tree,
)


class FakeClock:
    """Monotonic fake timer: every read advances by ``step`` seconds."""

    def __init__(self, step=0.001):
        self.step = step
        self.now = 0.0

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestNullTracer:
    def test_span_is_a_shared_noop(self):
        a = NULL_TRACER.span("query.execute")
        b = NULL_TRACER.span("query.rank", batch=3)
        assert a is b
        with a as span:
            assert span is None

    def test_null_tracer_never_swallows_exceptions(self):
        with pytest.raises(RuntimeError):
            with NullTracer().span("query.execute"):
                raise RuntimeError("boom")


class TestSpanTracer:
    def test_nesting_builds_a_tree(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("server.query"):
            with tracer.span("query.tree_descent"):
                pass
            with tracer.span("query.rank"):
                pass
        root = tracer.last_trace()
        assert root.name == "server.query"
        assert [c.name for c in root.children] == ["query.tree_descent",
                                                   "query.rank"]
        assert root.children[0].children == []

    def test_durations_come_from_the_injected_clock(self):
        # Each clock read advances exactly 1 ms; a span reads the clock
        # twice (start, end), a child span's reads land between them.
        tracer = SpanTracer(clock=FakeClock(step=0.001))
        with tracer.span("server.query"):
            with tracer.span("query.rank"):
                pass
        root = tracer.last_trace()
        child = root.children[0]
        assert child.duration_s == pytest.approx(0.001)
        assert root.duration_s == pytest.approx(0.003)
        assert root.start_s == 0.0

    def test_attrs_and_error_annotation(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("server.ingest_bundle", bytes=128):
                raise ValueError("bad bundle")
        root = tracer.last_trace()
        assert root.attrs["bytes"] == 128
        assert root.attrs["error"] == "ValueError"

    def test_capacity_evicts_oldest(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=2)
        for name in ("t.a", "t.b", "t.c"):
            with tracer.span(name):
                pass
        assert [t.name for t in tracer.traces()] == ["t.b", "t.c"]
        tracer.clear()
        assert tracer.traces() == []
        assert tracer.last_trace() is None

    def test_current_tracks_the_open_span(self):
        tracer = SpanTracer(clock=FakeClock())
        assert tracer.current is None
        with tracer.span("t.outer"):
            assert tracer.current.name == "t.outer"
            with tracer.span("t.inner"):
                assert tracer.current.name == "t.inner"
            assert tracer.current.name == "t.outer"
        assert tracer.current is None

    def test_spans_feed_the_duration_histogram(self):
        reg = MetricsRegistry()
        tracer = SpanTracer(clock=FakeClock(step=0.001), registry=reg)
        with tracer.span("server.query"):
            with tracer.span("query.rank"):
                pass
        fam = reg.get("span.duration_s")
        assert fam.labels(span="query.rank").count == 1
        assert fam.labels(span="server.query").count == 1
        assert fam.labels(span="server.query").sum == pytest.approx(0.003)

    def test_threads_get_independent_traces(self):
        tracer = SpanTracer(clock=FakeClock())
        done = threading.Event()

        def worker():
            with tracer.span("t.worker"):
                done.wait(1.0)

        t = threading.Thread(target=worker)
        with tracer.span("t.main"):
            t.start()
            # the worker's open span must not nest under t.main
            assert tracer.current.name == "t.main"
        done.set()
        t.join()
        names = sorted(trace.name for trace in tracer.traces())
        assert names == ["t.main", "t.worker"]
        for trace in tracer.traces():
            assert trace.children == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanTracer(clock=FakeClock(), capacity=0)


class TestFormatSpanTree:
    def test_renders_nested_durations_and_attrs(self):
        tracer = SpanTracer(clock=FakeClock(step=0.001))
        with tracer.span("server.query"):
            with tracer.span("query.rank", candidates=12):
                pass
        text = format_span_tree(tracer.last_trace())
        lines = text.splitlines()
        assert lines[0] == "server.query  3.000 ms"
        assert lines[1] == "  query.rank  1.000 ms candidates=12"

    def test_unit_scaling(self):
        tracer = SpanTracer(clock=FakeClock(step=0.5))
        with tracer.span("t.slow"):
            pass
        text = format_span_tree(tracer.last_trace(), unit_scale=1.0, unit="s")
        assert text == "t.slow  0.500 s"
