"""Unit tests for descriptor-level privacy controls."""

import numpy as np
import pytest

from repro.core.fov import RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.privacy.policy import (
    GeoFence,
    PrivacyPolicy,
    SpatialCloak,
    cloak_position,
)

HOME = GeoPoint(40.003, 116.326)
PROJ = LocalProjection(HOME)


def rep_at(x_m, y_m, sid=0):
    p = PROJ.to_geo(x_m, y_m)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=0.0,
                             t_start=0.0, t_end=10.0,
                             video_id="v", segment_id=sid)


class TestGeoFence:
    def test_inside_outside(self):
        fence = GeoFence(center=HOME, radius_m=100.0, label="home")
        inside = rep_at(30.0, 40.0)
        outside = rep_at(300.0, 0.0)
        assert fence.contains(inside.lat, inside.lng)
        assert not fence.contains(outside.lat, outside.lng)

    def test_boundary(self):
        fence = GeoFence(center=HOME, radius_m=100.0)
        edge = rep_at(99.0, 0.0)
        assert fence.contains(edge.lat, edge.lng)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoFence(center=HOME, radius_m=0.0)


class TestCloaking:
    def test_snaps_to_cell_centre(self):
        lat, lng = cloak_position(40.003, 116.326, cell_m=100.0)
        # Cloaked again, the position is a fixed point.
        lat2, lng2 = cloak_position(lat, lng, cell_m=100.0)
        assert (lat, lng) == (lat2, lng2)

    def test_bounded_displacement(self, rng):
        # A point moves at most half the cell diagonal.
        for _ in range(50):
            lat = 40.0 + float(rng.uniform(-0.01, 0.01))
            lng = 116.3 + float(rng.uniform(-0.01, 0.01))
            clat, clng = cloak_position(lat, lng, cell_m=50.0)
            proj = LocalProjection(GeoPoint(lat, lng))
            x, y = proj.to_local(GeoPoint(clat, clng))
            assert np.hypot(x, y) <= 50.0 * np.sqrt(2) / 2 + 1.0

    def test_nearby_points_share_a_cell(self):
        a = cloak_position(40.0030, 116.3260, cell_m=200.0)
        b = cloak_position(40.0031, 116.3261, cell_m=200.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            cloak_position(40.0, 116.0, cell_m=0.0)
        with pytest.raises(ValueError):
            SpatialCloak(cell_m=-1.0)

    def test_cloak_preserves_everything_else(self):
        fov = rep_at(10.0, 10.0, sid=3)
        out = SpatialCloak(cell_m=100.0).apply(fov)
        assert out.key() == fov.key()
        assert out.theta == fov.theta
        assert (out.t_start, out.t_end) == (fov.t_start, fov.t_end)


class TestPrivacyPolicy:
    def test_fenced_records_withheld(self):
        policy = PrivacyPolicy(
            fences=(GeoFence(center=HOME, radius_m=100.0, label="home"),))
        fovs = [rep_at(10.0, 10.0, sid=0), rep_at(500.0, 0.0, sid=1)]
        out, audit = policy.apply(fovs)
        assert [f.segment_id for f in out] == [1]
        assert audit.withheld == 1
        assert audit.uploaded == 1
        assert audit.withheld_by_zone == {"home": 1}

    def test_multiple_fences_first_match_reported(self):
        policy = PrivacyPolicy(fences=(
            GeoFence(center=HOME, radius_m=50.0, label="inner"),
            GeoFence(center=HOME, radius_m=200.0, label="outer"),
        ))
        out, audit = policy.apply([rep_at(10.0, 0.0)])
        assert out == []
        assert audit.withheld_by_zone == {"inner": 1}

    def test_cloak_applied_to_survivors(self):
        policy = PrivacyPolicy(cloak=SpatialCloak(cell_m=100.0))
        fovs = [rep_at(13.0, 27.0)]
        out, audit = policy.apply(fovs)
        assert audit.cloaked == 1
        assert (out[0].lat, out[0].lng) == cloak_position(
            fovs[0].lat, fovs[0].lng, 100.0)

    def test_empty_policy_passthrough(self):
        fovs = [rep_at(1.0, 2.0, sid=i) for i in range(3)]
        out, audit = policy_out = PrivacyPolicy().apply(fovs)
        assert out == fovs
        assert audit.uploaded == 3 and audit.cloaked == 0

    def test_retrieval_cost_of_cloaking(self, camera):
        """Cloaking at 50 m cells degrades accuracy gracefully, not
        catastrophically -- the usable privacy/utility trade."""
        from repro import CloudServer, Query
        from repro.eval.accuracy import precision_recall_at_k
        from repro.eval.groundtruth import relevant_segments
        from repro.traces.dataset import CityDataset

        city = CityDataset(n_providers=10, seed=6)
        reps = city.all_representatives()
        cloaked, _ = PrivacyPolicy(cloak=SpatialCloak(cell_m=50.0)).apply(reps)

        t0, t1 = city.time_span()
        rng = np.random.default_rng(2)
        rec_plain, rec_cloak = [], []
        for variant, records, sink in (("plain", reps, rec_plain),
                                       ("cloak", cloaked, rec_cloak)):
            server = CloudServer(city.camera)
            server.ingest(list(records))
            qrng = np.random.default_rng(2)
            for _ in range(15):
                qp = city.random_query_point(qrng)
                xy = city.projection.to_local_arrays([qp.lat], [qp.lng])[0]
                truth = relevant_segments(city, xy, (t0, t1))
                if not truth:
                    continue
                keys = server.query(Query(t_start=t0, t_end=t1, center=qp,
                                          radius=100.0, top_n=10)).keys()
                sink.append(precision_recall_at_k(keys, truth, 10)[1])
        assert rec_plain, "no truthful queries"
        plain = float(np.mean(rec_plain))
        cloak = float(np.mean(rec_cloak))
        assert cloak <= plain + 1e-9          # privacy is not free
        assert cloak > 0.3 * plain            # but the system still works
