"""Hypothesis property tests: every engine ranks identically.

The dynamic engine, the packed (batched) engine and the geo-sharded
scatter-gather tier are three layouts of the same retrieval pipeline;
for any workload they must return *identical* ranked results -- same
records, same order, same scores and funnel counters -- across random
camera parameters, shard counts 1-8, and degenerate placements
(duplicate positions forcing score ties, everything in one cell,
shards with no records at all).

Positions are drawn from a coarse metre lattice so exact duplicates
(and therefore exact score ties) are common, pinning the canonical
tie-break rather than dodging it.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.core.server import CloudServer
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.shard import ShardedCloudServer
from repro.video import VideoQuery

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
PROJ = LocalProjection(ORIGIN)

# Coarse lattices: a handful of distinct values makes collisions (and
# therefore exact distance/score ties) the norm, not the exception.
lattice_m = st.integers(-6, 6).map(lambda k: 137.0 * k)
theta_deg = st.sampled_from([0.0, 45.0, 90.0, 180.0, 270.0, 315.0])
t_edge = st.integers(0, 8).map(lambda k: 600.0 * k)


@st.composite
def records(draw, n_min=0, n_max=40):
    n = draw(st.integers(n_min, n_max))
    out = []
    for i in range(n):
        x = draw(lattice_m)
        y = draw(lattice_m)
        t0 = draw(t_edge)
        dt = draw(st.integers(1, 4)) * 300.0
        p = PROJ.to_geo(x, y)
        out.append(RepresentativeFoV(
            lat=p.lat, lng=p.lng, theta=draw(theta_deg),
            t_start=t0, t_end=t0 + dt,
            video_id=f"v{draw(st.integers(0, 5))}", segment_id=i))
    return out


@st.composite
def queries(draw, n_min=1, n_max=6):
    n = draw(st.integers(n_min, n_max))
    out = []
    for _ in range(n):
        x = draw(lattice_m)
        y = draw(lattice_m)
        t0 = draw(t_edge)
        p = PROJ.to_geo(x, y)
        out.append(Query(
            t_start=t0, t_end=t0 + draw(st.integers(1, 6)) * 600.0,
            center=p, radius=draw(st.sampled_from([50.0, 200.0, 600.0])),
            top_n=draw(st.integers(1, 8))))
    return out


cameras = st.builds(
    CameraModel,
    half_angle=st.sampled_from([15.0, 30.0, 60.0]),
    radius=st.sampled_from([20.0, 100.0, 400.0]),
)


def ranking(result):
    """Full observable identity of one answer."""
    return (result.candidates, result.after_filter,
            [(r.fov.key(), r.distance, r.covers, r.score)
             for r in result.ranked])


@settings(max_examples=50, deadline=None)
@given(records(), queries(), cameras,
       st.integers(1, 8), st.booleans(),
       st.sampled_from([150.0, 500.0, 2000.0]), st.integers(0, 3))
def test_dynamic_packed_sharded_identical(recs, qs, camera, n_shards,
                                          strict, cell_m, seed):
    dynamic = CloudServer(camera, engine="dynamic", strict_cover=strict,
                          cache_size=0)
    packed = CloudServer(camera, engine="packed", strict_cover=strict,
                         cache_size=0)
    sharded = ShardedCloudServer(camera, n_shards=n_shards, origin=ORIGIN,
                                 cell_m=cell_m, seed=seed,
                                 strict_cover=strict, cache_size=0)
    if recs:
        dynamic.ingest(recs)
        packed.ingest(recs)
        sharded.ingest(recs)

    base = [ranking(r) for r in dynamic.query_many(qs)]
    assert [ranking(r) for r in packed.query_many(qs)] == base
    assert [ranking(r) for r in sharded.query_many(qs)] == base
    # Single-query path agrees with its own batch path.
    assert [ranking(sharded.query(q)) for q in qs] == base


@st.composite
def video_queries(draw, recs):
    """A query trajectory of lattice FoVs plus retrieval parameters."""
    n_segs = draw(st.integers(1, 5))
    x = draw(lattice_m)
    y = draw(lattice_m)
    segs = []
    for s in range(n_segs):
        x += draw(st.sampled_from([-60.0, 0.0, 60.0]))
        y += draw(st.sampled_from([-60.0, 0.0, 60.0]))
        p = PROJ.to_geo(x, y)
        segs.append(RepresentativeFoV(
            lat=p.lat, lng=p.lng, theta=draw(theta_deg),
            t_start=600.0 * s, t_end=600.0 * s + 300.0,
            video_id="query", segment_id=s))
    exclude = draw(st.sampled_from([
        frozenset(), frozenset({f.video_id for f in recs[:1]})]))
    return VideoQuery(
        segments=tuple(segs), t_start=0.0, t_end=5400.0,
        radius=draw(st.sampled_from([100.0, 400.0])),
        top_k=draw(st.integers(1, 8)),
        scorer=draw(st.sampled_from(["lcv", "dtw"])),
        sim_threshold=draw(st.sampled_from([0.1, 0.25, 0.5])),
        per_segment_top_n=64, exclude=exclude)


def video_ranking(result):
    """Full observable identity of one video answer."""
    return (result.videos_considered, result.segments_harvested,
            [tuple(m) for m in result.ranked],
            [f.key() for f in result.harvested])


@settings(max_examples=40, deadline=None)
@given(st.data(), records(n_min=1, n_max=40), cameras,
       st.integers(1, 8), st.sampled_from([150.0, 500.0, 2000.0]),
       st.integers(0, 3))
def test_video_retrieval_parity_across_engines(data, recs, camera,
                                               n_shards, cell_m, seed):
    """The video top-k inherits point-query parity: dynamic, packed
    and every sharding of the same records rank videos identically --
    same scores, same evidence, same harvested coverage."""
    vq = data.draw(video_queries(recs))
    dynamic = CloudServer(camera, engine="dynamic", cache_size=0)
    packed = CloudServer(camera, engine="packed", cache_size=0)
    sharded = ShardedCloudServer(camera, n_shards=n_shards, origin=ORIGIN,
                                 cell_m=cell_m, seed=seed, cache_size=0)
    dynamic.ingest(recs)
    packed.ingest(recs)
    sharded.ingest(recs)
    base = video_ranking(dynamic.query_video(vq))
    assert video_ranking(packed.query_video(vq)) == base
    assert video_ranking(sharded.query_video(vq)) == base


@settings(max_examples=20, deadline=None)
@given(records(n_min=1, n_max=20), queries(), st.integers(2, 8))
def test_empty_and_degenerate_shards(recs, qs, n_shards):
    """All records in one cell: every other shard is empty, parity holds."""
    camera = CameraModel()
    pinned = [RepresentativeFoV(
        lat=ORIGIN.lat, lng=ORIGIN.lng, theta=f.theta,
        t_start=f.t_start, t_end=f.t_end,
        video_id=f.video_id, segment_id=f.segment_id) for f in recs]
    single = CloudServer(camera, engine="packed", cache_size=0)
    sharded = ShardedCloudServer(camera, n_shards=n_shards, origin=ORIGIN,
                                 cache_size=0)
    single.ingest(pinned)
    sharded.ingest(pinned)
    populated = [len(s.index) for s in sharded.shards]
    assert sum(1 for n in populated if n > 0) == 1  # truly degenerate
    assert ([ranking(r) for r in sharded.query_many(qs)]
            == [ranking(r) for r in single.query_many(qs)])


@settings(max_examples=15, deadline=None)
@given(records(n_min=2, n_max=30), st.integers(1, 8))
def test_partition_is_total_and_deterministic(recs, n_shards):
    """Every record lands on exactly one shard, the same one every time."""
    sharded = ShardedCloudServer(CameraModel(), n_shards=n_shards,
                                 origin=ORIGIN, cache_size=0)
    sharded.ingest(recs)
    assert sharded.indexed_count == len(recs)
    part = sharded.partitioner
    for f in recs:
        sid = part.shard_of(f)
        assert sid == part.shard_of(f)
        assert f in sharded.shards[sid].index.records()


@settings(max_examples=25, deadline=None)
@given(records(n_min=1, n_max=30), queries(), st.integers(2, 8),
       st.integers(0, 3))
def test_routing_never_loses_a_shard(recs, qs, n_shards, seed):
    """Conservative pruning: every populated shard with any candidate
    for a query is in the partitioner's target set."""
    sharded = ShardedCloudServer(CameraModel(), n_shards=n_shards,
                                 origin=ORIGIN, seed=seed, cache_size=0)
    sharded.ingest(recs)
    for q in qs:
        targets = set(sharded.partitioner.shards_for_query(q))
        for sid, shard in enumerate(sharded.shards):
            if shard.index.count_in_range(q) > 0:
                assert sid in targets
