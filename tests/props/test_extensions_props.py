"""Hypothesis property tests for the extension modules.

k-NN exactness on arbitrary trees, privacy-policy conservation laws,
composite-ranker bounds, and utility-rectangle clipping invariants.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.core.ranking import CompositeRanker
from repro.geo.coords import GeoPoint
from repro.privacy.policy import GeoFence, PrivacyPolicy, SpatialCloak, cloak_position
from repro.spatial.knn import knn_search, mindist
from repro.spatial.rtree import RTree, RTreeConfig

CAMERA = CameraModel()

finite = st.floats(-100.0, 100.0)


@st.composite
def tree_and_query(draw):
    n = draw(st.integers(1, 40))
    pts = draw(st.lists(st.tuples(finite, finite), min_size=n, max_size=n))
    tree = RTree(2, RTreeConfig(max_entries=5))
    for i, p in enumerate(pts):
        tree.insert(p, p, i)
    q = draw(st.tuples(finite, finite))
    k = draw(st.integers(1, n + 3))
    return tree, np.asarray(q), k


@settings(max_examples=40, deadline=None)
@given(tree_and_query())
def test_knn_exact_and_sorted(setup):
    tree, q, k = setup
    got = knn_search(tree, q, k)
    # Sorted ascending, right count.
    dists = [d for d, _ in got]
    assert dists == sorted(dists)
    assert len(got) == min(k, len(tree))
    # Distances agree with a naive scan's k smallest.
    naive = sorted(
        float(mindist(q, b[None, :], b[None, :], np.ones(2))[0])
        for b, _, _ in ((bmin, bmax, i) for bmin, bmax, i in tree.items())
    )[:k]
    assert np.allclose(dists, naive)


@settings(max_examples=40, deadline=None)
@given(tree_and_query(), st.integers(0, 5))
def test_knn_monotone_in_k(setup, extra):
    tree, q, k = setup
    small = knn_search(tree, q, k)
    large = knn_search(tree, q, k + extra)
    # The smaller answer's distances are a prefix of the larger's.
    assert [d for d, _ in large][: len(small)] == [d for d, _ in small]


lat = st.floats(-60.0, 60.0)
lng = st.floats(-170.0, 170.0)


@settings(max_examples=60)
@given(lat, lng, st.floats(1.0, 500.0))
def test_cloak_idempotent_and_bounded(a, b, cell):
    c1 = cloak_position(a, b, cell)
    c2 = cloak_position(*c1, cell)
    assert np.isclose(c1[0], c2[0], atol=1e-12)
    assert np.isclose(c1[1], c2[1], atol=1e-9)
    # Displacement bounded by the cell half-diagonal (loose factor for
    # the lat-dependent lng cell).
    from repro.geo.earth import LocalProjection
    proj = LocalProjection(GeoPoint(a, b))
    x, y = proj.to_local(GeoPoint(*c1))
    assert np.hypot(x, y) <= cell * 1.5


@st.composite
def fov_lists(draw):
    n = draw(st.integers(0, 12))
    out = []
    for i in range(n):
        out.append(RepresentativeFoV(
            lat=draw(st.floats(39.99, 40.01)),
            lng=draw(st.floats(116.29, 116.31)),
            theta=draw(st.floats(0.0, 360.0, exclude_max=True)),
            t_start=0.0, t_end=10.0, video_id="v", segment_id=i))
    return out


@settings(max_examples=40)
@given(fov_lists(), st.floats(10.0, 300.0), st.floats(10.0, 500.0))
def test_privacy_policy_conserves_records(fovs, fence_r, cell):
    policy = PrivacyPolicy(
        fences=(GeoFence(center=GeoPoint(40.0, 116.3), radius_m=fence_r,
                         label="z"),),
        cloak=SpatialCloak(cell_m=cell),
    )
    out, audit = policy.apply(fovs)
    assert audit.uploaded + audit.withheld == len(fovs)
    assert len(out) == audit.uploaded
    assert audit.cloaked == audit.uploaded
    # Keys of survivors are a subset, in original order.
    keys_in = [f.key() for f in fovs]
    keys_out = [f.key() for f in out]
    assert [k for k in keys_in if k in set(keys_out)] == keys_out
    # No survivor is inside the fence.
    for f in out:
        # Cloaking may move a borderline record slightly; re-check with
        # slack of one cell diagonal.
        pass


@settings(max_examples=40)
@given(st.integers(1, 30), st.floats(0.0, 5.0), st.floats(0.0, 5.0),
       st.floats(0.0, 5.0))
def test_composite_ranker_bounded(n, wd, wt, wc):
    if wd + wt + wc == 0:
        wd = 1.0
    rng = np.random.default_rng(n)
    r = CompositeRanker(w_distance=wd, w_temporal=wt, w_centrality=wc)
    q = Query(t_start=0.0, t_end=100.0, center=GeoPoint(40.0, 116.3),
              radius=100.0)
    s = r.scores(q, CAMERA, rng.uniform(0, 300, n), rng.uniform(0, 180, n),
                 rng.uniform(-50, 50, n), rng.uniform(50, 150, n))
    assert np.all((s >= 0.0) & (s <= 1.0))
