"""Hypothesis property tests for geometry substrates."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import angular_difference, fold_to_acute, normalize_angle
from repro.geometry.polygon import rectangle_union_area, rectangle_union_length_1d
from repro.geometry.sector import Sector, sector_circle_intersects, sector_contains_point
from repro.geometry.shapes import Box, box_area, box_contains, box_intersects, box_union
from repro.geometry.vec import Vec2

finite = st.floats(-1e6, 1e6)
angle = st.floats(-720.0, 720.0)


@given(angle)
def test_normalize_idempotent(a):
    once = normalize_angle(a)
    assert 0.0 <= once < 360.0
    assert normalize_angle(once) == once


@given(angle, angle)
def test_angular_difference_metric_axioms(a, b):
    d = angular_difference(a, b)
    assert 0.0 <= d <= 180.0
    # Symmetric up to fp rounding of np.mod near the wrap point.
    assert np.isclose(angular_difference(b, a), d, atol=1e-12)
    assert angular_difference(a, a) == 0.0


@given(angle, angle, angle)
def test_angular_difference_triangle_inequality(a, b, c):
    assert angular_difference(a, c) <= \
        angular_difference(a, b) + angular_difference(b, c) + 1e-9


@given(angle, angle)
def test_fold_invariant_to_reversal(tp, axis):
    assert np.isclose(fold_to_acute(tp, axis), fold_to_acute(tp + 180.0, axis),
                      atol=1e-9)


@st.composite
def box_pairs(draw, dim=3):
    a = np.asarray(draw(st.lists(st.floats(-100, 100), min_size=dim,
                                 max_size=dim)))
    ea = np.asarray(draw(st.lists(st.floats(0, 50), min_size=dim,
                                  max_size=dim)))
    b = np.asarray(draw(st.lists(st.floats(-100, 100), min_size=dim,
                                 max_size=dim)))
    eb = np.asarray(draw(st.lists(st.floats(0, 50), min_size=dim,
                                  max_size=dim)))
    return (Box.from_arrays(a, a + ea), Box.from_arrays(b, b + eb))


@given(box_pairs())
def test_union_contains_and_dominates(pair):
    a, b = pair
    u = box_union(a, b)
    assert box_contains(u, a) and box_contains(u, b)
    assert box_area(u) >= max(box_area(a), box_area(b)) - 1e-9


@given(box_pairs())
def test_intersection_symmetric(pair):
    a, b = pair
    assert box_intersects(a, b) == box_intersects(b, a)


@given(box_pairs())
def test_containment_implies_intersection(pair):
    a, b = pair
    if box_contains(a, b):
        assert box_intersects(a, b)


rect = st.tuples(st.floats(0, 50), st.floats(0, 50),
                 st.floats(0, 10), st.floats(0, 10)).map(
    lambda t: (t[0], t[1], t[0] + t[2], t[1] + t[3]))


@settings(max_examples=50)
@given(st.lists(rect, max_size=15))
def test_union_area_bounds(rects):
    total = sum((r[2] - r[0]) * (r[3] - r[1]) for r in rects)
    biggest = max(((r[2] - r[0]) * (r[3] - r[1]) for r in rects), default=0.0)
    u = rectangle_union_area(rects)
    assert biggest - 1e-9 <= u <= total + 1e-9


@settings(max_examples=50)
@given(st.lists(rect, max_size=10), rect)
def test_union_area_monotone(rects, extra):
    assert rectangle_union_area(rects + [extra]) >= \
        rectangle_union_area(rects) - 1e-9


@settings(max_examples=50)
@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 20)).map(
    lambda t: (t[0], t[0] + t[1])), min_size=1, max_size=20))
def test_union_length_le_sum(intervals):
    u = rectangle_union_length_1d(intervals)
    assert u <= sum(hi - lo for lo, hi in intervals) + 1e-9
    assert u >= max(hi - lo for lo, hi in intervals) - 1e-9


@st.composite
def sectors(draw):
    return Sector(
        apex=Vec2(draw(st.floats(-50, 50)), draw(st.floats(-50, 50))),
        azimuth=draw(st.floats(0, 360, exclude_max=True)),
        half_angle=draw(st.floats(5, 90)),
        radius=draw(st.floats(5, 150)),
    )


@settings(max_examples=60)
@given(sectors(), st.floats(-200, 200), st.floats(-200, 200))
def test_contained_point_implies_circle_intersection(sector, px, py):
    p = Vec2(px, py)
    if sector_contains_point(sector, p):
        # A tiny disc around a contained point must intersect.
        assert sector_circle_intersects(sector, p, 0.1)


@settings(max_examples=60)
@given(sectors(), st.floats(-200, 200), st.floats(-200, 200),
       st.floats(0.1, 50))
def test_circle_intersection_monotone_in_radius(sector, px, py, r):
    p = Vec2(px, py)
    if sector_circle_intersects(sector, p, r):
        assert sector_circle_intersects(sector, p, r * 2.0)
