"""Hypothesis property tests for the wire protocol and utility model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import CameraModel, Query, RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.net.protocol import FOV_RECORD_SIZE, decode_bundle, encode_bundle
from repro.utility.coverage import set_utility, single_utility

@st.composite
def _rep(draw):
    t0 = draw(st.floats(0.0, 1e6))
    return RepresentativeFoV(
        lat=draw(st.floats(-89.0, 89.0)),
        lng=draw(st.floats(-179.0, 179.0)),
        theta=draw(st.floats(0.0, 360.0, exclude_max=True)),
        t_start=t0,
        t_end=t0 + draw(st.floats(0.0, 1e4)),
    )


reps = _rep()

video_ids = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF),
    max_size=40)


@settings(max_examples=60)
@given(video_ids, st.lists(reps, max_size=20))
def test_bundle_roundtrip(video_id, fovs):
    fovs = [RepresentativeFoV(lat=f.lat, lng=f.lng, theta=f.theta,
                              t_start=f.t_start, t_end=f.t_end,
                              video_id=video_id, segment_id=i)
            for i, f in enumerate(fovs)]
    payload = encode_bundle(video_id, fovs)
    assert len(payload) >= 11 + len(fovs) * FOV_RECORD_SIZE
    vid, back = decode_bundle(payload)
    assert vid == video_id
    assert len(back) == len(fovs)
    for a, b in zip(fovs, back):
        assert (a.lat, a.lng, a.t_start, a.t_end, a.segment_id) == \
            (b.lat, b.lng, b.t_start, b.t_end, b.segment_id)
        assert abs(a.theta - b.theta) < 1e-3  # float32 orientation


cameras = st.builds(CameraModel, half_angle=st.floats(5.0, 80.0),
                    radius=st.floats(5.0, 300.0))


@st.composite
def utility_instances(draw):
    camera = draw(cameras)
    t_end = draw(st.floats(10.0, 500.0))
    query = Query(t_start=0.0, t_end=t_end, center=GeoPoint(40.0, 116.3),
                  radius=50.0)
    n = draw(st.integers(0, 8))
    fovs = []
    for i in range(n):
        a = draw(st.floats(0.0, t_end))
        b = draw(st.floats(0.0, t_end))
        fovs.append(RepresentativeFoV(
            lat=40.0, lng=116.3,
            theta=draw(st.floats(0.0, 360.0, exclude_max=True)),
            t_start=min(a, b), t_end=max(a, b),
            video_id="v", segment_id=i,
        ))
    return camera, query, fovs


@settings(max_examples=60, deadline=None)
@given(utility_instances())
def test_utility_bounds_and_monotonicity(instance):
    camera, query, fovs = instance
    total = set_utility(fovs, camera, query)
    # Bounded by the global frame and by the sum of singles.
    assert 0.0 <= total <= 360.0 * (query.t_end - query.t_start) + 1e-6
    singles = sum(single_utility(f, camera, query) for f in fovs)
    assert total <= singles + 1e-6
    # Monotone: dropping an element never increases utility.
    if fovs:
        assert set_utility(fovs[:-1], camera, query) <= total + 1e-9


@settings(max_examples=40, deadline=None)
@given(utility_instances(), st.data())
def test_utility_submodular(instance, data):
    camera, query, fovs = instance
    if len(fovs) < 3:
        return
    new = fovs[-1]
    rest = fovs[:-1]
    k = data.draw(st.integers(1, len(rest)))
    small, large = rest[:k - 1], rest
    gain_small = (set_utility(small + [new], camera, query)
                  - set_utility(small, camera, query))
    gain_large = (set_utility(large + [new], camera, query)
                  - set_utility(large, camera, query))
    assert gain_large <= gain_small + 1e-6
