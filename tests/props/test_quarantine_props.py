"""Property tests for the quarantine store's overflow accounting.

The store keeps a bounded FIFO window but must never lose *count* of
anything: for every interleaving of adds past capacity, the window
holds the newest entries, evictions are explicit (``dropped``), and
``total_quarantined == len(store) + dropped`` is invariant throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quarantine import QuarantineStore

payloads = st.lists(st.binary(min_size=0, max_size=32), min_size=0,
                    max_size=120)
capacities = st.integers(min_value=1, max_value=12)
reasons = st.sampled_from(["crc", "truncated", "semantic"])


@settings(max_examples=60, deadline=None)
@given(items=st.lists(st.tuples(st.binary(max_size=16), reasons),
                      max_size=120),
       capacity=capacities)
def test_overflow_accounting_invariants(items, capacity):
    store = QuarantineStore(capacity=capacity)
    for i, (payload, reason) in enumerate(items):
        store.add(payload, reason)
        # Invariants hold after *every* add, not just at the end.
        assert len(store) <= capacity
        assert store.total_quarantined == i + 1
        assert store.total_quarantined == len(store) + store.dropped
        assert store.aged_out == store.dropped
    # The window holds exactly the newest entries, oldest first.
    kept = [e.payload for e in store]
    assert kept == [p for p, _ in items][-min(capacity, len(items)):] \
        if items else kept == []
    # Reason tallies survive eviction.
    assert sum(store.reasons.values()) == len(items)


@settings(max_examples=40, deadline=None)
@given(items=payloads, capacity=capacities)
def test_sequence_numbers_are_stable_across_eviction(items, capacity):
    store = QuarantineStore(capacity=capacity)
    entries = [store.add(p, "crc") for p in items]
    assert [e.seq for e in entries] == list(range(len(items)))
    # Surviving window entries keep their original sequence numbers.
    assert [e.seq for e in store] == \
        list(range(max(0, len(items) - capacity), len(items)))
