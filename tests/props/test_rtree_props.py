"""Hypothesis property tests: the R-tree is an exact range index.

Whatever sequence of inserts and deletes runs, (a) the structural
invariants hold and (b) every range query returns exactly what a naive
scan returns.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.spatial.bulk import str_bulk_load
from repro.spatial.linear import LinearScanIndex
from repro.spatial.metrics import check_invariants
from repro.spatial.rtree import RTree, RTreeConfig

DIM = 2

finite = st.floats(-100.0, 100.0, allow_nan=False)


@st.composite
def boxes(draw, n_min=1, n_max=60):
    n = draw(st.integers(n_min, n_max))
    mins = draw(st.lists(st.tuples(finite, finite), min_size=n, max_size=n))
    extents = draw(st.lists(
        st.tuples(st.floats(0.0, 20.0), st.floats(0.0, 20.0)),
        min_size=n, max_size=n))
    lo = np.asarray(mins, dtype=float)
    hi = lo + np.asarray(extents, dtype=float)
    return lo, hi


@st.composite
def query_box(draw):
    a = draw(st.tuples(finite, finite))
    b = draw(st.tuples(finite, finite))
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return lo, hi


@settings(max_examples=40, deadline=None)
@given(boxes(), query_box(), st.sampled_from(["quadratic", "linear", "rstar"]))
def test_insert_search_exact(data, query, split):
    lo, hi = data
    tree = RTree(DIM, RTreeConfig(max_entries=5, split=split))
    lin = LinearScanIndex(DIM)
    for i in range(lo.shape[0]):
        tree.insert(lo[i], hi[i], i)
        lin.insert(lo[i], hi[i], i)
    check_invariants(tree)
    qlo, qhi = query
    assert sorted(tree.search(qlo, qhi)) == sorted(lin.search(qlo, qhi))


@settings(max_examples=25, deadline=None)
@given(boxes(n_min=5, n_max=50), st.data())
def test_delete_keeps_exactness(data, data_strategy):
    lo, hi = data
    n = lo.shape[0]
    tree = RTree(DIM, RTreeConfig(max_entries=5))
    lin = LinearScanIndex(DIM)
    for i in range(n):
        tree.insert(lo[i], hi[i], i)
        lin.insert(lo[i], hi[i], i)
    victims = data_strategy.draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n))
    for v in victims:
        assert tree.delete(lo[v], hi[v], v) == lin.delete(lo[v], hi[v], v)
    check_invariants(tree)
    assert len(tree) == len(lin)
    qlo, qhi = data_strategy.draw(query_box())
    assert sorted(tree.search(qlo, qhi)) == sorted(lin.search(qlo, qhi))


@settings(max_examples=25, deadline=None)
@given(boxes(n_min=0, n_max=80))
def test_bulk_load_exact(data):
    lo, hi = data
    n = lo.shape[0] if lo.size else 0
    tree = str_bulk_load(lo.reshape(n, DIM), hi.reshape(n, DIM),
                         list(range(n)), dim=DIM,
                         config=RTreeConfig(max_entries=5))
    if n:
        check_invariants(tree)
    assert len(tree) == n
    got = sorted(item for _, _, item in tree.items())
    assert got == list(range(n))


@settings(max_examples=20, deadline=None)
@given(boxes(n_min=2, n_max=40))
def test_count_matches_search_everywhere(data):
    lo, hi = data
    tree = RTree(DIM, RTreeConfig(max_entries=4))
    for i in range(lo.shape[0]):
        tree.insert(lo[i], hi[i], i)
    whole_lo = lo.min(axis=0) - 1
    whole_hi = hi.max(axis=0) + 1
    assert tree.count_intersecting(whole_lo, whole_hi) == lo.shape[0]
    assert len(tree.search(whole_lo, whole_hi)) == lo.shape[0]
