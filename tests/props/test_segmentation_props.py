"""Hypothesis property tests for Algorithm 1.

Invariants: the segments exactly partition the input in order; every
frame satisfies the threshold against its segment's anchor; the
streaming form agrees with the offline form on any input; abstraction
produces time bounds inside the segment.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import CameraModel, FoVTrace, abstract_segments, segment_trace, similarity
from repro.core.segmentation import SegmentationConfig, StreamingSegmenter

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


@st.composite
def traces(draw):
    """Random but physically plausible FoV traces around one city block."""
    n = draw(st.integers(1, 60))
    dt = draw(st.floats(0.05, 1.0))
    lat0 = draw(st.floats(-60.0, 60.0))
    lng0 = draw(st.floats(-170.0, 170.0))
    # Random walk in position (metres-scale steps) and azimuth.
    steps = draw(st.lists(
        st.tuples(st.floats(-10.0, 10.0), st.floats(-10.0, 10.0),
                  st.floats(-30.0, 30.0)),
        min_size=n, max_size=n))
    arr = np.asarray(steps, dtype=float)
    x = np.cumsum(arr[:, 0])
    y = np.cumsum(arr[:, 1])
    theta = np.mod(np.cumsum(arr[:, 2]), 360.0)
    lat = lat0 + y / 111_000.0
    lng = lng0 + x / 111_000.0
    t = np.arange(n) * dt
    return FoVTrace(t, lat, lng, theta)


thresholds = st.floats(0.05, 1.0)


@settings(max_examples=40, deadline=None)
@given(traces(), thresholds)
def test_partition(trace, thresh):
    segs = segment_trace(trace, CAMERA, SegmentationConfig(threshold=thresh))
    assert segs[0].start == 0
    assert segs[-1].stop == len(trace)
    for a, b in zip(segs, segs[1:]):
        assert a.stop == b.start
    assert sum(len(s) for s in segs) == len(trace)


@settings(max_examples=30, deadline=None)
@given(traces(), thresholds)
def test_threshold_respected_within_segments(trace, thresh):
    cfg = SegmentationConfig(threshold=thresh)
    for seg in segment_trace(trace, CAMERA, cfg):
        anchor = trace[seg.start]
        for i in range(seg.start, seg.stop):
            assert similarity(anchor, trace[i], CAMERA) >= thresh


@settings(max_examples=30, deadline=None)
@given(traces(), thresholds)
def test_streaming_equals_offline(trace, thresh):
    cfg = SegmentationConfig(threshold=thresh)
    offline = segment_trace(trace, CAMERA, cfg)
    seg = StreamingSegmenter(CAMERA, cfg)
    closed = [s for s in (seg.push(r) for r in trace) if s is not None]
    tail = seg.finish()
    if tail is not None:
        closed.append(tail)
    assert [len(s) for s in closed] == [len(s) for s in offline]


@settings(max_examples=30, deadline=None)
@given(traces(), thresholds)
def test_abstraction_bounds(trace, thresh):
    segs = segment_trace(trace, CAMERA, SegmentationConfig(threshold=thresh))
    reps = abstract_segments(segs, video_id="v")
    assert len(reps) == len(segs)
    for rep, seg in zip(reps, segs):
        assert rep.t_start == seg.t_start
        assert rep.t_end == seg.t_end
        assert 0.0 <= rep.theta < 360.0


@settings(max_examples=20, deadline=None)
@given(traces())
def test_threshold_one_cuts_at_every_change(trace):
    """At threshold 1.0 any deviation from the anchor starts a segment,
    so consecutive in-segment frames are exact FoV duplicates."""
    segs = segment_trace(trace, CAMERA, SegmentationConfig(threshold=1.0))
    for seg in segs:
        anchor = trace[seg.start]
        for i in range(seg.start, seg.stop):
            f = trace[i]
            assert similarity(anchor, f, CAMERA) >= 1.0
