"""Hypothesis property tests for the similarity measurement.

The axioms come straight from Section III: boundedness (Eq. 3),
identity, symmetry (under the bisector reference), monotone decay in
both rotation and translation, and agreement between the scalar and
vectorised kernels.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import CameraModel
from repro.core.similarity import (
    pairwise_similarity,
    sim_parallel,
    sim_perpendicular,
    sim_rotation,
    sim_translation,
    similarity_local,
)

cameras = st.builds(
    CameraModel,
    half_angle=st.floats(5.0, 80.0),
    radius=st.floats(5.0, 500.0),
)
angles = st.floats(0.0, 360.0, exclude_max=True)
coords = st.floats(-1000.0, 1000.0)


@given(cameras, coords, coords, angles, angles)
def test_bounded_unit_interval(camera, dx, dy, t1, t2):
    v = similarity_local(dx, dy, t1, t2, camera)
    assert 0.0 <= v <= 1.0


@given(cameras, angles)
def test_identity_is_exactly_one(camera, theta):
    assert similarity_local(0.0, 0.0, theta, theta, camera) == 1.0


@given(cameras, coords, coords, angles, angles)
def test_symmetry(camera, dx, dy, t1, t2):
    fwd = similarity_local(dx, dy, t1, t2, camera)
    bwd = similarity_local(-dx, -dy, t2, t1, camera)
    assert np.isclose(fwd, bwd, atol=1e-9)


@given(cameras, st.floats(0.0, 180.0), st.floats(0.0, 180.0))
def test_rotation_monotone(camera, d1, d2):
    lo, hi = sorted((d1, d2))
    assert sim_rotation(hi, camera.half_angle) <= \
        sim_rotation(lo, camera.half_angle) + 1e-12


@given(cameras, st.floats(0.0, 2000.0), st.floats(0.0, 2000.0))
def test_parallel_translation_monotone(camera, a, b):
    lo, hi = sorted((a, b))
    assert sim_parallel(hi, camera.radius, camera.half_angle) <= \
        sim_parallel(lo, camera.radius, camera.half_angle) + 1e-12


@given(cameras, st.floats(0.0, 2000.0), st.floats(0.0, 2000.0))
def test_perpendicular_translation_monotone(camera, a, b):
    lo, hi = sorted((a, b))
    assert sim_perpendicular(hi, camera.radius, camera.half_angle) <= \
        sim_perpendicular(lo, camera.radius, camera.half_angle) + 1e-12


@given(cameras, st.floats(0.0, 1000.0), angles, angles)
def test_translation_between_extremes(camera, d, bearing, axis):
    """Eq. 9's convex combination stays inside [Sim_perp, Sim_par]."""
    v = sim_translation(d, bearing, axis, camera.radius, camera.half_angle)
    lo = sim_perpendicular(d, camera.radius, camera.half_angle)
    hi = sim_parallel(d, camera.radius, camera.half_angle)
    lo, hi = min(lo, hi), max(lo, hi)
    assert lo - 1e-12 <= v <= hi + 1e-12 or d == 0.0


@given(cameras, st.floats(0.0, 360.0, exclude_max=True))
def test_rotation_beyond_aperture_is_zero(camera, extra):
    dtheta = camera.viewing_angle + extra
    if dtheta > 180.0:   # angular_difference never exceeds 180
        dtheta = 180.0
    if dtheta >= camera.viewing_angle:
        assert sim_rotation(dtheta, camera.half_angle) == 0.0


@settings(max_examples=25)
@given(
    cameras,
    st.integers(2, 8).flatmap(
        lambda n: st.tuples(
            st.lists(st.tuples(coords, coords), min_size=n, max_size=n),
            st.lists(angles, min_size=n, max_size=n),
        )
    ),
)
def test_pairwise_matches_scalar(camera, data):
    pts, thetas = data
    xy = np.asarray(pts, dtype=float)
    th = np.asarray(thetas, dtype=float)
    M = pairwise_similarity(xy, th, camera)
    n = xy.shape[0]
    i, j = 0, n - 1
    expect = similarity_local(xy[j, 0] - xy[i, 0], xy[j, 1] - xy[i, 1],
                              th[i], th[j], camera)
    assert np.isclose(M[i, j], float(expect), atol=1e-12)
    assert np.allclose(np.diag(M), 1.0)
    assert np.allclose(M, M.T, atol=1e-9)
