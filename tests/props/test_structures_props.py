"""Hypothesis property tests: interval tree, sector overlap, dedup.

Also the failure-injection contracts: non-finite sensor data must be
rejected at the trace/segmenter boundary, never silently absorbed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CameraModel, FoV, FoVTrace, StreamingSegmenter
from repro.core.dedup import cluster_segments
from repro.core.fov import RepresentativeFoV
from repro.geometry.overlap import overlap_fraction, sector_overlap_area
from repro.geometry.sector import Sector
from repro.geometry.vec import Vec2
from repro.spatial.intervaltree import IntervalTree

CAMERA = CameraModel()


@st.composite
def interval_sets(draw):
    n = draw(st.integers(0, 40))
    rows = []
    for i in range(n):
        lo = draw(st.floats(0.0, 1000.0))
        rows.append((lo, lo + draw(st.floats(0.0, 100.0)), i))
    return rows


@settings(max_examples=50, deadline=None)
@given(interval_sets(), st.floats(-50.0, 1150.0), st.floats(0.0, 200.0))
def test_interval_tree_exact(rows, lo, width):
    tree = IntervalTree(rows)
    hi = lo + width
    got = sorted(tree.overlapping(lo, hi))
    want = sorted(i for a, b, i in rows if b >= lo and a <= hi)
    assert got == want


@settings(max_examples=50, deadline=None)
@given(interval_sets(), st.floats(-50.0, 1150.0))
def test_interval_tree_stab_exact(rows, point):
    tree = IntervalTree(rows)
    got = sorted(tree.stab(point))
    want = sorted(i for a, b, i in rows if a <= point <= b)
    assert got == want


sectors = st.builds(
    Sector,
    apex=st.builds(Vec2, st.floats(-100, 100), st.floats(-100, 100)),
    azimuth=st.floats(0.0, 360.0, exclude_max=True),
    half_angle=st.floats(10.0, 85.0),
    radius=st.floats(10.0, 150.0),
)


@settings(max_examples=40, deadline=None)
@given(sectors, sectors)
def test_overlap_symmetric_and_bounded(s1, s2):
    a12 = sector_overlap_area(s1, s2, arc_points=24)
    a21 = sector_overlap_area(s2, s1, arc_points=24)
    assert a12 == pytest.approx(a21, rel=1e-6, abs=1e-6)
    assert -1e-9 <= a12 <= min(s1.area(), s2.area()) * 1.01 + 1e-9
    f = overlap_fraction(s1, s2, arc_points=24)
    assert 0.0 <= f <= 1.0


@settings(max_examples=30, deadline=None)
@given(sectors)
def test_self_overlap_is_area(s):
    assert sector_overlap_area(s, s, arc_points=64) == pytest.approx(
        s.area(), rel=5e-3)


@st.composite
def rep_sets(draw):
    n = draw(st.integers(0, 25))
    out = []
    for i in range(n):
        out.append(RepresentativeFoV(
            lat=40.0 + draw(st.floats(-0.002, 0.002)),
            lng=116.3 + draw(st.floats(-0.002, 0.002)),
            theta=draw(st.floats(0.0, 360.0, exclude_max=True)),
            t_start=0.0, t_end=10.0, video_id="v", segment_id=i))
    return out


@settings(max_examples=30, deadline=None)
@given(rep_sets(), st.floats(0.1, 1.0))
def test_dedup_partition_properties(reps, threshold):
    out = cluster_segments(reps, CAMERA, threshold=threshold)
    # Clusters partition the input.
    flat = sorted(f.key() for c in out.clusters for f in c)
    assert flat == sorted(f.key() for f in reps)
    assert 0.0 <= out.redundancy < 1.0 or out.n_segments == 0
    assert len(out.exemplars()) == out.n_clusters


@settings(max_examples=30, deadline=None)
@given(rep_sets())
def test_dedup_threshold_monotone_cluster_count(reps):
    """A stricter (higher) threshold never merges more."""
    loose = cluster_segments(reps, CAMERA, threshold=0.3).n_clusters
    tight = cluster_segments(reps, CAMERA, threshold=0.9).n_clusters
    assert tight >= loose


class TestNonFiniteRejection:
    def test_trace_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            FoVTrace([0.0, 1.0], [40.0, float("nan")], [116.0, 116.0],
                     [0.0, 0.0])

    def test_trace_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            FoVTrace([0.0], [40.0], [float("inf")], [0.0])

    def test_segmenter_rejects_nan_record(self, camera):
        seg = StreamingSegmenter(camera)
        with pytest.raises(ValueError, match="non-finite"):
            seg.push(FoV(t=0.0, lat=float("nan"), lng=116.0, theta=0.0))

    def test_segmenter_state_survives_rejection(self, camera):
        seg = StreamingSegmenter(camera)
        seg.push(FoV(t=0.0, lat=40.0, lng=116.0, theta=0.0))
        with pytest.raises(ValueError):
            seg.push(FoV(t=1.0, lat=40.0, lng=116.0, theta=float("inf")))
        # The good stream continues unharmed.
        seg.push(FoV(t=2.0, lat=40.0, lng=116.0, theta=0.0))
        assert seg.open_length == 2
