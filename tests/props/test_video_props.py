"""Hypothesis property tests for video-to-video retrieval.

Three layers of guarantees:

* The vectorised sequence kernels are **bit-identical** to their
  scalar references on arbitrary similarity matrices -- same ints,
  same floats, not merely close.
* Both reductions respect the structure of the problem: monotone in
  the per-pair similarities, bounded to their documented ranges,
  invariant where the definition says they must be.
* The retrieval ranking is a pure function of geometry: relabelling
  video ids with any order-preserving map relabels the ranking and
  changes nothing else.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.server import CloudServer
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.video import VideoQuery
from repro.video.scoring import (alignment_score, alignment_score_ref,
                                 lcv_run_length, lcv_run_length_ref,
                                 lcv_score)

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
PROJ = LocalProjection(ORIGIN)

# Similarity values on a coarse grid: ties and exact-threshold hits
# are the norm, exercising the inclusive >= comparison.
sim_value = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9, 1.0])


@st.composite
def sim_matrices(draw, max_side=10):
    n = draw(st.integers(1, max_side))
    m = draw(st.integers(1, max_side))
    flat = draw(st.lists(sim_value, min_size=n * m, max_size=n * m))
    return np.array(flat, dtype=float).reshape(n, m)


thresholds = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.9, 1.0])


@settings(max_examples=150, deadline=None)
@given(sim_matrices(), thresholds)
def test_lcv_kernel_matches_reference(sim, thr):
    assert lcv_run_length(sim, thr) == lcv_run_length_ref(sim, thr)


@settings(max_examples=150, deadline=None)
@given(sim_matrices())
def test_alignment_kernel_bit_identical(sim):
    # == on floats: the wavefront performs the identical add and
    # three-way max per cell as the scalar DP.
    assert alignment_score(sim) == alignment_score_ref(sim)


@settings(max_examples=100, deadline=None)
@given(sim_matrices(), thresholds, thresholds)
def test_lcv_antitone_in_threshold(sim, a, b):
    lo, hi = min(a, b), max(a, b)
    assert lcv_run_length(sim, lo) >= lcv_run_length(sim, hi)


@settings(max_examples=100, deadline=None)
@given(sim_matrices(), thresholds, st.data())
def test_scores_monotone_in_similarity(sim, thr, data):
    """Raising any entry of Sim can never lower either score."""
    n, m = sim.shape
    i = data.draw(st.integers(0, n - 1))
    j = data.draw(st.integers(0, m - 1))
    bumped = sim.copy()
    bumped[i, j] = 1.0
    assert lcv_run_length(bumped, thr) >= lcv_run_length(sim, thr)
    assert alignment_score(bumped) >= alignment_score(sim)


@settings(max_examples=100, deadline=None)
@given(sim_matrices(), thresholds)
def test_ranges_and_run_bounds(sim, thr):
    n, m = sim.shape
    run = lcv_run_length(sim, thr)
    assert 0 <= run <= min(n, m)
    assert 0.0 <= lcv_score(sim, thr) <= 1.0
    assert 0.0 <= alignment_score(sim) <= 1.0


@settings(max_examples=100, deadline=None)
@given(sim_matrices(), thresholds)
def test_lcv_transpose_symmetric(sim, thr):
    # A diagonal run reads the same from either video's perspective.
    assert lcv_run_length(sim, thr) == lcv_run_length(sim.T, thr)


# ---------------------------------------------------------------------------
# Retrieval-level: ranking is invariant under order-preserving relabels.
# ---------------------------------------------------------------------------

lattice_m = st.integers(-4, 4).map(lambda k: 60.0 * k)
theta_deg = st.sampled_from([0.0, 45.0, 90.0, 180.0, 270.0])


@st.composite
def video_workloads(draw, max_videos=8, max_segments=5):
    """Short lattice trajectories: collisions and ties are common."""
    n_videos = draw(st.integers(2, max_videos))
    n_segs = draw(st.integers(1, max_segments))
    out = []
    for v in range(n_videos):
        x = draw(lattice_m)
        y = draw(lattice_m)
        for s in range(n_segs):
            x += draw(st.sampled_from([-30.0, 0.0, 30.0]))
            y += draw(st.sampled_from([-30.0, 0.0, 30.0]))
            p = PROJ.to_geo(x, y)
            out.append(RepresentativeFoV(
                lat=p.lat, lng=p.lng, theta=draw(theta_deg),
                t_start=600.0 * s, t_end=600.0 * s + 300.0,
                video_id=f"v{v:03d}", segment_id=s))
    return out


def _relabel(records, fn):
    return [RepresentativeFoV(lat=f.lat, lng=f.lng, theta=f.theta,
                              t_start=f.t_start, t_end=f.t_end,
                              video_id=fn(f.video_id),
                              segment_id=f.segment_id)
            for f in records]


@settings(max_examples=40, deadline=None)
@given(video_workloads(), st.sampled_from(["lcv", "dtw"]),
       st.booleans())
def test_order_preserving_relabel_relabels_ranking(recs, scorer, packed):
    """Prefixing every id (order-preserving) must relabel the ranking
    one-for-one: same scores, same runs, same order."""
    camera = CameraModel()
    query_vid = recs[0].video_id
    segs = tuple(sorted((r for r in recs if r.video_id == query_vid),
                        key=lambda r: r.segment_id))
    engine = "packed" if packed else "dynamic"

    def run(records, qvid):
        server = CloudServer(camera, engine=engine, cache_size=0)
        server.ingest(records)
        return server.query_video(VideoQuery(
            segments=segs, t_start=0.0, t_end=4000.0, radius=120.0,
            top_k=16, scorer=scorer, sim_threshold=0.25,
            per_segment_top_n=64, exclude=frozenset({qvid})))

    base = run(recs, query_vid)
    relabeled = run(_relabel(recs, lambda v: "crowd-" + v),
                    "crowd-" + query_vid)
    assert [("crowd-" + m.video_id, m.score, m.lcv, m.segments_matched)
            for m in base.ranked] == \
        [(m.video_id, m.score, m.lcv, m.segments_matched)
         for m in relabeled.ranked]
