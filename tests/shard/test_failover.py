"""Shard failover: kill/promote parity, fail-stop writes, tamper checks.

The replica tier's contract (docs/CITY_SCALE.md):

* promoting a warm standby restores the fleet to **bit-identical**
  serving state -- every query result and the fleet's dedup digests
  match a control fleet that never failed;
* while a primary is absent the fleet is **fail-stop**: queries
  needing the dead shard raise
  :class:`~repro.shard.server.ShardUnavailableError`, every write is
  refused (so the dedup set cannot record a bundle the index never
  saw), and queries the routing prunes away still succeed;
* a standby whose packed buffer does not hash to its manifest digest
  is rejected before a single byte of it is trusted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.camera import CameraModel
from repro.core.query import Query
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.net.protocol import encode_bundle
from repro.shard import (ReplicaSet, ShardedCloudServer,
                         ShardUnavailableError)

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
N_SHARDS = 3
CAMERA = CameraModel()


def make_records(n, seed, tag="v"):
    from repro.core.fov import RepresentativeFoV
    proj = LocalProjection(ORIGIN)
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(-2000.0, 2000.0, size=2)
        g = proj.to_geo(float(x), float(y))
        out.append(RepresentativeFoV(
            video_id=f"{tag}-{i:04d}", segment_id=0,
            t_start=float(i), t_end=float(i + 6),
            lat=g.lat, lng=g.lng,
            theta=float(rng.uniform(0.0, 360.0))))
    return out


def make_queries(n, seed, radius=1200.0):
    proj = LocalProjection(ORIGIN)
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        x, y = rng.uniform(-2000.0, 2000.0, size=2)
        g = proj.to_geo(float(x), float(y))
        out.append(Query(t_start=0.0, t_end=1000.0, center=g,
                         radius=radius, top_n=8))
    return out


def make_server():
    return ShardedCloudServer(CAMERA, n_shards=N_SHARDS, origin=ORIGIN,
                              seed=1, cache_size=16)


def rows(result):
    return [(r.fov.key(), r.distance, r.covers, r.score)
            for r in result.ranked]


def bundles(records, per=10, tag="b"):
    out = []
    for i in range(0, len(records), per):
        out.append(encode_bundle(f"{tag}-{i // per:03d}",
                                 records[i:i + per]))
    return out


@pytest.mark.parametrize("victim", range(N_SHARDS))
def test_kill_promote_is_bit_identical_to_control(victim):
    """Kill each shard in turn mid-run; the promoted fleet matches an
    unfailed control: ranked rows, record keys, and dedup state."""
    srv, ctrl = make_server(), make_server()
    phase1 = bundles(make_records(60, seed=10), tag="p1")
    phase2 = bundles(make_records(40, seed=11, tag="w"), tag="p2")
    queries = make_queries(12, seed=12)

    srv.ingest_batch(phase1)
    ctrl.ingest_batch(phase1)
    replicas = ReplicaSet(srv)
    assert replicas.sync() == N_SHARDS

    replicas.kill(victim)
    assert srv.down_shards == frozenset({victim})
    promoted = replicas.promote(victim)
    assert srv.shards[victim] is promoted
    assert srv.down_shards == frozenset()
    assert replicas.downtime_s(victim) > 0.0

    # Life goes on after promotion: both fleets take the same second
    # commit group and answer the same queries identically.
    srv.ingest_batch(phase2)
    ctrl.ingest_batch(phase2)
    for q in queries:
        assert rows(srv.query(q)) == rows(ctrl.query(q))
    assert (sorted(r.key() for r in srv.records())
            == sorted(r.key() for r in ctrl.records()))
    assert srv._seen_digests == ctrl._seen_digests


def test_down_shard_is_fail_stop():
    srv = make_server()
    srv.ingest_batch(bundles(make_records(60, seed=20)))
    replicas = ReplicaSet(srv)
    replicas.sync()
    victim = 1
    replicas.kill(victim)

    # A wide query that needs every shard is refused and identifies
    # the culprit.
    wide = Query(t_start=0.0, t_end=1000.0, center=ORIGIN,
                 radius=3000.0, top_n=8)
    with pytest.raises(ShardUnavailableError) as exc:
        srv.query(wide)
    assert exc.value.shard_id == victim
    replicas.note_dropped_query()
    assert replicas.dropped_queries == 1

    # Every write path is refused while the fleet is degraded.
    extra = make_records(5, seed=21, tag="x")
    with pytest.raises(ShardUnavailableError):
        srv.ingest(extra)
    with pytest.raises(ShardUnavailableError):
        srv.ingest_batch(bundles(extra, tag="x"))
    with pytest.raises(ShardUnavailableError):
        srv.evict_older_than(100.0)

    # ... and recovery restores both reads and writes.
    replicas.promote(victim)
    assert srv.query(wide).candidates > 0
    srv.ingest(extra)


def test_tampered_replica_is_rejected():
    srv = make_server()
    srv.ingest_batch(bundles(make_records(45, seed=30)))
    replicas = ReplicaSet(srv)
    replicas.sync()
    victim = 2
    good = replicas.replica(victim)
    corrupt = bytearray(good.packed)
    corrupt[len(corrupt) // 2] ^= 0xFF
    replicas._replicas[victim] = type(good)(manifest=good.manifest,
                                            packed=bytes(corrupt))
    replicas.kill(victim)
    with pytest.raises(ValueError, match="tampered or torn"):
        replicas.promote(victim)
    # the fleet stays degraded: the bad standby was never installed
    assert srv.down_shards == frozenset({victim})
    # restoring the genuine buffer recovers
    replicas._replicas[victim] = good
    replicas.promote(victim)
    assert srv.down_shards == frozenset()


def test_promote_without_standby_or_bad_sid():
    srv = make_server()
    srv.ingest(make_records(10, seed=40))
    replicas = ReplicaSet(srv)
    with pytest.raises(ValueError, match="no standby"):
        replicas.promote(0)
    with pytest.raises(ValueError):
        srv.kill_shard(N_SHARDS)
    with pytest.raises(ValueError):
        srv.kill_shard(-1)


def test_sync_skips_unchanged_epochs():
    srv = make_server()
    srv.ingest(make_records(30, seed=50))
    replicas = ReplicaSet(srv)
    assert replicas.sync() == N_SHARDS
    assert replicas.sync() == 0                 # nothing moved
    srv.ingest(make_records(6, seed=51, tag="y"))
    assert 1 <= replicas.sync() <= N_SHARDS     # only touched shards
    assert replicas.epochs() == srv.epoch_vector()
