"""Unit tests for the deterministic geo-grid partitioner."""

import numpy as np
import pytest

from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.shard.partition import DEFAULT_CELL_M, GridPartitioner

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
PROJ = LocalProjection(ORIGIN)


def fov_at(x_m: float, y_m: float, i: int = 0) -> RepresentativeFoV:
    p = PROJ.to_geo(x_m, y_m)
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=0.0,
                             t_start=0.0, t_end=60.0,
                             video_id="v", segment_id=i)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GridPartitioner(n_shards=0, origin=ORIGIN)
        with pytest.raises(ValueError):
            GridPartitioner(n_shards=4, origin=ORIGIN, cell_m=0.0)
        with pytest.raises(ValueError):
            GridPartitioner(n_shards=4, origin=ORIGIN, cell_m=float("nan"))

    def test_defaults(self):
        part = GridPartitioner(n_shards=4, origin=ORIGIN)
        assert part.cell_m == DEFAULT_CELL_M
        assert part.seed == 0


class TestAssignment:
    def test_single_shard_takes_everything(self):
        part = GridPartitioner(n_shards=1, origin=ORIGIN)
        for x, y in [(0, 0), (-9000, 4000), (123456, -98765)]:
            assert part.shard_of(fov_at(x, y)) == 0

    def test_deterministic_and_in_range(self):
        part = GridPartitioner(n_shards=5, origin=ORIGIN, seed=11)
        rng = np.random.default_rng(3)
        for _ in range(200):
            x, y = rng.uniform(-5000, 5000, 2)
            f = fov_at(float(x), float(y))
            sid = part.shard_of(f)
            assert 0 <= sid < 5
            assert sid == part.shard_of(f)

    def test_cell_is_wholly_owned(self):
        """Points inside one cell always share a shard."""
        part = GridPartitioner(n_shards=7, origin=ORIGIN, cell_m=500.0)
        # sample well inside the cell: exact boundaries belong to a
        # single cell only up to fp round-trip noise
        base = part.shard_of(fov_at(1010.0, 1010.0))
        for dx in (10.0, 250.0, 490.0):
            for dy in (10.0, 250.0, 490.0):
                assert part.shard_of(fov_at(1000.0 + dx, 1000.0 + dy)) == base

    def test_seed_changes_assignment(self):
        a = GridPartitioner(n_shards=8, origin=ORIGIN, seed=0)
        b = GridPartitioner(n_shards=8, origin=ORIGIN, seed=1)
        fovs = [fov_at(700.0 * i, -450.0 * i, i) for i in range(40)]
        assert ([a.shard_of(f) for f in fovs]
                != [b.shard_of(f) for f in fovs])

    def test_spreads_across_shards(self):
        """A city-scale cloud of cells should touch every shard."""
        part = GridPartitioner(n_shards=8, origin=ORIGIN, cell_m=250.0)
        rng = np.random.default_rng(9)
        seen = {part.shard_of(fov_at(*map(float, rng.uniform(-4000, 4000, 2))))
                for _ in range(400)}
        assert seen == set(range(8))

    def test_split_partitions_input(self):
        part = GridPartitioner(n_shards=6, origin=ORIGIN)
        fovs = [fov_at(300.0 * i, -170.0 * i, i) for i in range(60)]
        parts = part.split(fovs)
        assert len(parts) == 6
        assert sum(len(p) for p in parts) == len(fovs)
        for sid, chunk in enumerate(parts):
            for f in chunk:
                assert part.shard_of(f) == sid


class TestRouting:
    def test_single_shard_short_circuits(self):
        part = GridPartitioner(n_shards=1, origin=ORIGIN)
        q = Query(t_start=0, t_end=10, center=ORIGIN, radius=100.0)
        assert part.shards_for_query(q) == (0,)

    def test_covers_every_contained_point(self):
        """Any record inside the query's lat/lng box routes to a
        targeted shard (the conservative-cover invariant)."""
        part = GridPartitioner(n_shards=8, origin=ORIGIN, cell_m=400.0)
        rng = np.random.default_rng(17)
        for _ in range(50):
            cx, cy = map(float, rng.uniform(-3000, 3000, 2))
            radius = float(rng.uniform(30, 800))
            q = Query(t_start=0, t_end=10, center=PROJ.to_geo(cx, cy),
                      radius=radius)
            targets = set(part.shards_for_query(q))
            for _ in range(20):
                # sample points within the inscribed disc of the box
                ang = float(rng.uniform(0, 2 * np.pi))
                rr = float(rng.uniform(0, radius))
                f = fov_at(cx + rr * np.cos(ang), cy + rr * np.sin(ang))
                assert part.shard_of(f) in targets

    def test_small_query_prunes(self):
        """A tight query must not fan out to the whole fleet."""
        part = GridPartitioner(n_shards=8, origin=ORIGIN, cell_m=1000.0)
        q = Query(t_start=0, t_end=10, center=PROJ.to_geo(150.0, 150.0),
                  radius=30.0)
        assert len(part.shards_for_query(q)) < 8

    def test_huge_box_falls_back_to_all_shards(self):
        part = GridPartitioner(n_shards=4, origin=ORIGIN, cell_m=10.0)
        q = Query(t_start=0, t_end=10, center=ORIGIN, radius=50_000.0)
        assert part.shards_for_query(q) == (0, 1, 2, 3)

    def test_box_straddling_mirror_latitude(self):
        """The x-extent peak at lat == -origin.lat is sampled, keeping
        the cover conservative even for boxes that straddle it."""
        part = GridPartitioner(n_shards=6, origin=GeoPoint(lat=0.002, lng=10.0),
                               cell_m=300.0)
        shards = part.shards_for_box(-0.01, 0.01, 9.99, 10.01)
        assert shards  # well-defined, non-empty
        for lat in (-0.002, 0.0, 0.005):
            f = RepresentativeFoV(lat=lat, lng=10.0, theta=0.0, t_start=0.0,
                                  t_end=1.0, video_id="v", segment_id=0)
            assert part.shard_of(f) in shards
