"""Sharded snapshot persistence: save, reload, and tamper detection."""

import json

import numpy as np
import pytest

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.shard import (ShardedCloudServer, load_packed_shard_views,
                         load_sharded_snapshot, save_sharded_snapshot)
from repro.shard.persist import MANIFEST_NAME

from tests.shard.test_sharded_server import (ORIGIN, make_queries,
                                             make_records)


@pytest.fixture
def camera():
    return CameraModel()


def build_fleet(camera, n_shards=5, n_records=800, seed=11):
    rng = np.random.default_rng(seed)
    server = ShardedCloudServer(camera, n_shards=n_shards, origin=ORIGIN)
    server.ingest(make_records(n_records, rng))
    return server, rng


class TestRoundTrip:
    def test_reload_is_bit_identical(self, camera, tmp_path):
        server, rng = build_fleet(camera)
        save_sharded_snapshot(tmp_path, server)
        reloaded = load_sharded_snapshot(tmp_path, camera)

        assert reloaded.n_shards == server.n_shards
        assert reloaded.indexed_count == server.indexed_count
        assert reloaded.stats.records_live == server.stats.records_live
        for sid in range(server.n_shards):
            assert (len(reloaded.shards[sid].index)
                    == len(server.shards[sid].index))

        queries = make_queries(48, rng)
        for a, b in zip(server.query_many(queries),
                        reloaded.query_many(queries)):
            assert a.candidates == b.candidates
            assert a.after_filter == b.after_filter
            assert ([(r.fov.key(), r.distance, r.covers, r.score)
                     for r in a.ranked]
                    == [(r.fov.key(), r.distance, r.covers, r.score)
                        for r in b.ranked])

    def test_empty_shards_survive(self, camera, tmp_path):
        """A fleet where some shards hold nothing reloads cleanly."""
        server = ShardedCloudServer(camera, n_shards=6, origin=ORIGIN)
        rng = np.random.default_rng(2)
        # pin everything inside one cell's interior -> one shard
        p = LocalProjection(ORIGIN).to_geo(250.0, 250.0)
        pinned = [RepresentativeFoV(lat=p.lat, lng=p.lng, theta=f.theta,
                                    t_start=f.t_start, t_end=f.t_end,
                                    video_id=f.video_id,
                                    segment_id=f.segment_id)
                  for f in make_records(20, rng, extent_m=10.0)]
        server.ingest(pinned)
        populated = [len(s.index) for s in server.shards]
        assert populated.count(0) == 5
        save_sharded_snapshot(tmp_path, server)
        reloaded = load_sharded_snapshot(tmp_path, camera)
        assert [len(s.index) for s in reloaded.shards] == populated

    def test_save_reports_bytes(self, camera, tmp_path):
        server, _ = build_fleet(camera, n_records=50)
        written = save_sharded_snapshot(tmp_path, server)
        on_disk = sum(p.stat().st_size for p in tmp_path.iterdir())
        assert written == on_disk


class TestPackedSidecars:
    def test_sidecar_views_match_live_fleet(self, camera, tmp_path):
        """The mmapped ``.fovpack`` views ARE the shards' packed views."""
        server, _ = build_fleet(camera, n_shards=4, n_records=400)
        save_sharded_snapshot(tmp_path, server)
        views = load_packed_shard_views(tmp_path)
        assert len(views) == server.n_shards
        for sid, view in enumerate(views):
            live = server.shards[sid].index.packed_view()
            assert len(view) == len(live)
            assert np.array_equal(view.key_rank, live.key_rank)
            assert np.array_equal(view.grid.fused, live.grid.fused)
            # Zero-copy: the columns alias the file mapping.
            if len(view):
                assert view.lat.base is not None
                assert not view.lat.flags.writeable

    def test_missing_sidecar_rejected(self, camera, tmp_path):
        server, _ = build_fleet(camera, n_shards=3, n_records=60)
        save_sharded_snapshot(tmp_path, server)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        del manifest["shards"][1]["packed"]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="sidecar"):
            load_packed_shard_views(tmp_path)

    def test_corrupt_sidecar_rejected(self, camera, tmp_path):
        server, _ = build_fleet(camera, n_shards=3, n_records=60)
        save_sharded_snapshot(tmp_path, server)
        victim = tmp_path / "shard-000.fovpack"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="CRC32"):
            load_packed_shard_views(tmp_path)

    def test_sidecars_do_not_affect_record_reload(self, camera, tmp_path):
        """Deleting every sidecar leaves the record reload path intact."""
        server, _ = build_fleet(camera, n_shards=3, n_records=60)
        save_sharded_snapshot(tmp_path, server)
        for p in tmp_path.glob("*.fovpack"):
            p.unlink()
        reloaded = load_sharded_snapshot(tmp_path, camera)
        assert reloaded.indexed_count == server.indexed_count


class TestFailureModes:
    def test_missing_manifest(self, camera, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            load_sharded_snapshot(tmp_path, camera)

    def test_unknown_format(self, camera, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="format"):
            load_sharded_snapshot(tmp_path, camera)

    def test_corrupt_shard_file(self, camera, tmp_path):
        server, _ = build_fleet(camera, n_records=60)
        save_sharded_snapshot(tmp_path, server)
        victim = tmp_path / "shard-000.fovsnap"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            load_sharded_snapshot(tmp_path, camera)

    def test_tampered_routing_parameters(self, camera, tmp_path):
        """Changing the seed re-routes records; the count check trips."""
        server, _ = build_fleet(camera, n_shards=4, n_records=300)
        save_sharded_snapshot(tmp_path, server)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["seed"] = int(manifest["seed"]) + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="routing"):
            load_sharded_snapshot(tmp_path, camera)

    def test_queries_after_reload_see_live_index(self, camera, tmp_path):
        """The reloaded fleet keeps serving ingest and queries."""
        server, rng = build_fleet(camera, n_records=100)
        save_sharded_snapshot(tmp_path, server)
        reloaded = load_sharded_snapshot(tmp_path, camera)
        extra = make_records(30, rng)
        reloaded.ingest(extra)
        assert reloaded.indexed_count == 130
        q = Query(t_start=0.0, t_end=3600.0,
                  center=GeoPoint(lat=extra[0].lat, lng=extra[0].lng),
                  radius=200.0, top_n=5)
        assert reloaded.query(q).candidates > 0
