"""Unit tests for the sharded router: ingest, pruning, merge, metrics."""

import numpy as np
import pytest

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.core.query import Query
from repro.core.server import CloudServer, IngestStatus
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.net.protocol import encode_bundle
from repro.shard import ShardedCloudServer

ORIGIN = GeoPoint(lat=40.0, lng=116.3)
PROJ = LocalProjection(ORIGIN)


def make_records(n, rng, extent_m=4000.0, horizon_s=3600.0):
    out = []
    for i in range(n):
        x, y = rng.uniform(-extent_m, extent_m, 2)
        p = PROJ.to_geo(float(x), float(y))
        t0 = float(rng.uniform(0, horizon_s - 60))
        out.append(RepresentativeFoV(
            lat=p.lat, lng=p.lng, theta=float(rng.uniform(0, 360)),
            t_start=t0, t_end=t0 + 60.0,
            video_id=f"v{i % 9}", segment_id=i))
    return out


def make_queries(n, rng, extent_m=4000.0, horizon_s=3600.0):
    out = []
    for _ in range(n):
        x, y = rng.uniform(-extent_m, extent_m, 2)
        out.append(Query(
            t_start=0.0, t_end=horizon_s,
            center=PROJ.to_geo(float(x), float(y)),
            radius=float(rng.choice([100.0, 300.0, 800.0])), top_n=10))
    return out


@pytest.fixture
def camera():
    return CameraModel()


class TestIngest:
    def test_bundle_roundtrip_and_dedup(self, camera):
        server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        rng = np.random.default_rng(1)
        fovs = make_records(50, rng)
        payload = encode_bundle("vid-1", fovs)
        out = server.ingest_bundle(payload, device_id="dev-1")
        assert out.status is IngestStatus.ACCEPTED
        assert out.records_indexed == 50
        assert server.indexed_count == 50
        again = server.ingest_bundle(payload)
        assert again.status is IngestStatus.DUPLICATE
        assert server.indexed_count == 50
        assert server.stats.bundles_received == 1
        assert server.stats.bundles_duplicated == 1

    def test_rejected_payload_quarantined_not_indexed(self, camera):
        server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        out = server.ingest_bundle(b"garbage payload")
        assert out.status is IngestStatus.REJECTED
        assert server.indexed_count == 0
        assert server.stats.bundles_rejected == 1
        assert len(server.quarantine) == 1
        # rejection released the digest: a redelivery rejects again,
        # it is not misreported as a duplicate
        assert server.ingest_bundle(b"garbage payload").status \
            is IngestStatus.REJECTED

    def test_routing_metrics_and_gauges(self, camera):
        server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        rng = np.random.default_rng(2)
        server.ingest(make_records(200, rng))
        routed = sum(
            server._route.labels(shard=str(sid)).value for sid in range(4))
        assert routed == 200
        snapshot = server.obs.registry.render_json()
        live = {s["labels"]["shard"]: s["value"]
                for s in snapshot["shard.records_live"]["samples"]}
        assert sum(live.values()) == 200
        epochs = {s["labels"]["shard"]: s["value"]
                  for s in snapshot["shard.epoch"]["samples"]}
        for sid in range(4):
            assert epochs[str(sid)] == server.shards[sid].index.epoch

    def test_eviction_fleet_wide(self, camera):
        server = ShardedCloudServer(camera, n_shards=3, origin=ORIGIN)
        rng = np.random.default_rng(3)
        recs = make_records(120, rng)
        server.ingest(recs)
        cutoff = 1800.0
        expect = sum(1 for f in recs if f.t_end < cutoff)
        assert server.evict_older_than(cutoff) == expect
        assert server.indexed_count == 120 - expect
        assert server.stats.records_evicted == expect


class TestQuery:
    def test_matches_single_server(self, camera):
        rng = np.random.default_rng(4)
        recs = make_records(2000, rng)
        queries = make_queries(64, rng)
        single = CloudServer(camera, engine="packed", cache_size=0)
        single.ingest(recs)
        server = ShardedCloudServer(camera, n_shards=6, origin=ORIGIN,
                                    cache_size=0)
        server.ingest(recs)
        for a, b in zip(single.query_many(queries),
                        server.query_many(queries)):
            assert a.candidates == b.candidates
            assert a.after_filter == b.after_filter
            assert ([(r.fov.key(), r.distance, r.covers, r.score)
                     for r in a.ranked]
                    == [(r.fov.key(), r.distance, r.covers, r.score)
                        for r in b.ranked])

    def test_fanout_is_pruned(self, camera):
        """Tight queries over a wide city must not search every shard."""
        server = ShardedCloudServer(camera, n_shards=8, origin=ORIGIN,
                                    cell_m=1000.0, cache_size=0)
        rng = np.random.default_rng(5)
        server.ingest(make_records(1000, rng, extent_m=6000.0))
        queries = make_queries(32, rng, extent_m=6000.0)
        tight = [Query(t_start=q.t_start, t_end=q.t_end, center=q.center,
                       radius=50.0, top_n=q.top_n) for q in queries]
        server.query_many(tight)
        mean_fanout = server._fanout.sum / server._fanout.count
        assert mean_fanout < 8
        assert server._pruned.value > 0

    def test_empty_fleet_answers_empty(self, camera):
        server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        q = Query(t_start=0, t_end=10, center=ORIGIN, radius=100.0)
        result = server.query(q)
        assert result.ranked == []
        assert result.candidates == 0
        # no populated shard: content bounds prune the entire scatter
        assert server._fanout.sum == 0

    def test_cache_tagged_by_epoch_vector(self, camera):
        server = ShardedCloudServer(camera, n_shards=3, origin=ORIGIN,
                                    cache_size=16)
        rng = np.random.default_rng(6)
        server.ingest(make_records(100, rng))
        q = make_queries(1, rng)[0]
        server.query(q)
        server.query(q)
        assert server.stats.cache_hits == 1
        # mutating any one shard invalidates the vector
        server.ingest(make_records(1, rng))
        server.query(q)
        assert server.stats.cache_hits == 1
        assert server.stats.cache_misses == 2


class TestBatchedIngest:
    def _payloads(self, rng, n_bundles=12, per=20):
        recs = make_records(n_bundles * per, rng)
        return [encode_bundle(f"vid-{i}", recs[i * per:(i + 1) * per])
                for i in range(n_bundles)]

    def test_batched_matches_sequential_fleet(self, camera):
        rng = np.random.default_rng(5)
        payloads = self._payloads(rng)
        flipped = bytearray(payloads[4])
        flipped[-2] ^= 0xFF
        payloads[4] = bytes(flipped)

        seq = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        for p in payloads:
            seq.ingest_bundle(p)
        batched = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        outcomes = batched.ingest_batch(payloads)
        assert outcomes[4].status is IngestStatus.REJECTED
        assert batched.indexed_count == seq.indexed_count
        assert [s.index.content_digest() for s in batched.shards] == \
            [s.index.content_digest() for s in seq.shards]

    def test_one_epoch_bump_per_shard_per_group(self, camera):
        rng = np.random.default_rng(6)
        server = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        server.ingest_batch(self._payloads(rng, n_bundles=8))
        server.ingest_batch(self._payloads(np.random.default_rng(7),
                                           n_bundles=8))
        # Two commit groups, wide enough to touch every shard each time.
        assert server.epoch_vector() == (2, 2, 2, 2)

    def test_wal_replay_restores_fleet(self, camera, tmp_path):
        from repro.core.wal import WriteAheadLog

        rng = np.random.default_rng(8)
        payloads = self._payloads(rng)
        with WriteAheadLog(tmp_path / "fleet.wal") as wal:
            origin_srv = ShardedCloudServer(camera, n_shards=4,
                                            origin=ORIGIN, wal=wal)
            origin_srv.ingest_batch(payloads)
            want = [s.index.content_digest() for s in origin_srv.shards]
        recovered = ShardedCloudServer(camera, n_shards=4, origin=ORIGIN)
        assert recovered.replay_wal(tmp_path / "fleet.wal") == len(payloads)
        assert [s.index.content_digest() for s in recovered.shards] == want

    def test_back_pressure_sheds_tail(self, camera):
        rng = np.random.default_rng(9)
        server = ShardedCloudServer(camera, n_shards=2, origin=ORIGIN,
                                    admission_capacity=3)
        outcomes = server.ingest_batch(self._payloads(rng, n_bundles=5))
        statuses = [o.status for o in outcomes]
        assert statuses.count(IngestStatus.ACCEPTED) == 3
        assert statuses.count(IngestStatus.SHED) == 2
        again = server.ingest_batch(self._payloads(rng, n_bundles=3))
        assert all(o.status is IngestStatus.ACCEPTED for o in again)
