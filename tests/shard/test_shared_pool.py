"""Shared-memory snapshots and the zero-copy persistent pool.

Two invariants matter here beyond plain parity:

* **no stale epochs** -- every mutation class (insert, delete,
  retention eviction) must invalidate the workers' zero-copy views and
  force a refresh before the next answer; a worker may never serve an
  epoch older than the task it was handed;
* **no leaks** -- superseded and closed segments must disappear from
  the system (a republish-per-epoch design that leaked one segment per
  ingest would exhaust ``/dev/shm`` in production).
"""

import numpy as np
import pytest

from repro import CameraModel
from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.core.retrieval import RetrievalEngine
from repro.shard.shm import SharedSnapshot, attach
from repro.traces.dataset import random_representative_fovs

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def workload(seed=5, n_records=1200, n_queries=24):
    rng = np.random.default_rng(seed)
    reps = random_representative_fovs(n_records, rng)
    queries = []
    for _ in range(n_queries):
        anchor = reps[int(rng.integers(len(reps)))]
        queries.append(Query(
            t_start=max(0.0, anchor.t_start - 300.0),
            t_end=anchor.t_end + 300.0,
            center=anchor.point,
            radius=float(rng.uniform(50.0, 400.0))))
    return reps, FoVIndex.bulk(reps), queries


def ranking(result):
    return [(r.fov.key(), r.distance, r.covers, r.score)
            for r in result.ranked]


def assert_parity(got, want):
    for a, b in zip(got, want):
        assert a.candidates == b.candidates
        assert a.after_filter == b.after_filter
        assert ranking(a) == ranking(b)


class TestSharedSnapshot:
    def test_publish_attach_round_trip(self):
        _, index, _ = workload(n_records=400, n_queries=1)
        view = index.packed_view()
        shared = SharedSnapshot.publish(view)
        try:
            attached, shm = attach(shared.name)
            assert len(attached) == len(view)
            assert attached.epoch == shared.epoch == view.epoch
            assert np.array_equal(attached.grid.fused, view.grid.fused)
            attached = None
            shm.close()
        finally:
            shared.unlink()

    def test_unlink_is_idempotent_and_blocks_new_attaches(self):
        _, index, _ = workload(n_records=50, n_queries=1)
        shared = SharedSnapshot.publish(index.packed_view())
        name = shared.name
        shared.unlink()
        shared.unlink()                       # second call: no-op
        with pytest.raises(FileNotFoundError):
            attach(name)

    def test_attached_while_unlinked_stays_valid(self):
        # POSIX semantics the republish protocol leans on: a worker
        # mid-batch on the old epoch keeps a valid mapping even after
        # the parent unlinked the segment name.
        _, index, _ = workload(n_records=300, n_queries=1)
        view = index.packed_view()
        shared = SharedSnapshot.publish(view)
        attached, shm = attach(shared.name)
        shared.unlink()
        assert np.array_equal(attached.lat, view.lat)
        attached = None
        shm.close()


class TestPoolRefresh:
    """Every mutation class forces a worker refresh -- never a stale epoch."""

    def _fresh_want(self, index, queries):
        return RetrievalEngine(index, CAMERA,
                               engine="packed").execute_many(queries)

    def test_insert_delete_evict_all_refresh(self):
        reps, index, queries = workload()
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        try:
            assert_parity(engine.execute_many(queries, shards=2),
                          self._fresh_want(index, queries))
            pool = engine._pool
            assert (pool.restarts, pool.delta_batches) == (1, 0)

            extra = random_representative_fovs(
                40, np.random.default_rng(77))
            index.insert_many(extra)
            assert_parity(engine.execute_many(queries, shards=2),
                          self._fresh_want(index, queries))
            assert (pool.restarts, pool.delta_batches) == (1, 1)

            assert index.delete(extra[0])
            assert_parity(engine.execute_many(queries, shards=2),
                          self._fresh_want(index, queries))
            assert (pool.restarts, pool.delta_batches) == (1, 2)

            cutoff = float(np.median([r.t_end for r in reps]))
            assert index.evict_older_than(cutoff) > 0
            assert_parity(engine.execute_many(queries, shards=2),
                          self._fresh_want(index, queries))
            assert (pool.restarts, pool.delta_batches) == (1, 3)
        finally:
            engine.close()

    def test_published_epoch_tracks_index_epoch(self):
        _, index, queries = workload(n_records=300, n_queries=4)
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        try:
            engine.execute_many(queries, shards=2)
            pool = engine._pool
            assert pool._snapshot.epoch == index.epoch
            index.insert_many(random_representative_fovs(
                8, np.random.default_rng(1)))
            assert pool._snapshot.epoch != index.epoch  # stale until next run
            engine.execute_many(queries, shards=2)
            assert pool._snapshot.epoch == index.epoch
        finally:
            engine.close()

    def test_close_unlinks_segment(self):
        _, index, queries = workload(n_records=200, n_queries=4)
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        engine.execute_many(queries, shards=2)
        name = engine._pool._snapshot.name
        engine.close()
        with pytest.raises(FileNotFoundError):
            attach(name)

    def test_unused_shards_answer_like_sequential(self):
        # shards > queries: chunking degenerates gracefully.
        _, index, queries = workload(n_records=200, n_queries=3)
        engine = RetrievalEngine(index, CAMERA, engine="packed")
        try:
            assert_parity(engine.execute_many(queries, shards=8),
                          self._fresh_want(index, queries))
        finally:
            engine.close()
