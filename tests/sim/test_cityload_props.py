"""Property tests for the city-scale workload generators.

Three contracts the harness's determinism and skew models rest on:

* **Reproducibility** -- the same config builds a bit-identical event
  stream (digest, event tuples, base corpus).  This is what makes the
  failover parity check meaningful: control and failover runs replay
  literally the same bytes.
* **Zipf concentration** -- raising the exponent monotonically
  concentrates query mass on the top-ranked hotspot (the Lu &
  Colmenares POI skew model the hotspot phase borrows).
* **Flash-crowd conservation** -- the stadium-exit phase emits exactly
  ``flash_events`` events no matter how the query/ingest split or any
  other knob is configured; burst *shape* changes, burst *size* never
  does.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.cityload import (CityLoadConfig, build_city_workload,
                                zipf_weights)
import pytest

# Small counts keep each generated example fast; the properties do not
# depend on scale.
_small = dict(base_records=24, hotspot_queries=8, hotspot_bundles=2,
              video_queries=1, daynight_queries=6, mixed_queries=6,
              adversarial_queries=8, failover_queries=4, cache_size=4)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000),
       n_shards=st.integers(1, 6),
       exponent=st.floats(0.0, 3.0, allow_nan=False))
def test_same_seed_bit_identical_stream(seed, n_shards, exponent):
    cfg = CityLoadConfig(seed=seed, n_shards=n_shards,
                         zipf_exponent=exponent, **_small)
    a = build_city_workload(cfg)
    b = build_city_workload(cfg)
    assert a.digest == b.digest
    assert a.events == b.events
    assert a.base_records == b.base_records
    assert a.hot_cell == b.hot_cell
    assert a.failover_shard == b.failover_shard


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 64),
       exponents=st.lists(st.floats(0.0, 4.0, allow_nan=False),
                          min_size=2, max_size=6))
def test_zipf_exponent_concentrates_top_cell(n, exponents):
    """Top-rank mass is monotone non-decreasing in the exponent."""
    ordered = sorted(exponents)
    tops = [zipf_weights(n, s)[0] for s in ordered]
    for lo, hi in zip(tops, tops[1:]):
        assert hi >= lo - 1e-12
    for s in ordered:
        w = zipf_weights(n, s)
        assert w.shape == (n,)
        assert np.isclose(w.sum(), 1.0)
        assert (w > 0.0).all()
        # ranks are sorted most-popular-first
        assert (np.diff(w) <= 1e-12).all()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000),
       flash_events=st.integers(2, 40),
       fraction=st.floats(0.0, 1.0, allow_nan=False))
def test_flash_crowd_conserves_event_count(seed, flash_events, fraction):
    cfg = CityLoadConfig(seed=seed, flash_events=flash_events,
                         flash_query_fraction=fraction, **_small)
    workload = build_city_workload(cfg)
    assert workload.phase_counts()["flash_crowd"] == flash_events
    # the split is queries + ingest only, and both sides are present
    kinds = {ev.kind for ev in workload.events
             if ev.phase == "flash_crowd"}
    assert kinds <= {"query", "ingest"}
    assert "query" in kinds and "ingest" in kinds


def test_zipf_weights_validates():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(4, -0.5)


def test_events_are_time_ordered_and_sequenced():
    workload = build_city_workload(CityLoadConfig(seed=3, **_small))
    times = [ev.time for ev in workload.events]
    assert times == sorted(times)
    assert [ev.seq for ev in workload.events] == list(range(len(times)))
    # kill strictly precedes promote
    kill = next(ev for ev in workload.events if ev.kind == "kill")
    promote = next(ev for ev in workload.events if ev.kind == "promote")
    assert kill.time < promote.time
    assert kill.shard_id == promote.shard_id == workload.failover_shard
