"""Tests for the discrete-event service simulation."""

import numpy as np
import pytest

from repro.sim.events import Event, EventQueue
from repro.sim.simulation import ServiceSimulation, SimulationConfig


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_stable_ties(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_drain_until(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0, 10.0):
            q.schedule(t, "e")
        drained = list(q.drain_until(3.0))
        assert len(drained) == 3
        assert len(q) == 1


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(n_providers=0)
        with pytest.raises(ValueError):
            SimulationConfig(query_rate_hz=-1.0)


SMALL = SimulationConfig(duration_s=1200.0, n_providers=6,
                         recordings_per_provider=1.5, query_rate_hz=0.02,
                         seed=3)


class TestServiceSimulation:
    @pytest.fixture(scope="class")
    def report(self):
        return ServiceSimulation(SMALL).run()

    def test_recordings_complete_and_index_grows(self, report):
        assert report.recordings_completed >= 4
        assert report.segments_indexed > 0
        assert report.descriptor_bytes > 0

    def test_index_timeline_monotone(self, report):
        sizes = [n for _, n in report.index_size_timeline]
        assert sizes == sorted(sizes)
        times = [t for t, _ in report.index_size_timeline]
        assert times == sorted(times)

    def test_queries_flow(self, report):
        assert report.queries_issued >= 5
        assert 0.0 <= report.answered_fraction <= 1.0
        assert len(report.query_latencies_ms) <= report.queries_issued
        if report.query_latencies_ms:
            assert report.latency_percentile(99) < 100.0

    def test_clock_errors_bounded_after_sync(self, report):
        # Boot-time SNTP under symmetric delay leaves sub-second error
        # even with drift over the hour.
        assert report.max_clock_error_s < 1.0

    def test_deterministic_with_seed(self):
        a = ServiceSimulation(SMALL).run()
        b = ServiceSimulation(SMALL).run()
        assert a.recordings_completed == b.recordings_completed
        assert a.segments_indexed == b.segments_indexed
        assert a.queries_issued == b.queries_issued
        assert a.queries_answered == b.queries_answered

    def test_queries_answerable_once_data_arrives(self):
        """With heavy provider activity most queries about visited spots
        are answerable."""
        cfg = SimulationConfig(duration_s=2400.0, n_providers=12,
                               recordings_per_provider=2.0,
                               query_rate_hz=0.02, seed=9)
        report = ServiceSimulation(cfg).run()
        assert report.answered_fraction > 0.3

    def test_no_queries_configured(self):
        cfg = SimulationConfig(duration_s=600.0, n_providers=3,
                               query_rate_hz=0.0, seed=1)
        report = ServiceSimulation(cfg).run()
        assert report.queries_issued == 0
        assert report.answered_fraction == 0.0
