"""Unit tests for STR bulk loading."""

import numpy as np
import pytest

from repro.spatial.bulk import _chunk_bounds, str_bulk_load
from repro.spatial.linear import LinearScanIndex
from repro.spatial.metrics import check_invariants, tree_stats
from repro.spatial.rtree import RTreeConfig


def random_boxes(rng, n, dim=3):
    mins = rng.uniform(0, 100, (n, dim))
    maxs = mins + rng.uniform(0, 3, (n, dim))
    return mins, maxs


class TestChunkBounds:
    def test_single_chunk(self):
        assert _chunk_bounds(5, 8, 4) == [(0, 5)]

    def test_exact_multiples(self):
        assert _chunk_bounds(16, 8, 4) == [(0, 8), (8, 16)]

    def test_underfull_tail_rebalanced(self):
        bounds = _chunk_bounds(17, 8, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 17
        assert all(s >= 4 for s in sizes)
        # Chunks must tile the range contiguously.
        assert bounds[0][0] == 0 and bounds[-1][1] == 17
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c


class TestStrBulkLoad:
    def test_empty(self):
        t = str_bulk_load(np.empty((0, 3)), np.empty((0, 3)), [])
        assert len(t) == 0

    def test_validates_inputs(self, rng):
        mins, maxs = random_boxes(rng, 10)
        with pytest.raises(ValueError):
            str_bulk_load(mins, maxs, list(range(9)))
        with pytest.raises(ValueError):
            str_bulk_load(maxs, mins, list(range(10)))  # inverted
        with pytest.raises(ValueError):
            str_bulk_load(mins, maxs, list(range(10)), dim=2)

    @pytest.mark.parametrize("n", [1, 7, 33, 200, 3000])
    def test_invariants_at_many_sizes(self, rng, n):
        mins, maxs = random_boxes(rng, n)
        t = str_bulk_load(mins, maxs, list(range(n)),
                          config=RTreeConfig(max_entries=8))
        assert len(t) == n
        check_invariants(t)

    def test_search_equals_linear(self, rng):
        mins, maxs = random_boxes(rng, 2000)
        t = str_bulk_load(mins, maxs, list(range(2000)))
        lin = LinearScanIndex(3)
        for i in range(2000):
            lin.insert(mins[i], maxs[i], i)
        for _ in range(25):
            q0 = rng.uniform(0, 100, 3)
            q1 = q0 + rng.uniform(0, 25, 3)
            assert sorted(t.search(q0, q1)) == sorted(lin.search(q0, q1))

    def test_packed_tree_fuller_than_incremental(self, rng):
        from repro.spatial.rtree import RTree
        mins, maxs = random_boxes(rng, 1000)
        cfg = RTreeConfig(max_entries=16)
        packed = str_bulk_load(mins, maxs, list(range(1000)), config=cfg)
        inc = RTree(3, cfg)
        for i in range(1000):
            inc.insert(mins[i], maxs[i], i)
        assert tree_stats(packed).avg_leaf_fill > tree_stats(inc).avg_leaf_fill

    def test_tree_remains_dynamic(self, rng):
        mins, maxs = random_boxes(rng, 100)
        t = str_bulk_load(mins, maxs, list(range(100)),
                          config=RTreeConfig(max_entries=8))
        t.insert([1.0, 1.0, 1.0], [2.0, 2.0, 2.0], "new")
        assert "new" in t.search([0, 0, 0], [3, 3, 3])
        assert t.delete(mins[0], maxs[0], 0)
        assert len(t) == 100
        check_invariants(t)
