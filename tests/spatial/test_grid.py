"""PackedPointGrid: boundary clamping and cross-path parity.

Regression anchor: the single-query paths (``search_ids`` and the
``search_rows`` latency path) used to clamp the *lower* cell-bin
indices only from below.  Records sitting exactly on an extent's upper
edge are clamped into the last bin at build time, so a closed-box
query touching exactly that edge mapped its lower bin one past the
last bin and scanned nothing -- while the batched ``search_many``
(which ``np.clip``s both ends) found the record.  The engine-parity
hypothesis suite caught this as a dynamic-vs-sharded ranking split.
"""

import numpy as np
import pytest

from repro.spatial.grid import PackedPointGrid


def build_grid(n=300, seed=7):
    """A grid big enough to get >1 bin per axis (n=300 -> 2x2x2)."""
    rng = np.random.default_rng(seed)
    lng = rng.uniform(116.0, 116.6, n)
    lat = rng.uniform(39.8, 40.2, n)
    t_start = rng.uniform(0.0, 3600.0, n)
    dur = rng.uniform(60.0, 600.0, n)
    theta = rng.uniform(0.0, 360.0, n)
    # Pin one record to every upper extent so edge-exact queries have
    # a guaranteed hit: max lng, max lat, max t_start with max duration.
    lng[0], lat[0] = lng.max(), lat.max()
    t_start[0], dur[0] = t_start.max(), dur.max()
    cols = (lng, lat, t_start, t_start + dur, theta)
    return PackedPointGrid.build(*cols), cols


def brute_ids(cols, bmin, bmax):
    lng, lat, t_start, t_end, _theta = cols
    hit = ((lng >= bmin[0]) & (lng <= bmax[0])
           & (lat >= bmin[1]) & (lat <= bmax[1])
           & (t_start <= bmax[2]) & (t_end >= bmin[2]))
    return sorted(np.flatnonzero(hit).tolist())


def all_paths(grid, bmin, bmax):
    """(search_ids, search_rows, search_many) hit sets, each sorted."""
    ids = sorted(grid.search_ids(bmin, bmax).tolist())
    rows = grid.search_rows(bmin, bmax, limit=10**9)
    assert rows is not None
    via_rows = sorted(int(r[7]) for r in rows)
    _qids, many = grid.search_many(np.array([bmin]), np.array([bmax]))
    via_many = sorted(many.tolist())
    return ids, via_rows, via_many


class TestUpperEdgeClamp:
    """Closed-box queries that touch an extent's upper edge exactly."""

    def test_time_edge_t1_plus_max_dur(self):
        grid, cols = build_grid()
        # Record 0 runs [t1, t1 + max_dur]; a query starting exactly at
        # its end instant still overlaps the closed interval.
        bmin = (grid.x0, grid.y0, grid.t1 + grid.max_dur)
        bmax = (grid.x1, grid.y1, grid.t1 + grid.max_dur + 600.0)
        want = brute_ids(cols, bmin, bmax)
        assert 0 in want
        ids, via_rows, via_many = all_paths(grid, bmin, bmax)
        assert ids == via_rows == via_many == want

    def test_lng_edge(self):
        grid, cols = build_grid()
        bmin = (grid.x1, grid.y0, 0.0)
        bmax = (grid.x1 + 1.0, grid.y1, 1e6)
        want = brute_ids(cols, bmin, bmax)
        assert 0 in want
        ids, via_rows, via_many = all_paths(grid, bmin, bmax)
        assert ids == via_rows == via_many == want

    def test_lat_edge(self):
        grid, cols = build_grid()
        bmin = (grid.x0, grid.y1, 0.0)
        bmax = (grid.x1, grid.y1 + 1.0, 1e6)
        want = brute_ids(cols, bmin, bmax)
        assert 0 in want
        ids, via_rows, via_many = all_paths(grid, bmin, bmax)
        assert ids == via_rows == via_many == want

    def test_single_slice_grid(self):
        """The falsifying shape: everything in one cell, boundary query.

        12 co-located records collapse the grid to 1x1x1; the record
        ending at t=4200 must match a query starting at t=4200.
        """
        n = 12
        lng = np.full(n, 116.3)
        lat = np.full(n, 40.0)
        t_start = np.array([3600.0] + [0.0] * (n - 1))
        t_end = np.array([4200.0] + [300.0] * (n - 1))
        grid = PackedPointGrid.build(lng, lat, t_start, t_end,
                                     np.zeros(n))
        bmin = (116.29, 39.99, 4200.0)
        bmax = (116.31, 40.01, 4800.0)
        ids, via_rows, via_many = all_paths(grid, bmin, bmax)
        assert ids == via_rows == via_many == [0]


class TestRandomBoxParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_paths_match_brute_force(self, seed):
        grid, cols = build_grid(seed=100 + seed)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            c = (rng.uniform(116.0, 116.6), rng.uniform(39.8, 40.2),
                 rng.uniform(0.0, 4200.0))
            half = (rng.uniform(0.0, 0.3), rng.uniform(0.0, 0.2),
                    rng.uniform(0.0, 1800.0))
            bmin = tuple(c[i] - half[i] for i in range(3))
            bmax = tuple(c[i] + half[i] for i in range(3))
            want = brute_ids(cols, bmin, bmax)
            ids, via_rows, via_many = all_paths(grid, bmin, bmax)
            assert ids == via_rows == via_many == want
