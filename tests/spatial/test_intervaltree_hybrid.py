"""Unit tests for the interval tree and the alternative index designs."""

import numpy as np
import pytest

from repro.core.index import FoVIndex
from repro.core.query import Query
from repro.spatial.hybrid import SpatialFirstIndex, TemporalFirstIndex
from repro.spatial.intervaltree import IntervalTree
from repro.traces.dataset import random_representative_fovs
from repro.traces.scenarios import CITY_ORIGIN


def brute_overlap(rows, lo, hi):
    return sorted(item for a, b, item in rows if b >= lo and a <= hi)


class TestIntervalTree:
    def test_empty(self):
        t = IntervalTree([])
        assert len(t) == 0
        assert t.overlapping(0.0, 1.0) == []
        assert t.stab(0.5) == []

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalTree([(2.0, 1.0, "x")])
        t = IntervalTree([(0.0, 1.0, "a")])
        with pytest.raises(ValueError):
            t.overlapping(5.0, 4.0)

    def test_stab_basics(self):
        t = IntervalTree([(0, 10, "a"), (5, 15, "b"), (20, 30, "c")])
        assert sorted(t.stab(7.0)) == ["a", "b"]
        assert t.stab(25.0) == ["c"]
        assert t.stab(17.0) == []
        # Closed intervals: endpoints stab.
        assert "a" in t.stab(10.0)
        assert "c" in t.stab(20.0)

    def test_overlap_touching_counts(self):
        t = IntervalTree([(0, 10, "a")])
        assert t.overlapping(10.0, 20.0) == ["a"]
        assert t.overlapping(-5.0, 0.0) == ["a"]

    def test_matches_brute_force(self, rng):
        rows = []
        for i in range(500):
            lo = float(rng.uniform(0, 1000))
            rows.append((lo, lo + float(rng.uniform(0, 50)), i))
        t = IntervalTree(rows)
        for _ in range(50):
            lo = float(rng.uniform(-20, 1050))
            hi = lo + float(rng.uniform(0, 100))
            assert sorted(t.overlapping(lo, hi)) == brute_overlap(rows, lo, hi)

    def test_stab_matches_overlap_point(self, rng):
        rows = [(float(a), float(a) + float(b), i)
                for i, (a, b) in enumerate(rng.uniform(0, 100, (200, 2)))]
        t = IntervalTree(rows)
        for _ in range(30):
            p = float(rng.uniform(-10, 220))
            assert sorted(t.stab(p)) == sorted(t.overlapping(p, p))

    def test_identical_intervals(self):
        t = IntervalTree([(0, 10, i) for i in range(50)])
        assert sorted(t.overlapping(5, 6)) == list(range(50))


class TestHybridDesigns:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        reps = random_representative_fovs(800, rng)
        paper = FoVIndex()
        paper.insert_many(reps)
        return reps, paper, SpatialFirstIndex(reps), TemporalFirstIndex(reps)

    def test_all_designs_agree(self, setup, rng):
        reps, paper, spatial, temporal = setup
        for _ in range(25):
            anchor = reps[int(rng.integers(len(reps)))]
            q = Query(t_start=max(0.0, anchor.t_start - 400.0),
                      t_end=anchor.t_end + 400.0, center=anchor.point,
                      radius=float(rng.uniform(50.0, 1000.0)))
            want = sorted(f.key() for f in paper.range_search(q))
            assert sorted(f.key() for f in spatial.range_search(q)) == want
            assert sorted(f.key() for f in temporal.range_search(q)) == want

    def test_sizes(self, setup):
        reps, paper, spatial, temporal = setup
        assert len(spatial) == len(temporal) == len(reps)

    def test_empty_results(self, setup):
        _, _, spatial, temporal = setup
        q = Query(t_start=1e9, t_end=2e9, center=CITY_ORIGIN, radius=10.0)
        assert spatial.range_search(q) == []
        assert temporal.range_search(q) == []
