"""Unit and randomized tests for branch-and-bound k-NN search."""

import numpy as np
import pytest

from repro.spatial.knn import knn_search, mindist
from repro.spatial.rtree import RTree, RTreeConfig


def brute_force(tree, point, k, weights=None):
    w = np.ones(tree.dim) if weights is None else np.asarray(weights)
    p = np.asarray(point, dtype=float)
    rows = []
    for bmin, bmax, item in tree.items():
        d = float(mindist(p, bmin[None, :], bmax[None, :], w)[0])
        rows.append((d, item))
    rows.sort(key=lambda r: r[0])
    return rows[:k]


class TestMindist:
    def test_inside_is_zero(self):
        d = mindist(np.array([1.0, 1.0]), np.array([[0.0, 0.0]]),
                    np.array([[2.0, 2.0]]), np.ones(2))
        assert d[0] == 0.0

    def test_outside_axis(self):
        d = mindist(np.array([5.0, 1.0]), np.array([[0.0, 0.0]]),
                    np.array([[2.0, 2.0]]), np.ones(2))
        assert d[0] == pytest.approx(3.0)

    def test_corner(self):
        d = mindist(np.array([5.0, 6.0]), np.array([[0.0, 0.0]]),
                    np.array([[2.0, 2.0]]), np.ones(2))
        assert d[0] == pytest.approx(5.0)

    def test_weights_scale(self):
        d = mindist(np.array([4.0, 0.0]), np.array([[0.0, 0.0]]),
                    np.array([[2.0, 2.0]]), np.array([10.0, 1.0]))
        assert d[0] == pytest.approx(20.0)


class TestKnnSearch:
    def test_empty_tree(self):
        assert knn_search(RTree(2), [0, 0], 3) == []

    def test_k_validated(self):
        with pytest.raises(ValueError):
            knn_search(RTree(2), [0, 0], 0)

    def test_point_dim_validated(self):
        with pytest.raises(ValueError):
            knn_search(RTree(2), [0, 0, 0], 1)

    def test_weights_validated(self):
        t = RTree(2)
        t.insert([0, 0], [1, 1], "a")
        with pytest.raises(ValueError):
            knn_search(t, [0, 0], 1, weights=[-1.0, 1.0])
        with pytest.raises(ValueError):
            knn_search(t, [0, 0], 1, weights=[1.0])

    def test_single_item(self):
        t = RTree(2)
        t.insert([3, 4], [3, 4], "a")
        out = knn_search(t, [0, 0], 1)
        assert out == [(5.0, "a")]

    def test_exact_ordering_small(self):
        t = RTree(1, RTreeConfig(max_entries=4))
        for x in (10.0, 3.0, 7.0, 1.0, 20.0):
            t.insert([x], [x], x)
        out = knn_search(t, [0.0], 3)
        assert [item for _, item in out] == [1.0, 3.0, 7.0]
        assert [d for d, _ in out] == [1.0, 3.0, 7.0]

    def test_k_larger_than_tree(self):
        t = RTree(1)
        t.insert([1.0], [1.0], "a")
        t.insert([2.0], [2.0], "b")
        out = knn_search(t, [0.0], 10)
        assert len(out) == 2

    def test_inside_box_distance_zero(self):
        t = RTree(2)
        t.insert([0, 0], [10, 10], "big")
        out = knn_search(t, [5, 5], 1)
        assert out[0][0] == 0.0

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_matches_brute_force_points(self, rng, dim):
        t = RTree(dim, RTreeConfig(max_entries=8))
        pts = rng.uniform(0, 100, (500, dim))
        for i, p in enumerate(pts):
            t.insert(p, p, i)
        for _ in range(15):
            q = rng.uniform(0, 100, dim)
            k = int(rng.integers(1, 20))
            got = knn_search(t, q, k)
            want = brute_force(t, q, k)
            assert [round(d, 9) for d, _ in got] == \
                [round(d, 9) for d, _ in want]

    def test_matches_brute_force_boxes_weighted(self, rng):
        t = RTree(3, RTreeConfig(max_entries=8))
        mins = rng.uniform(0, 100, (400, 3))
        maxs = mins + rng.uniform(0, 5, (400, 3))
        for i in range(400):
            t.insert(mins[i], maxs[i], i)
        w = np.array([2.0, 0.5, 10.0])
        for _ in range(10):
            q = rng.uniform(0, 100, 3)
            got = knn_search(t, q, 8, weights=w)
            want = brute_force(t, q, 8, weights=w)
            assert [round(d, 9) for d, _ in got] == \
                [round(d, 9) for d, _ in want]

    def test_zero_weight_dimension_ignored(self, rng):
        t = RTree(2, RTreeConfig(max_entries=8))
        for i in range(50):
            t.insert([float(i), float(1000 * i)], [float(i), float(1000 * i)], i)
        out = knn_search(t, [10.0, 0.0], 3, weights=[1.0, 0.0])
        assert out[0][1] == 10
        assert {item for _, item in out[1:]} == {9, 11}  # tie order free


class TestFoVIndexNearest:
    def test_matches_bruteforce(self, rng):
        from repro.core.index import FoVIndex
        from repro.traces.dataset import random_representative_fovs
        from repro.geo.coords import GeoPoint
        reps = random_representative_fovs(300, rng)
        idx = FoVIndex()
        idx.insert_many(reps)
        center = GeoPoint(40.02, 116.34)
        for tw in (0.0, 1.0):
            got = idx.nearest(center, t=40_000.0, k=7, time_weight_m_per_s=tw)
            want = idx.nearest_bruteforce(center, t=40_000.0, k=7,
                                          time_weight_m_per_s=tw)
            assert [r.key() for _, r in got] == [r.key() for _, r in want]

    def test_linear_backend_rejected(self):
        from repro.core.index import FoVIndex
        from repro.geo.coords import GeoPoint
        idx = FoVIndex(backend="linear")
        with pytest.raises(TypeError):
            idx.nearest(GeoPoint(40.0, 116.0), t=0.0)
