"""Unit tests for the linear-scan baseline index."""

import numpy as np
import pytest

from repro.spatial.linear import LinearScanIndex


class TestLinearScanIndex:
    def test_empty(self):
        idx = LinearScanIndex(2)
        assert len(idx) == 0
        assert idx.search([0, 0], [1, 1]) == []
        assert idx.count_intersecting([0, 0], [1, 1]) == 0

    def test_insert_search(self):
        idx = LinearScanIndex(2)
        idx.insert([0, 0], [1, 1], "a")
        idx.insert([5, 5], [6, 6], "b")
        assert idx.search([0.5, 0.5], [5.5, 5.5]) == ["a", "b"]
        assert idx.search([2, 2], [3, 3]) == []

    def test_growth_beyond_initial_capacity(self, rng):
        idx = LinearScanIndex(3, initial_capacity=4)
        mins = rng.uniform(0, 10, (500, 3))
        for i in range(500):
            idx.insert(mins[i], mins[i] + 1, i)
        assert len(idx) == 500
        assert idx.count_intersecting([0, 0, 0], [11, 11, 11]) == 500

    def test_touching_boxes_intersect(self):
        idx = LinearScanIndex(1)
        idx.insert([0.0], [1.0], "a")
        assert idx.search([1.0], [2.0]) == ["a"]

    def test_delete(self):
        idx = LinearScanIndex(2)
        idx.insert([0, 0], [1, 1], "a")
        idx.insert([0, 0], [1, 1], "b")
        assert idx.delete([0, 0], [1, 1], "a")
        assert len(idx) == 1
        assert idx.search([0, 0], [1, 1]) == ["b"]
        assert not idx.delete([0, 0], [1, 1], "a")

    def test_delete_requires_matching_box(self):
        idx = LinearScanIndex(2)
        idx.insert([0, 0], [1, 1], "a")
        assert not idx.delete([0, 0], [2, 2], "a")

    def test_items(self):
        idx = LinearScanIndex(2)
        idx.insert([0, 0], [1, 1], "a")
        rows = list(idx.items())
        assert len(rows) == 1
        assert rows[0][2] == "a"

    def test_dimension_validation(self):
        idx = LinearScanIndex(2)
        with pytest.raises(ValueError):
            idx.insert([0], [1], "x")
        with pytest.raises(ValueError):
            idx.search([0], [1])
        with pytest.raises(ValueError):
            LinearScanIndex(0)
