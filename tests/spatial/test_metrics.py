"""Unit tests for tree statistics and invariant checking."""

import numpy as np
import pytest

from repro.spatial.metrics import check_invariants, tree_stats
from repro.spatial.rtree import RTree, RTreeConfig


def build_tree(rng, n=500, cap=8):
    t = RTree(2, RTreeConfig(max_entries=cap))
    mins = rng.uniform(0, 100, (n, 2))
    for i in range(n):
        t.insert(mins[i], mins[i] + 1.0, i)
    return t


class TestTreeStats:
    def test_counts_consistent(self, rng):
        t = build_tree(rng)
        s = tree_stats(t)
        assert s.size == 500
        assert s.height == t.height
        assert s.leaf_count <= s.node_count
        assert 0 < s.avg_leaf_fill <= 8

    def test_single_leaf_root(self):
        t = RTree(2)
        t.insert([0, 0], [1, 1], "a")
        s = tree_stats(t)
        assert s.node_count == s.leaf_count == 1
        assert s.avg_internal_fill == 0.0

    def test_overlap_zero_for_disjoint_leaves(self):
        # A 1-D tree over well-separated points: sibling leaf MBRs along
        # a line packed by STR have no overlapping volume.
        from repro.spatial.bulk import str_bulk_load
        xs = np.arange(100, dtype=float).reshape(-1, 1)
        t = str_bulk_load(xs, xs, list(range(100)),
                          config=RTreeConfig(max_entries=8))
        assert tree_stats(t).total_leaf_overlap == pytest.approx(0.0)


class TestCheckInvariants:
    def test_passes_on_valid_tree(self, rng):
        check_invariants(build_tree(rng))

    def test_detects_corrupted_mbr(self, rng):
        t = build_tree(rng)
        node = t.root
        assert not node.leaf
        node.mins[0] = node.mins[0] + 50.0  # corrupt an internal entry box
        with pytest.raises(AssertionError):
            check_invariants(t)

    def test_detects_size_mismatch(self, rng):
        t = build_tree(rng)
        t._size += 1
        with pytest.raises(AssertionError):
            check_invariants(t)
