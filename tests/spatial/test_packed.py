"""Unit tests for the packed (SoA) R-tree snapshot."""

import numpy as np
import pytest

from repro.spatial.bulk import str_bulk_load
from repro.spatial.packed import PackedLevel, PackedRTree, _expand_ranges
from repro.spatial.rtree import RTree, RTreeConfig


def random_boxes(rng, n, dim=3, extent=100.0, size=3.0):
    mins = rng.uniform(0, extent, (n, dim))
    maxs = mins + rng.uniform(0, size, (n, dim))
    return mins, maxs


def insert_built(rng, n, dim=3):
    mins, maxs = random_boxes(rng, n, dim=dim)
    tree = RTree(dim, RTreeConfig(max_entries=8))
    for i in range(n):
        tree.insert(mins[i], maxs[i], i)
    return tree


class TestExpandRanges:
    def test_matches_naive(self, rng):
        starts = rng.integers(0, 50, 20)
        counts = rng.integers(0, 6, 20)
        want = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
        ) if counts.sum() else np.empty(0, dtype=np.intp)
        got = _expand_ranges(starts.astype(np.intp), counts.astype(np.intp))
        assert np.array_equal(got, want)

    def test_empty(self):
        assert _expand_ranges(np.empty(0, dtype=np.intp),
                              np.empty(0, dtype=np.intp)).size == 0


class TestConstruction:
    def test_empty_tree(self):
        packed = PackedRTree.from_rtree(RTree(3))
        assert len(packed) == 0
        assert packed.height == 1
        assert packed.search_ids([0, 0, 0], [1, 1, 1]).size == 0
        assert packed.search([0, 0, 0], [1, 1, 1]) == []

    def test_single_item(self):
        tree = RTree(2)
        tree.insert([0, 0], [1, 1], "a")
        packed = PackedRTree.from_rtree(tree)
        assert len(packed) == 1
        assert packed.search([0.5, 0.5], [2, 2]) == ["a"]
        assert packed.search([2, 2], [3, 3]) == []

    def test_level_offsets_partition_entries(self, rng):
        packed = PackedRTree.from_rtree(insert_built(rng, 500))
        for lvl in packed.levels:
            assert lvl.offsets[0] == 0
            assert lvl.offsets[-1] == lvl.n_entries
            assert np.all(np.diff(lvl.offsets) >= 0)
        # Level l's entries are level l+1's nodes (implicit child map).
        for parent, child in zip(packed.levels, packed.levels[1:]):
            assert parent.n_entries == child.n_nodes
        assert packed.levels[-1].n_entries == len(packed)

    def test_rejects_mismatched_items(self):
        level = PackedLevel(mins=np.zeros((2, 2)), maxs=np.ones((2, 2)),
                            offsets=np.array([0, 2]))
        with pytest.raises(ValueError):
            PackedRTree(2, [level], items=["only-one"])

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            PackedRTree(0, [], items=[])


class TestSearchParity:
    def test_matches_dynamic_insert_built(self, rng):
        tree = insert_built(rng, 1200)
        packed = PackedRTree.from_rtree(tree)
        assert len(packed) == len(tree)
        for _ in range(40):
            q0 = rng.uniform(0, 100, 3)
            q1 = q0 + rng.uniform(0, 30, 3)
            assert sorted(packed.search(q0, q1)) == sorted(tree.search(q0, q1))
            assert packed.count_intersecting(q0, q1) == \
                tree.count_intersecting(q0, q1)

    def test_matches_dynamic_bulk_loaded(self, rng):
        mins, maxs = random_boxes(rng, 1500)
        tree = str_bulk_load(mins, maxs, list(range(1500)), dim=3)
        packed = PackedRTree.from_rtree(tree)
        for _ in range(40):
            q0 = rng.uniform(0, 100, 3)
            q1 = q0 + rng.uniform(0, 30, 3)
            assert sorted(packed.search(q0, q1)) == sorted(tree.search(q0, q1))

    def test_point_boxes(self):
        tree = RTree(3)
        tree.insert([1, 2, 3], [1, 2, 3], "pt")
        packed = PackedRTree.from_rtree(tree)
        assert packed.search([1, 2, 3], [1, 2, 3]) == ["pt"]
        assert packed.search([0, 0, 0], [0.9, 5, 5]) == []

    def test_box_validation(self, rng):
        packed = PackedRTree.from_rtree(insert_built(rng, 10))
        with pytest.raises(ValueError):
            packed.search_ids([0, 0], [1, 1])           # wrong dimension
        with pytest.raises(ValueError):
            packed.search_ids([1, 1, 1], [0, 0, 0])     # inverted box


class TestSearchMany:
    def test_matches_per_query_search_ids(self, rng):
        packed = PackedRTree.from_rtree(insert_built(rng, 800))
        q0 = rng.uniform(0, 100, (25, 3))
        q1 = q0 + rng.uniform(0, 30, (25, 3))
        qids, rows = packed.search_many(q0, q1)
        assert np.all(np.diff(qids) >= 0), "query ids must come back sorted"
        bounds = np.searchsorted(qids, np.arange(26))
        for qi in range(25):
            got = rows[bounds[qi]: bounds[qi + 1]]
            want = packed.search_ids(q0[qi], q1[qi])
            assert sorted(got.tolist()) == sorted(want.tolist())

    def test_empty_batch_frontier(self, rng):
        packed = PackedRTree.from_rtree(insert_built(rng, 100))
        # Boxes far outside the data extent: every frontier dies at root.
        q0 = np.full((4, 3), 1e6)
        qids, rows = packed.search_many(q0, q0 + 1.0)
        assert qids.size == 0 and rows.size == 0

    def test_shape_validation(self, rng):
        packed = PackedRTree.from_rtree(insert_built(rng, 10))
        with pytest.raises(ValueError):
            packed.search_many(np.zeros((3, 2)), np.ones((3, 2)))
        with pytest.raises(ValueError):
            packed.search_many(np.ones((3, 3)), np.zeros((3, 3)))
