"""Unit tests for the from-scratch Guttman R-tree."""

import numpy as np
import pytest

from repro.spatial.linear import LinearScanIndex
from repro.spatial.metrics import check_invariants
from repro.spatial.rtree import RTree, RTreeConfig


def random_boxes(rng, n, dim=3, extent=100.0, size=3.0):
    mins = rng.uniform(0, extent, (n, dim))
    maxs = mins + rng.uniform(0, size, (n, dim))
    return mins, maxs


def fill(tree, mins, maxs):
    for i in range(mins.shape[0]):
        tree.insert(mins[i], maxs[i], i)


class TestConfig:
    def test_defaults(self):
        cfg = RTreeConfig()
        assert cfg.resolved_min() == max(2, int(np.ceil(0.4 * cfg.max_entries)))

    def test_rejects_small_capacity(self):
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=3)

    def test_rejects_bad_min(self):
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=8, min_entries=5)
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=8, min_entries=1)

    def test_rejects_unknown_split(self):
        with pytest.raises(ValueError):
            RTreeConfig(split="r-star")


class TestInsertSearch:
    def test_empty_tree(self):
        t = RTree(2)
        assert len(t) == 0
        assert t.height == 1
        assert t.bounds() is None
        assert t.search([0, 0], [1, 1]) == []

    def test_single_item(self):
        t = RTree(2)
        t.insert([0, 0], [1, 1], "a")
        assert len(t) == 1
        assert t.search([0.5, 0.5], [2, 2]) == ["a"]
        assert t.search([2, 2], [3, 3]) == []

    def test_point_boxes(self):
        t = RTree(3)
        t.insert([1, 2, 3], [1, 2, 3], "pt")
        assert t.search([1, 2, 3], [1, 2, 3]) == ["pt"]
        assert t.search([0, 0, 0], [0.9, 5, 5]) == []

    def test_dimension_checked(self):
        t = RTree(3)
        with pytest.raises(ValueError):
            t.insert([0, 0], [1, 1], "x")

    def test_inverted_box_rejected(self):
        t = RTree(2)
        with pytest.raises(ValueError):
            t.insert([1, 1], [0, 0], "x")

    def test_nonfinite_rejected(self):
        t = RTree(2)
        with pytest.raises(ValueError):
            t.insert([0, np.nan], [1, 1], "x")
        with pytest.raises(ValueError):
            t.insert([0, 0], [np.inf, 1], "x")

    @pytest.mark.parametrize("split", ["quadratic", "linear", "rstar"])
    def test_matches_linear_scan(self, rng, split):
        mins, maxs = random_boxes(rng, 1500)
        tree = RTree(3, RTreeConfig(max_entries=16, split=split))
        lin = LinearScanIndex(3)
        for i in range(1500):
            tree.insert(mins[i], maxs[i], i)
            lin.insert(mins[i], maxs[i], i)
        check_invariants(tree)
        for _ in range(30):
            q0 = rng.uniform(0, 100, 3)
            q1 = q0 + rng.uniform(0, 30, 3)
            assert sorted(tree.search(q0, q1)) == sorted(lin.search(q0, q1))
            assert tree.count_intersecting(q0, q1) == lin.count_intersecting(q0, q1)

    def test_duplicates_supported(self):
        t = RTree(2, RTreeConfig(max_entries=4))
        for i in range(50):
            t.insert([1, 1], [2, 2], i)
        assert sorted(t.search([0, 0], [3, 3])) == list(range(50))
        check_invariants(t)

    def test_height_grows_logarithmically(self, rng):
        mins, maxs = random_boxes(rng, 2000, dim=2)
        t = RTree(2, RTreeConfig(max_entries=8))
        fill(t, mins, maxs)
        # 8-ary tree with >= 40% fill: height comfortably below 8.
        assert 3 <= t.height <= 8

    def test_items_iteration(self, rng):
        mins, maxs = random_boxes(rng, 100)
        t = RTree(3)
        fill(t, mins, maxs)
        got = sorted(item for _, _, item in t.items())
        assert got == list(range(100))

    def test_search_boxes_returns_stored_geometry(self):
        t = RTree(2)
        t.insert([1, 2], [3, 4], "a")
        hits = t.search_boxes([0, 0], [10, 10])
        assert len(hits) == 1
        bmin, bmax, item = hits[0]
        assert item == "a"
        assert np.allclose(bmin, [1, 2]) and np.allclose(bmax, [3, 4])

    def test_bounds_cover_everything(self, rng):
        mins, maxs = random_boxes(rng, 300)
        t = RTree(3)
        fill(t, mins, maxs)
        bmin, bmax = t.bounds()
        assert np.all(bmin <= mins.min(axis=0) + 1e-12)
        assert np.all(bmax >= maxs.max(axis=0) - 1e-12)


class TestDelete:
    def test_delete_existing(self, rng):
        mins, maxs = random_boxes(rng, 200)
        t = RTree(3, RTreeConfig(max_entries=8))
        fill(t, mins, maxs)
        for i in range(0, 200, 2):
            assert t.delete(mins[i], maxs[i], i)
        assert len(t) == 100
        check_invariants(t)
        remaining = sorted(item for _, _, item in t.items())
        assert remaining == list(range(1, 200, 2))

    def test_delete_missing_returns_false(self):
        t = RTree(2)
        t.insert([0, 0], [1, 1], "a")
        assert not t.delete([0, 0], [1, 1], "b")         # wrong item
        assert not t.delete([0, 0], [2, 2], "a")         # wrong box
        assert len(t) == 1

    def test_delete_everything(self, rng):
        mins, maxs = random_boxes(rng, 300, dim=2)
        t = RTree(2, RTreeConfig(max_entries=8))
        fill(t, mins, maxs)
        order = rng.permutation(300)
        for i in order:
            assert t.delete(mins[i], maxs[i], int(i))
        assert len(t) == 0
        assert t.height == 1
        assert t.search([0, 0], [200, 200]) == []

    def test_search_correct_after_heavy_churn(self, rng):
        """Interleaved inserts and deletes keep queries exact."""
        t = RTree(2, RTreeConfig(max_entries=8))
        lin = LinearScanIndex(2)
        alive = {}
        next_id = 0
        for round_ in range(30):
            for _ in range(40):
                m = rng.uniform(0, 100, 2)
                x = m + rng.uniform(0, 5, 2)
                t.insert(m, x, next_id)
                lin.insert(m, x, next_id)
                alive[next_id] = (m, x)
                next_id += 1
            victims = rng.choice(list(alive), size=15, replace=False)
            for v in victims:
                m, x = alive.pop(int(v))
                assert t.delete(m, x, int(v))
                assert lin.delete(m, x, int(v))
            q0 = rng.uniform(0, 100, 2)
            q1 = q0 + rng.uniform(5, 40, 2)
            assert sorted(t.search(q0, q1)) == sorted(lin.search(q0, q1))
        check_invariants(t)

    def test_root_collapse(self):
        # Fill enough to grow height, then delete down to a leaf root.
        t = RTree(1, RTreeConfig(max_entries=4))
        for i in range(40):
            t.insert([float(i)], [float(i)], i)
        assert t.height > 1
        for i in range(39):
            assert t.delete([float(i)], [float(i)], i)
        assert len(t) == 1
        assert t.search([39.0], [39.0]) == [39]
        check_invariants(t)
