"""Unit tests for the linear and quadratic split strategies."""

import numpy as np
import pytest

from repro.spatial.split import linear_split, quadratic_split, rstar_split

SPLITS = [quadratic_split, linear_split, rstar_split]


def random_entries(rng, n, dim=3):
    mins = rng.uniform(0, 50, (n, dim))
    maxs = mins + rng.uniform(0, 5, (n, dim))
    return mins, maxs


@pytest.mark.parametrize("split", SPLITS)
class TestSplitContracts:
    def test_partition_exhaustive_and_disjoint(self, split, rng):
        mins, maxs = random_entries(rng, 17)
        g1, g2 = split(mins, maxs, min_entries=4)
        union = np.sort(np.concatenate([g1, g2]))
        assert np.array_equal(union, np.arange(17))

    def test_minimum_fill_respected(self, split, rng):
        for _ in range(20):
            n = int(rng.integers(8, 33))
            mins, maxs = random_entries(rng, n)
            g1, g2 = split(mins, maxs, min_entries=4)
            assert len(g1) >= 4 and len(g2) >= 4

    def test_too_few_entries_rejected(self, split, rng):
        mins, maxs = random_entries(rng, 5)
        with pytest.raises(ValueError):
            split(mins, maxs, min_entries=3)

    def test_identical_boxes_still_split(self, split):
        mins = np.zeros((10, 2))
        maxs = np.ones((10, 2))
        g1, g2 = split(mins, maxs, min_entries=4)
        assert len(g1) + len(g2) == 10
        assert len(g1) >= 4 and len(g2) >= 4

    def test_two_obvious_clusters_separated(self, split, rng):
        # Two tight clusters far apart must not be mixed.
        a = rng.uniform(0, 1, (6, 2))
        b = rng.uniform(100, 101, (6, 2))
        mins = np.vstack([a, b])
        maxs = mins + 0.1
        g1, g2 = split(mins, maxs, min_entries=4)
        sets = [set(g1.tolist()), set(g2.tolist())]
        assert set(range(6)) in sets
        assert set(range(6, 12)) in sets


class TestQuadraticSeeds:
    def test_most_wasteful_pair_separated(self):
        # Entries 0 and 3 are the extreme corners; QS must seed with them.
        mins = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [50.0, 50.0]])
        maxs = mins + 1.0
        g1, g2 = quadratic_split(mins, maxs, min_entries=2)
        in_g1 = 0 in g1
        assert (3 in g2) == in_g1  # 0 and 3 land in different groups
