"""The advisory benchmark differ (``tools/analysis/bench_diff.py``).

The differ infers the good direction for each metric from the naming
convention the exports follow; these tests pin that inference --
especially the rate suffixes (``_mb_s``, ``_bundles_s``) whose
trailing ``_s`` must *not* be read as a duration -- and the advisory
exit contract (0 even with regressions).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_diff", REPO / "tools" / "analysis" / "bench_diff.py")
assert _spec is not None and _spec.loader is not None
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


def _keys(rows):
    return [row[0] for row in rows]


class TestClassifyKey:
    """Table-driven classification over the *real* exported key names.

    Every row here appears verbatim in a committed ``BENCH_*.json``;
    the table is the contract that unsuffixed counters and string
    stamps are skipped and that the rate suffixes out-rank the generic
    ``_s`` duration rule by suffix length, not by check order.
    """

    TABLE = [
        # durations: lower is better
        ("ingest_clean_s", "lower"),
        ("ingest_faulty_s", "lower"),
        ("batch_s", "lower"),
        # speedups: higher is better
        ("batched_speedup_x", "higher"),
        ("wal_overhead_x", "higher"),
        # rates: higher is better despite the trailing "_s"
        ("decode_v2_mb_s", "higher"),
        ("ingest_clean_bundles_s", "higher"),
        ("ingest_batched_bundles_s", "higher"),
        ("wal_ingest_batched_bundles_s", "higher"),
        # latency percentiles (BENCH_city_scale.json): lower is better
        ("hotspot_query_p50", "lower"),
        ("flash_crowd_query_p99", "lower"),
        ("cache_adversarial_query_p999", "lower"),
        ("failover_query_p999", "lower"),
        ("hotspot_ingest_p99", "lower"),
        ("hotspot_video_p50", "lower"),
        # unsuffixed counters: informational, never diffed
        ("faulty_retries", None),
        ("bundles", None),
        ("records", None),
        ("corrupt_copies_quarantined", None),
        ("backpressure_shed", None),
        ("wal_syncs", None),
        # string stamps: informational (and non-numeric anyway)
        ("engine", None),
        ("bench", None),
        ("snapshot_schema_version", None),
    ]

    def test_table(self):
        for key, want in self.TABLE:
            rule = bench_diff.classify_key(key)
            got = rule[0] if rule is not None else None
            assert got == want, f"{key}: {got!r} != {want!r}"

    def test_rate_beats_duration_regardless_of_table_order(self):
        # Longest-suffix precedence must hold even if SUFFIX_RULES is
        # reordered so "_s" is checked last-inserted.
        original = bench_diff.SUFFIX_RULES
        reordered = dict(reversed(list(original.items())))
        bench_diff.SUFFIX_RULES = reordered
        try:
            assert bench_diff.classify_key(
                "ingest_batched_bundles_s")[0] == "higher"
            assert bench_diff.classify_key("decode_v2_mb_s")[0] == "higher"
            assert bench_diff.classify_key("batch_s")[0] == "lower"
        finally:
            bench_diff.SUFFIX_RULES = original

    def test_labels_match_directions(self):
        assert bench_diff.classify_key("batch_s")[1] == "slower"
        assert bench_diff.classify_key("speedup_x")[1] == "less speedup"
        assert bench_diff.classify_key(
            "decode_mb_s")[1] == "lower throughput"

    def test_p999_is_not_misread_as_p99(self):
        # "x_p999".endswith("_p99") is False, so the two rules cannot
        # collide; pin the labels so a rename is a conscious change.
        assert bench_diff.classify_key("q_p999")[1] == "slower (p999)"
        assert bench_diff.classify_key("q_p99")[1] == "slower (p99)"
        assert bench_diff.classify_key("q_p50")[1] == "slower (p50)"


class TestDirections:
    def test_duration_regression_is_slower(self):
        rows = bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 1.5}, 0.20)
        assert _keys(rows) == ["batch_s"]
        assert rows[0][3] == 0.5

    def test_duration_improvement_is_quiet(self):
        assert bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 0.5}, 0.20) == []

    def test_speedup_regression_is_less_speedup(self):
        rows = bench_diff.regressions(
            {"speedup_x": 10.0}, {"speedup_x": 5.0}, 0.20)
        assert _keys(rows) == ["speedup_x"]

    def test_rate_suffixes_are_higher_is_better(self):
        # 9.9 -> 13.2 MB/s is an *improvement*; the trailing "_s" must
        # not flag it as a 33% slowdown.
        old = {"decode_mb_s": 9.9, "ingest_bundles_s": 150.0}
        new = {"decode_mb_s": 13.2, "ingest_bundles_s": 200.0}
        assert bench_diff.regressions(old, new, 0.20) == []
        # ...and a real throughput drop is flagged.
        rows = bench_diff.regressions(new, old, 0.20)
        assert _keys(rows) == ["decode_mb_s", "ingest_bundles_s"]

    def test_informational_keys_never_warn(self):
        old = {"records": 100, "engine": "packed",
               "snapshot_schema_version": 1}
        new = {"records": 999, "engine": "dynamic",
               "snapshot_schema_version": 2}
        assert bench_diff.regressions(old, new, 0.20) == []

    def test_realistic_summary_mixed_keys(self):
        # A down-scaled BENCH_ingest_path.json: the counters swing
        # wildly (workload shape changed) and must stay silent; only
        # the genuine perf regressions surface.
        old = {"bench": "ingest_path", "bundles": 400,
               "faulty_retries": 12, "corrupt_copies_quarantined": 3,
               "backpressure_shed": 0, "wal_syncs": 2,
               "ingest_clean_s": 1.0,
               "ingest_clean_bundles_s": 400.0,
               "ingest_batched_bundles_s": 4000.0,
               "wal_ingest_batched_bundles_s": 3500.0,
               "decode_v2_mb_s": 50.0, "batched_speedup_x": 10.0}
        new = dict(old, bundles=800, faulty_retries=90,
                   corrupt_copies_quarantined=40, backpressure_shed=77,
                   wal_syncs=9,
                   ingest_clean_s=2.0,              # slower: warn
                   ingest_batched_bundles_s=1000.0,  # throughput drop: warn
                   batched_speedup_x=2.0)            # less speedup: warn
        rows = bench_diff.regressions(old, new, 0.20)
        assert _keys(rows) == ["batched_speedup_x",
                               "ingest_batched_bundles_s",
                               "ingest_clean_s"]

    def test_tail_latency_regression_warns(self):
        old = {"hotspot_query_p99": 0.010, "hotspot_query_p50": 0.001}
        new = {"hotspot_query_p99": 0.020, "hotspot_query_p50": 0.001}
        rows = bench_diff.regressions(old, new, 0.20)
        assert _keys(rows) == ["hotspot_query_p99"]
        # a tail *improvement* stays quiet
        assert bench_diff.regressions(new, old, 0.20) == []

    def test_within_threshold_is_quiet(self):
        assert bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 1.19}, 0.20) == []

    def test_new_and_zero_keys_are_skipped(self):
        old = {"gone_s": 1.0, "zero_s": 0.0}
        new = {"fresh_s": 9.9, "zero_s": 5.0}
        assert bench_diff.regressions(old, new, 0.20) == []


class TestMain:
    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_fake.json"
        path.write_text(json.dumps({"batch_s": 9.0}), encoding="utf-8")

        def fake_committed(_path):
            return {"batch_s": 1.0}

        original = bench_diff.committed_version
        bench_diff.committed_version = fake_committed
        try:
            rc = bench_diff.main([str(path)])
        finally:
            bench_diff.committed_version = original
        out = capsys.readouterr().out
        assert rc == 0
        assert "::warning file=BENCH_fake.json::" in out
        assert "800% slower" in out

    def test_untracked_file_is_skipped(self, tmp_path, capsys):
        path = tmp_path / "BENCH_new.json"
        path.write_text(json.dumps({"batch_s": 1.0}), encoding="utf-8")
        original = bench_diff.committed_version
        bench_diff.committed_version = lambda _p: None
        try:
            rc = bench_diff.main([str(path)])
        finally:
            bench_diff.committed_version = original
        assert rc == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_unreadable_json_is_operational_error(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert bench_diff.main([str(path)]) == 2
