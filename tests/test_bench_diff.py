"""The advisory benchmark differ (``tools/analysis/bench_diff.py``).

The differ infers the good direction for each metric from the naming
convention the exports follow; these tests pin that inference --
especially the rate suffixes (``_mb_s``, ``_bundles_s``) whose
trailing ``_s`` must *not* be read as a duration -- and the advisory
exit contract (0 even with regressions).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_diff", REPO / "tools" / "analysis" / "bench_diff.py")
assert _spec is not None and _spec.loader is not None
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


def _keys(rows):
    return [row[0] for row in rows]


class TestDirections:
    def test_duration_regression_is_slower(self):
        rows = bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 1.5}, 0.20)
        assert _keys(rows) == ["batch_s"]
        assert rows[0][3] == 0.5

    def test_duration_improvement_is_quiet(self):
        assert bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 0.5}, 0.20) == []

    def test_speedup_regression_is_less_speedup(self):
        rows = bench_diff.regressions(
            {"speedup_x": 10.0}, {"speedup_x": 5.0}, 0.20)
        assert _keys(rows) == ["speedup_x"]

    def test_rate_suffixes_are_higher_is_better(self):
        # 9.9 -> 13.2 MB/s is an *improvement*; the trailing "_s" must
        # not flag it as a 33% slowdown.
        old = {"decode_mb_s": 9.9, "ingest_bundles_s": 150.0}
        new = {"decode_mb_s": 13.2, "ingest_bundles_s": 200.0}
        assert bench_diff.regressions(old, new, 0.20) == []
        # ...and a real throughput drop is flagged.
        rows = bench_diff.regressions(new, old, 0.20)
        assert _keys(rows) == ["decode_mb_s", "ingest_bundles_s"]

    def test_informational_keys_never_warn(self):
        old = {"records": 100, "engine": "packed",
               "snapshot_schema_version": 1}
        new = {"records": 999, "engine": "dynamic",
               "snapshot_schema_version": 2}
        assert bench_diff.regressions(old, new, 0.20) == []

    def test_within_threshold_is_quiet(self):
        assert bench_diff.regressions(
            {"batch_s": 1.0}, {"batch_s": 1.19}, 0.20) == []

    def test_new_and_zero_keys_are_skipped(self):
        old = {"gone_s": 1.0, "zero_s": 0.0}
        new = {"fresh_s": 9.9, "zero_s": 5.0}
        assert bench_diff.regressions(old, new, 0.20) == []


class TestMain:
    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_fake.json"
        path.write_text(json.dumps({"batch_s": 9.0}), encoding="utf-8")

        def fake_committed(_path):
            return {"batch_s": 1.0}

        original = bench_diff.committed_version
        bench_diff.committed_version = fake_committed
        try:
            rc = bench_diff.main([str(path)])
        finally:
            bench_diff.committed_version = original
        out = capsys.readouterr().out
        assert rc == 0
        assert "::warning file=BENCH_fake.json::" in out
        assert "800% slower" in out

    def test_untracked_file_is_skipped(self, tmp_path, capsys):
        path = tmp_path / "BENCH_new.json"
        path.write_text(json.dumps({"batch_s": 1.0}), encoding="utf-8")
        original = bench_diff.committed_version
        bench_diff.committed_version = lambda _p: None
        try:
            rc = bench_diff.main([str(path)])
        finally:
            bench_diff.committed_version = original
        assert rc == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_unreadable_json_is_operational_error(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert bench_diff.main([str(path)]) == 2
