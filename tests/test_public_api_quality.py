"""Meta-tests: documentation and API-surface quality gates.

(e) of the deliverables: "doc comments on every public item".  These
tests walk the installed package and enforce it mechanically, so a
future contribution cannot silently regress the documentation.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue   # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}")


def test_all_declared_names_exist():
    for module in MODULES:
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), \
                f"{module.__name__}.__all__ lists missing name {name!r}"


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None
