"""The static-analysis layer: fovlint engine, the eight RF rules, CLI.

Three tiers of coverage:

* unit -- each rule on minimal in-memory snippets (bad fires, good
  stays quiet), via :func:`repro.analysis.lint_source`;
* acceptance -- the seeded fixture ``tests/fixtures/fovlint_bad.py``
  triggers all eight rules, and the shipped ``src/repro`` tree is clean;
* regression -- the concrete violations fixed when the linter first ran
  (``__all__`` drift in similarity/segmentation/rtree) stay fixed.

mypy and ruff run in CI only; their config presence is asserted here,
their execution is skip-gated on availability.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import axis_role, is_degree_name, name_tokens

REPO = Path(__file__).resolve().parents[1]
SRC_TREE = REPO / "src" / "repro"
BAD_FIXTURE = REPO / "tests" / "fixtures" / "fovlint_bad.py"


def rule_ids(violations) -> set[str]:
    return {v.rule_id for v in violations}


# ---------------------------------------------------------------------------
# name classification helpers


def test_name_tokens_split_on_underscores_and_digits():
    assert name_tokens("half_angle_rad") == ("half", "angle", "rad")
    assert name_tokens("theta2") == ("theta",)
    assert name_tokens("lat1_deg") == ("lat", "deg")


def test_degree_names():
    assert is_degree_name("theta")
    assert is_degree_name("azimuth_deg")
    assert is_degree_name("lat2")
    assert not is_degree_name("half_angle_rad")   # radians token wins
    assert not is_degree_name("distance")


def test_axis_roles():
    assert axis_role("lat") == "lat"
    assert axis_role("lngs") == "lng"
    assert axis_role("longitude") == "lng"
    assert axis_role("t") is None
    assert axis_role("lat_lng_pair") is None      # claims both -> unknown


# ---------------------------------------------------------------------------
# RF001: degrees into trig


def test_rf001_flags_raw_trig_on_degrees():
    vs = lint_source("import math\ny = math.sin(theta)\n", select=["RF001"])
    assert rule_ids(vs) == {"RF001"}


def test_rf001_accepts_explicit_radians():
    vs = lint_source(
        "import numpy as np\ny = np.sin(np.radians(theta))\n",
        select=["RF001"],
    )
    assert vs == []


def test_rf001_dataflow_clears_derived_radians():
    src = (
        "import numpy as np\n"
        "lat1 = np.radians(a)\n"
        "lat2 = np.radians(b)\n"
        "dlat = lat2 - lat1\n"
        "y = np.sin(dlat / 2.0)\n"
    )
    assert lint_source(src, select=["RF001"]) == []


def test_rf001_degrees_call_unclears():
    src = (
        "import numpy as np\n"
        "theta = np.radians(x)\n"
        "theta = np.degrees(theta)\n"
        "y = np.sin(theta)\n"
    )
    assert rule_ids(lint_source(src, select=["RF001"])) == {"RF001"}


def test_rf001_radian_suffixed_names_are_exempt():
    assert lint_source(
        "import math\ny = math.cos(half_angle_rad)\n", select=["RF001"]
    ) == []


# ---------------------------------------------------------------------------
# RF002: lat/lng argument order


def test_rf002_flags_swapped_positional_args():
    src = (
        "def project(lng, lat):\n"
        "    return lng, lat\n"
        "def use(my_lat, my_lng):\n"
        "    return project(my_lat, my_lng)\n"
    )
    vs = lint_source(src, select=["RF002"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF002"}


def test_rf002_accepts_correct_order():
    src = (
        "def project(lng, lat):\n"
        "    return lng, lat\n"
        "def use(my_lat, my_lng):\n"
        "    return project(my_lng, my_lat)\n"
    )
    assert lint_source(src, select=["RF002"]) == []


def test_rf002_flags_keyword_mismatch():
    src = "def f(lat=None):\n    pass\nf(lat=point_lng)\n"
    assert rule_ids(lint_source(src, select=["RF002"])) == {"RF002"}


def test_rf002_skips_ambiguous_signatures():
    # Two same-named callees that disagree about slot roles: no guess.
    src = (
        "def g(lat, lng):\n    pass\n"
        "def use(my_lng):\n    return g(my_lng, 0.0)\n"
        "# fovlint: module=repro.other\n"
    )
    ambiguous = src + "def g(lng, lat):\n    pass\n"
    assert lint_source(ambiguous, select=["RF002"]) == []


# ---------------------------------------------------------------------------
# RF003: __all__ discipline (scoped to core/geometry/spatial)


def test_rf003_flags_missing_public_def():
    src = "__all__ = []\ndef shiny():\n    pass\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_flags_stale_entry():
    src = "__all__ = ['gone']\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_flags_private_export():
    src = "__all__ = ['_Node']\n_Node = 1\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_out_of_scope_module_is_exempt():
    src = "def shiny():\n    pass\n"
    assert lint_source(src, modname="repro.eval.figures",
                       select=["RF003"]) == []


def test_rf003_accepts_complete_all():
    src = "__all__ = ['shiny']\ndef shiny():\n    pass\n"
    assert lint_source(src, select=["RF003"]) == []


# ---------------------------------------------------------------------------
# RF004: mutable defaults


def test_rf004_flags_list_dict_set_defaults():
    src = "def f(a=[], b={}, c=set(), *, d=dict()):\n    pass\n"
    vs = lint_source(src, select=["RF004"])
    assert len(vs) == 4 and rule_ids(vs) == {"RF004"}


def test_rf004_accepts_none_sentinel():
    src = "def f(a=None, b=(), c=0.0):\n    pass\n"
    assert lint_source(src, select=["RF004"]) == []


# ---------------------------------------------------------------------------
# RF005: determinism of core/spatial


def test_rf005_flags_wall_clock_and_global_rng():
    src = (
        "import time, random\nimport numpy as np\n"
        "a = time.time()\n"
        "b = random.random()\n"
        "c = np.random.normal()\n"
    )
    assert len(lint_source(src, select=["RF005"])) == 3


def test_rf005_allows_seeded_rng():
    src = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "g = np.random.default_rng(7)\n"
    )
    assert lint_source(src, select=["RF005"]) == []


def test_rf005_flags_duration_clocks():
    # perf_counter/monotonic are banned in core/spatial too: latency is
    # measured through an injected clock (repro.net.clock.default_timer).
    src = (
        "import time\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.monotonic()\n"
    )
    vs = lint_source(src, select=["RF005"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF005"}


def test_rf005_flags_from_time_imports():
    src = "from time import perf_counter, time\n"
    vs = lint_source(src, select=["RF005"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF005"}


def test_rf005_allows_harmless_time_imports():
    src = "from time import sleep\n"
    assert lint_source(src, select=["RF005"]) == []


def test_rf005_out_of_scope_module_is_exempt():
    src = "import time\na = time.time()\nb = time.perf_counter()\n"
    assert lint_source(src, modname="repro.eval.bench",
                       select=["RF005"]) == []


# ---------------------------------------------------------------------------
# RF006: dual-form normalisation


_DUAL_DOC = (
    '    """Score.\n\n'
    "    Returns\n"
    "    -------\n"
    "    float or ndarray\n"
    '        The score.\n    """\n'
)


def test_rf006_flags_unnormalised_dual_form():
    src = "def f(x):\n" + _DUAL_DOC + "    return x * 2\n"
    assert rule_ids(lint_source(src, select=["RF006"])) == {"RF006"}


def test_rf006_accepts_as_float_helper():
    src = "def f(x):\n" + _DUAL_DOC + "    return _as_float(x * 2)\n"
    assert lint_source(src, select=["RF006"]) == []


def test_rf006_accepts_ndim_check():
    src = (
        "import numpy as np\n"
        "def f(x):\n" + _DUAL_DOC +
        "    out = x * 2\n"
        "    if np.ndim(x) == 0:\n"
        "        return float(out)\n"
        "    return out\n"
    )
    assert lint_source(src, select=["RF006"]) == []


def test_rf006_ignores_single_form_functions():
    src = 'def f(x):\n    """Double x and return the array."""\n    return x\n'
    assert lint_source(src, select=["RF006"]) == []


# ---------------------------------------------------------------------------
# RF007: bare struct.unpack on wire payloads


def test_rf007_flags_module_level_unpack_on_payload():
    src = (
        "import struct\n"
        "def parse(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert rule_ids(lint_source(src, select=["RF007"])) == {"RF007"}


def test_rf007_flags_struct_instance_unpack_from():
    src = (
        "import struct\n"
        "_H = struct.Struct('<I')\n"
        "def parse(packet, off):\n"
        "    return _H.unpack_from(packet, off)\n"
    )
    assert rule_ids(lint_source(src, select=["RF007"])) == {"RF007"}


def test_rf007_ignores_non_payload_buffers():
    src = (
        "import struct\n"
        "def parse(blob):\n"
        "    return struct.unpack('<I', blob[:4])\n"
    )
    assert lint_source(src, select=["RF007"]) == []


def test_rf007_exempts_the_protocol_module():
    src = (
        "import struct\n"
        "def decode(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert lint_source(src, modname="repro.net.protocol",
                       select=["RF007"]) == []


def test_rf007_scoped_to_repro_packages():
    src = (
        "import struct\n"
        "def parse(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert lint_source(src, modname="thirdparty.io",
                       select=["RF007"]) == []


# ---------------------------------------------------------------------------
# RF008: literal metric/span names


def test_rf008_flags_fstring_name():
    src = "def f(reg, uid):\n    return reg.counter(f'per_user.{uid}')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_concatenated_name():
    src = "def f(reg, kind):\n    return reg.gauge('queue.' + kind)\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_malformed_literal():
    # No dot namespace / not snake_case: flagged even though literal.
    src = "def f(reg):\n    return reg.counter('Requests')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_span_names_too():
    src = "def f(tr, q):\n    return tr.span(f'query.{q}')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_accepts_literal_dotted_names():
    src = (
        "def f(reg, tr):\n"
        "    c = reg.counter('ingest.bundles', 'help', labelnames=('s',))\n"
        "    h = reg.histogram('span.duration_s')\n"
        "    with tr.span('server.query'):\n"
        "        pass\n"
    )
    assert lint_source(src, select=["RF008"]) == []


def test_rf008_ignores_forwarded_name_variables():
    # Helpers forwarding a `name` parameter (and np.histogram's array
    # first argument) are plain Names -- out of scope by design.
    src = (
        "import numpy as np\n"
        "def make(reg, name):\n"
        "    return reg.counter(name)\n"
        "def bins(data):\n"
        "    return np.histogram(data)\n"
    )
    assert lint_source(src, select=["RF008"]) == []


def test_rf008_scoped_to_repro_packages():
    src = "def f(reg, uid):\n    return reg.counter(f'u.{uid}')\n"
    assert lint_source(src, modname="thirdparty.metrics",
                       select=["RF008"]) == []


# ---------------------------------------------------------------------------
# suppression and module pragmas


def test_disable_pragma_suppresses_on_its_line():
    src = "import math\ny = math.sin(theta)  # fovlint: disable=RF001\n"
    assert lint_source(src, select=["RF001"]) == []


def test_disable_pragma_is_rule_specific():
    src = "import math\ny = math.sin(theta)  # fovlint: disable=RF005\n"
    assert rule_ids(lint_source(src, select=["RF001"])) == {"RF001"}


def test_module_pragma_must_start_the_line():
    # Mentioning the pragma inside prose/docstrings must not rebind the
    # module name (the engine's own docstring does exactly that).
    src = (
        '"""Docs say ``# fovlint: module=repro.core.x`` here."""\n'
        "import time\na = time.time()\n"
    )
    assert lint_source(src, modname="repro.eval.bench",
                       select=["RF005"]) == []


# ---------------------------------------------------------------------------
# acceptance: the seeded fixture and the shipped tree


def test_bad_fixture_triggers_every_rule():
    report = lint_paths([BAD_FIXTURE])
    assert not report.ok
    assert rule_ids(report.violations) == {
        "RF001", "RF002", "RF003", "RF004", "RF005", "RF006", "RF007",
        "RF008",
    }


def test_shipped_tree_is_clean():
    report = lint_paths([SRC_TREE])
    assert report.ok, "\n" + report.format()
    assert report.files_checked > 80


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([SRC_TREE], select=["RF999"])


# ---------------------------------------------------------------------------
# CLI and standalone shim


def test_cli_lint_exit_codes():
    from repro.cli import main
    assert main(["lint", str(SRC_TREE)]) == 0
    assert main(["lint", str(BAD_FIXTURE)]) == 1
    assert main(["lint", str(REPO / "no_such_dir")]) == 2


def test_cli_lint_select(capsys):
    from repro.cli import main
    assert main(["lint", str(BAD_FIXTURE), "--select", "RF004"]) == 1
    out = capsys.readouterr().out
    assert "RF004" in out and "RF001" not in out


def test_standalone_shim_runs_without_pythonpath():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "analysis" / "fovlint.py"),
         str(BAD_FIXTURE)],
        capture_output=True, text=True, cwd=REPO,
        env={"PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 1
    assert "RF001" in proc.stdout


# ---------------------------------------------------------------------------
# regression: the violations fixed when the linter first ran


def test_scalar_similarity_is_exported():
    # importlib: `import repro.core.similarity` resolves to the
    # same-named *function* re-exported by the package __init__.
    import importlib
    m = importlib.import_module("repro.core.similarity")
    assert "scalar_similarity" in m.__all__


def test_stream_segment_is_exported():
    import repro.core.segmentation as m
    assert "StreamSegment" in m.__all__


def test_rtree_all_has_no_private_names():
    import repro.spatial.rtree as m
    assert all(not name.startswith("_") for name in m.__all__)


def test_every_all_entry_resolves():
    # Cheap project-wide guard: run only RF003 over the shipped tree.
    report = lint_paths([SRC_TREE], select=["RF003"])
    assert report.ok, "\n" + report.format()


# ---------------------------------------------------------------------------
# external tools: config shipped always, execution gated on availability


def test_mypy_and_ruff_configured():
    text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in text and "strict = true" in text
    assert "[tool.ruff" in text


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(["ruff", "check", "src", "tools"],
                          capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_core():
    proc = subprocess.run(["mypy"], capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
