"""The static-analysis layer: fovlint engine, the RF rules, CLI.

Three tiers of coverage:

* unit -- each rule on minimal in-memory snippets (bad fires, good
  stays quiet), via :func:`repro.analysis.lint_source`;
* acceptance -- the seeded fixtures (``tests/fixtures/fovlint_bad.py``
  for the per-file rules RF001-RF008,
  ``tests/fixtures/fovlint_concurrency_bad.py`` for the whole-program
  rules RF009-RF014) trigger every rule, and the shipped ``src/repro``
  tree is clean;
* regression -- the concrete violations fixed when the linter first ran
  (``__all__`` drift in similarity/segmentation/rtree; the torn-read
  ``EventJournal.dropped``) stay fixed.

The cross-module phase gets its own sections: the ProjectModel and
lock fixpoint, each concurrency rule positive + negative, the
suppression baseline round-trip, SARIF structural validation, and a
self-check that fovlint runs clean over its own package.

mypy and ruff run in CI only; their config presence is asserted here,
their execution is skip-gated on availability.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import axis_role, is_degree_name, name_tokens

REPO = Path(__file__).resolve().parents[1]
SRC_TREE = REPO / "src" / "repro"
BAD_FIXTURE = REPO / "tests" / "fixtures" / "fovlint_bad.py"
CONC_FIXTURE = REPO / "tests" / "fixtures" / "fovlint_concurrency_bad.py"
HOT_FIXTURE = REPO / "tests" / "fixtures" / "fovlint_hotloop_bad.py"
BASELINE_FILE = REPO / "tools" / "analysis" / "baseline.json"


def rule_ids(violations) -> set[str]:
    return {v.rule_id for v in violations}


# ---------------------------------------------------------------------------
# name classification helpers


def test_name_tokens_split_on_underscores_and_digits():
    assert name_tokens("half_angle_rad") == ("half", "angle", "rad")
    assert name_tokens("theta2") == ("theta",)
    assert name_tokens("lat1_deg") == ("lat", "deg")


def test_degree_names():
    assert is_degree_name("theta")
    assert is_degree_name("azimuth_deg")
    assert is_degree_name("lat2")
    assert not is_degree_name("half_angle_rad")   # radians token wins
    assert not is_degree_name("distance")


def test_axis_roles():
    assert axis_role("lat") == "lat"
    assert axis_role("lngs") == "lng"
    assert axis_role("longitude") == "lng"
    assert axis_role("t") is None
    assert axis_role("lat_lng_pair") is None      # claims both -> unknown


# ---------------------------------------------------------------------------
# RF001: degrees into trig


def test_rf001_flags_raw_trig_on_degrees():
    vs = lint_source("import math\ny = math.sin(theta)\n", select=["RF001"])
    assert rule_ids(vs) == {"RF001"}


def test_rf001_accepts_explicit_radians():
    vs = lint_source(
        "import numpy as np\ny = np.sin(np.radians(theta))\n",
        select=["RF001"],
    )
    assert vs == []


def test_rf001_dataflow_clears_derived_radians():
    src = (
        "import numpy as np\n"
        "lat1 = np.radians(a)\n"
        "lat2 = np.radians(b)\n"
        "dlat = lat2 - lat1\n"
        "y = np.sin(dlat / 2.0)\n"
    )
    assert lint_source(src, select=["RF001"]) == []


def test_rf001_degrees_call_unclears():
    src = (
        "import numpy as np\n"
        "theta = np.radians(x)\n"
        "theta = np.degrees(theta)\n"
        "y = np.sin(theta)\n"
    )
    assert rule_ids(lint_source(src, select=["RF001"])) == {"RF001"}


def test_rf001_radian_suffixed_names_are_exempt():
    assert lint_source(
        "import math\ny = math.cos(half_angle_rad)\n", select=["RF001"]
    ) == []


# ---------------------------------------------------------------------------
# RF002: lat/lng argument order


def test_rf002_flags_swapped_positional_args():
    src = (
        "def project(lng, lat):\n"
        "    return lng, lat\n"
        "def use(my_lat, my_lng):\n"
        "    return project(my_lat, my_lng)\n"
    )
    vs = lint_source(src, select=["RF002"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF002"}


def test_rf002_accepts_correct_order():
    src = (
        "def project(lng, lat):\n"
        "    return lng, lat\n"
        "def use(my_lat, my_lng):\n"
        "    return project(my_lng, my_lat)\n"
    )
    assert lint_source(src, select=["RF002"]) == []


def test_rf002_flags_keyword_mismatch():
    src = "def f(lat=None):\n    pass\nf(lat=point_lng)\n"
    assert rule_ids(lint_source(src, select=["RF002"])) == {"RF002"}


def test_rf002_skips_ambiguous_signatures():
    # Two same-named callees that disagree about slot roles: no guess.
    src = (
        "def g(lat, lng):\n    pass\n"
        "def use(my_lng):\n    return g(my_lng, 0.0)\n"
        "# fovlint: module=repro.other\n"
    )
    ambiguous = src + "def g(lng, lat):\n    pass\n"
    assert lint_source(ambiguous, select=["RF002"]) == []


# ---------------------------------------------------------------------------
# RF003: __all__ discipline (scoped to core/geometry/spatial)


def test_rf003_flags_missing_public_def():
    src = "__all__ = []\ndef shiny():\n    pass\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_flags_stale_entry():
    src = "__all__ = ['gone']\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_flags_private_export():
    src = "__all__ = ['_Node']\n_Node = 1\n"
    assert rule_ids(lint_source(src, select=["RF003"])) == {"RF003"}


def test_rf003_out_of_scope_module_is_exempt():
    src = "def shiny():\n    pass\n"
    assert lint_source(src, modname="repro.eval.figures",
                       select=["RF003"]) == []


def test_rf003_accepts_complete_all():
    src = "__all__ = ['shiny']\ndef shiny():\n    pass\n"
    assert lint_source(src, select=["RF003"]) == []


# ---------------------------------------------------------------------------
# RF004: mutable defaults


def test_rf004_flags_list_dict_set_defaults():
    src = "def f(a=[], b={}, c=set(), *, d=dict()):\n    pass\n"
    vs = lint_source(src, select=["RF004"])
    assert len(vs) == 4 and rule_ids(vs) == {"RF004"}


def test_rf004_accepts_none_sentinel():
    src = "def f(a=None, b=(), c=0.0):\n    pass\n"
    assert lint_source(src, select=["RF004"]) == []


# ---------------------------------------------------------------------------
# RF005: determinism of core/spatial


def test_rf005_flags_wall_clock_and_global_rng():
    src = (
        "import time, random\nimport numpy as np\n"
        "a = time.time()\n"
        "b = random.random()\n"
        "c = np.random.normal()\n"
    )
    assert len(lint_source(src, select=["RF005"])) == 3


def test_rf005_allows_seeded_rng():
    src = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "g = np.random.default_rng(7)\n"
    )
    assert lint_source(src, select=["RF005"]) == []


def test_rf005_flags_duration_clocks():
    # perf_counter/monotonic are banned in core/spatial too: latency is
    # measured through an injected clock (repro.net.clock.default_timer).
    src = (
        "import time\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.monotonic()\n"
    )
    vs = lint_source(src, select=["RF005"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF005"}


def test_rf005_flags_from_time_imports():
    src = "from time import perf_counter, time\n"
    vs = lint_source(src, select=["RF005"])
    assert len(vs) == 2 and rule_ids(vs) == {"RF005"}


def test_rf005_allows_harmless_time_imports():
    src = "from time import sleep\n"
    assert lint_source(src, select=["RF005"]) == []


def test_rf005_out_of_scope_module_is_exempt():
    src = "import time\na = time.time()\nb = time.perf_counter()\n"
    assert lint_source(src, modname="repro.eval.bench",
                       select=["RF005"]) == []


# ---------------------------------------------------------------------------
# RF006: dual-form normalisation


_DUAL_DOC = (
    '    """Score.\n\n'
    "    Returns\n"
    "    -------\n"
    "    float or ndarray\n"
    '        The score.\n    """\n'
)


def test_rf006_flags_unnormalised_dual_form():
    src = "def f(x):\n" + _DUAL_DOC + "    return x * 2\n"
    assert rule_ids(lint_source(src, select=["RF006"])) == {"RF006"}


def test_rf006_accepts_as_float_helper():
    src = "def f(x):\n" + _DUAL_DOC + "    return _as_float(x * 2)\n"
    assert lint_source(src, select=["RF006"]) == []


def test_rf006_accepts_ndim_check():
    src = (
        "import numpy as np\n"
        "def f(x):\n" + _DUAL_DOC +
        "    out = x * 2\n"
        "    if np.ndim(x) == 0:\n"
        "        return float(out)\n"
        "    return out\n"
    )
    assert lint_source(src, select=["RF006"]) == []


def test_rf006_ignores_single_form_functions():
    src = 'def f(x):\n    """Double x and return the array."""\n    return x\n'
    assert lint_source(src, select=["RF006"]) == []


# ---------------------------------------------------------------------------
# RF007: bare struct.unpack on wire payloads


def test_rf007_flags_module_level_unpack_on_payload():
    src = (
        "import struct\n"
        "def parse(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert rule_ids(lint_source(src, select=["RF007"])) == {"RF007"}


def test_rf007_flags_struct_instance_unpack_from():
    src = (
        "import struct\n"
        "_H = struct.Struct('<I')\n"
        "def parse(packet, off):\n"
        "    return _H.unpack_from(packet, off)\n"
    )
    assert rule_ids(lint_source(src, select=["RF007"])) == {"RF007"}


def test_rf007_ignores_non_payload_buffers():
    src = (
        "import struct\n"
        "def parse(blob):\n"
        "    return struct.unpack('<I', blob[:4])\n"
    )
    assert lint_source(src, select=["RF007"]) == []


def test_rf007_exempts_the_protocol_module():
    src = (
        "import struct\n"
        "def decode(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert lint_source(src, modname="repro.net.protocol",
                       select=["RF007"]) == []


def test_rf007_scoped_to_repro_packages():
    src = (
        "import struct\n"
        "def parse(payload):\n"
        "    return struct.unpack('<I', payload[:4])\n"
    )
    assert lint_source(src, modname="thirdparty.io",
                       select=["RF007"]) == []


# ---------------------------------------------------------------------------
# RF008: literal metric/span names


def test_rf008_flags_fstring_name():
    src = "def f(reg, uid):\n    return reg.counter(f'per_user.{uid}')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_concatenated_name():
    src = "def f(reg, kind):\n    return reg.gauge('queue.' + kind)\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_malformed_literal():
    # No dot namespace / not snake_case: flagged even though literal.
    src = "def f(reg):\n    return reg.counter('Requests')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_flags_span_names_too():
    src = "def f(tr, q):\n    return tr.span(f'query.{q}')\n"
    assert rule_ids(lint_source(src, select=["RF008"])) == {"RF008"}


def test_rf008_accepts_literal_dotted_names():
    src = (
        "def f(reg, tr):\n"
        "    c = reg.counter('ingest.bundles', 'help', labelnames=('s',))\n"
        "    h = reg.histogram('span.duration_s')\n"
        "    with tr.span('server.query'):\n"
        "        pass\n"
    )
    assert lint_source(src, select=["RF008"]) == []


def test_rf008_ignores_forwarded_name_variables():
    # Helpers forwarding a `name` parameter (and np.histogram's array
    # first argument) are plain Names -- out of scope by design.
    src = (
        "import numpy as np\n"
        "def make(reg, name):\n"
        "    return reg.counter(name)\n"
        "def bins(data):\n"
        "    return np.histogram(data)\n"
    )
    assert lint_source(src, select=["RF008"]) == []


def test_rf008_scoped_to_repro_packages():
    src = "def f(reg, uid):\n    return reg.counter(f'u.{uid}')\n"
    assert lint_source(src, modname="thirdparty.metrics",
                       select=["RF008"]) == []


# ---------------------------------------------------------------------------
# the cross-module ProjectModel and lock fixpoint


def _model_for(source: str, modname: str = "repro.shard.snippet"):
    from repro.analysis.engine import ProjectInfo, parse_module
    from repro.analysis.model import build_model
    module = parse_module(Path("<snippet>.py"), source=source)
    module.modname = modname
    return build_model(ProjectInfo(modules=[module]))


_LOCKED_CLASS = (
    "import threading\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._items = []\n"
    "    def put(self, x):\n"
    "        with self._lock:\n"
    "            self._helper(x)\n"
    "    def _helper(self, x):\n"
    "        self._items.append(x)\n"
)


def test_model_detects_lock_fields_and_kinds():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self, n):\n"
        "        self._lock = threading.RLock()\n"
        "        self._locks = [threading.Lock() for _ in range(n)]\n"
        "        self._epoch = 0\n"
    )
    cls = _model_for(src).classes["repro.shard.snippet.S"]
    assert cls.lock_kinds == {"_lock": "RLock", "_locks": "Lock"}
    assert cls.epoch_attrs == {"_epoch"}
    assert cls.is_reentrant("_lock") and not cls.is_reentrant("_locks[*]")


def test_model_fixpoint_guarantees_private_helper_lock():
    cls = _model_for(_LOCKED_CLASS).classes["repro.shard.snippet.Box"]
    assert cls.methods["_helper"].guaranteed_locks == {"_lock"}
    # Public methods are reachable from outside: never guaranteed.
    assert cls.methods["put"].guaranteed_locks == frozenset()


def test_model_fixpoint_intersects_over_call_sites():
    # A helper called once under the lock and once without gets no
    # guarantee: the weakest caller wins.
    src = _LOCKED_CLASS + "    def bare(self, x):\n        self._helper(x)\n"
    cls = _model_for(src).classes["repro.shard.snippet.Box"]
    assert cls.methods["_helper"].guaranteed_locks == frozenset()


def test_model_canonicalises_indexed_lock_family():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self, n):\n"
        "        self._locks = [threading.Lock() for _ in range(n)]\n"
        "    def touch(self, i):\n"
        "        with self._locks[i]:\n"
        "            pass\n"
    )
    cls = _model_for(src).classes["repro.shard.snippet.S"]
    assert [a.lock for a in cls.methods["touch"].acquires] == ["_locks[*]"]


def test_model_is_built_once_per_project():
    from repro.analysis.engine import ProjectInfo, parse_module
    module = parse_module(Path("<snippet>.py"), source="x = 1\n")
    project = ProjectInfo(modules=[module])
    assert project.model() is project.model()


# ---------------------------------------------------------------------------
# RF009: cross-method lock discipline

_SNIPPET_MOD = "repro.shard.snippet"


def test_rf009_flags_unguarded_mutation_and_write():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "    def put(self, x):\n"
        "        with self._lock:\n"
        "            self._items.append(x)\n"
        "    def drop(self, x):\n"
        "        self._items.remove(x)\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF009"])
    assert rule_ids(vs) == {"RF009"} and len(vs) == 1
    assert vs[0].line == 10 and "mutation races" in vs[0].message


def test_rf009_flags_lock_free_read():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._n = self._n + 1\n"
        "    def peek(self):\n"
        "        return self._n\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF009"])
    assert len(vs) == 1 and "read lock-free" in vs[0].message


def test_rf009_accepts_fully_guarded_class():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "    def put(self, x):\n"
        "        with self._lock:\n"
        "            self._items.append(x)\n"
        "    def snapshot(self):\n"
        "        with self._lock:\n"
        "            return list(self._items)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF009"]) == []


def test_rf009_private_helper_inherits_callers_lock():
    # The fixpoint proves _helper always runs under the lock, so its
    # mutation is not a violation (the ShardedCloudServer pattern).
    assert lint_source(_LOCKED_CLASS, modname=_SNIPPET_MOD,
                       select=["RF009"]) == []


def test_rf009_init_writes_are_exempt():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "        self._items.append(0)\n"
        "    def put(self, x):\n"
        "        with self._lock:\n"
        "            self._items.append(x)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF009"]) == []


def test_rf009_lockless_class_is_out_of_scope():
    src = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self._items = []\n"
        "    def put(self, x):\n"
        "        self._items.append(x)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF009"]) == []


def test_rf009_suppression_honored():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._n = self._n + 1\n"
        "    def peek(self):\n"
        "        # racy monitoring read, single atomic load\n"
        "        return self._n  # fovlint: disable=RF009\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF009"]) == []


# ---------------------------------------------------------------------------
# RF010: lock-order consistency


def test_rf010_flags_opposite_acquisition_orders():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "    def fwd(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
        "    def rev(self):\n"
        "        with self._b:\n"
        "            with self._a:\n"
        "                pass\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF010"])
    assert len(vs) == 1 and "lock-order cycle" in vs[0].message


def test_rf010_accepts_consistent_order():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "    def one(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
        "    def two(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF010"]) == []


def test_rf010_flags_nonreentrant_reacquire_via_helper():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def outer(self):\n"
        "        with self._lock:\n"
        "            self._inner()\n"
        "    def _inner(self):\n"
        "        with self._lock:\n"
        "            pass\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF010"])
    assert vs and any("self-deadlock" in v.message for v in vs)


def test_rf010_rlock_reacquire_is_fine():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.RLock()\n"
        "    def outer(self):\n"
        "        with self._lock:\n"
        "            self.inner()\n"
        "    def inner(self):\n"
        "        with self._lock:\n"
        "            pass\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF010"]) == []


def test_rf010_flags_intra_family_nesting():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self, n):\n"
        "        self._locks = [threading.Lock() for _ in range(n)]\n"
        "    def move(self, i, j):\n"
        "        with self._locks[i]:\n"
        "            with self._locks[j]:\n"
        "                pass\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF010"])
    assert len(vs) == 1 and "lock family" in vs[0].message


# ---------------------------------------------------------------------------
# RF011: epoch bump protocol

_EPOCH_HEAD = (
    "class Idx:\n"
    "    def __init__(self):\n"
    "        self._epoch = 0\n"
    "        self._records = []\n"
)


def test_rf011_flags_mutation_without_bump():
    src = _EPOCH_HEAD + (
        "    def insert(self, r):\n"
        "        self._records.append(r)\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF011"])
    assert len(vs) == 1 and "no path bumps" in vs[0].message


def test_rf011_flags_bump_inside_loop():
    src = _EPOCH_HEAD + (
        "    def insert_many(self, rs):\n"
        "        for r in rs:\n"
        "            self._records.append(r)\n"
        "            self._epoch += 1\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF011"])
    assert len(vs) == 1 and "inside a loop" in vs[0].message


def test_rf011_flags_double_bump():
    src = _EPOCH_HEAD + (
        "    def insert(self, r):\n"
        "        self._records.append(r)\n"
        "        self._epoch += 1\n"
        "        self._epoch += 1\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF011"])
    assert len(vs) == 1 and "2 times" in vs[0].message


def test_rf011_accepts_one_bump_per_batch():
    src = _EPOCH_HEAD + (
        "    def insert_many(self, rs):\n"
        "        for r in rs:\n"
        "            self._records.append(r)\n"
        "        if rs:\n"
        "            self._epoch += 1\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF011"]) == []


def test_rf011_private_helper_covered_by_bumping_callers():
    # The FoVIndex._log_mutation pattern: the helper mutates, every
    # caller bumps.
    src = _EPOCH_HEAD + (
        "    def insert(self, r):\n"
        "        self._log(r)\n"
        "        self._epoch += 1\n"
        "    def delete(self, r):\n"
        "        self._log(r)\n"
        "        self._epoch += 1\n"
        "    def _log(self, r):\n"
        "        self._records.append(r)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF011"]) == []


def test_rf011_bump_via_callee_helper_counts():
    src = _EPOCH_HEAD + (
        "    def insert(self, r):\n"
        "        self._records.append(r)\n"
        "        self._advance()\n"
        "    def _advance(self):\n"
        "        self._epoch += 1\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF011"]) == []


def test_rf011_epochless_class_is_out_of_scope():
    src = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self._records = []\n"
        "    def insert(self, r):\n"
        "        self._records.append(r)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF011"]) == []


# ---------------------------------------------------------------------------
# RF012: blocking call under a lock


def test_rf012_flags_sleep_under_lock():
    src = (
        "import threading, time\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def throttle(self):\n"
        "        with self._lock:\n"
        "            time.sleep(1)\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF012"])
    assert len(vs) == 1 and vs[0].severity == "warning"


def test_rf012_flags_blocking_in_guaranteed_helper():
    src = (
        "import threading, time\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def work(self):\n"
        "        with self._lock:\n"
        "            self._slow()\n"
        "    def _slow(self):\n"
        "        time.sleep(1)\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF012"])
    assert len(vs) == 1 and "_slow" in vs[0].message


def test_rf012_accepts_blocking_outside_lock():
    src = (
        "import threading, time\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def throttle(self):\n"
        "        time.sleep(1)\n"
        "        with self._lock:\n"
        "            pass\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF012"]) == []


def test_rf012_string_join_on_literal_is_not_blocking():
    src = (
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def render(self, parts):\n"
        "        with self._lock:\n"
        "            return ', '.join(parts)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF012"]) == []


# ---------------------------------------------------------------------------
# RF013: instrument catalog drift


def test_rf013_flags_unknown_metric_name():
    src = "def f(reg):\n    return reg.counter('cache.hit')\n"
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF013"])
    assert len(vs) == 1 and "not declared" in vs[0].message


def test_rf013_flags_kind_drift():
    src = "def f(reg):\n    return reg.gauge('cache.hits')\n"
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF013"])
    assert len(vs) == 1 and "declared as a counter" in vs[0].message


def test_rf013_flags_unknown_span_name():
    src = "def f(tr):\n    with tr.span('query.warp'):\n        pass\n"
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF013"])
    assert len(vs) == 1 and "span name" in vs[0].message


def test_rf013_flags_duplicate_registration():
    src = (
        "def f(reg):\n"
        "    a = reg.counter('cache.hits')\n"
        "    b = reg.counter('cache.hits')\n"
        "    return a, b\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF013"])
    assert len(vs) == 1 and vs[0].line == 3 and "already bound" in vs[0].message


def test_rf013_accepts_cataloged_names():
    src = (
        "def f(reg, tr):\n"
        "    c = reg.counter('cache.hits')\n"
        "    with tr.span('server.query'):\n"
        "        pass\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF013"]) == []


def test_rf013_dead_catalog_entry(tmp_path):
    catalog = tmp_path / "catalog.py"
    catalog.write_text(
        "# fovlint: module=repro.obs.catalog\n"
        "METRICS = {\n"
        "    'a.lives': ('counter', 'used'),\n"
        "    'a.dies': ('counter', 'nothing emits this'),\n"
        "}\n"
        "SPANS = {'s.lives': 'used'}\n",
        encoding="utf-8",
    )
    user = tmp_path / "user.py"
    user.write_text(
        "# fovlint: module=repro.obs.user\n"
        "def f(reg, tr):\n"
        "    c = reg.counter('a.lives')\n"
        "    with tr.span('s.lives'):\n"
        "        pass\n",
        encoding="utf-8",
    )
    report = lint_paths([catalog, user], select=["RF013"])
    assert len(report.violations) == 1
    v = report.violations[0]
    assert "a.dies" in v.message and v.path == str(catalog) and v.line == 4


def test_rf013_shipped_catalog_matches_tree():
    # Every instrument in src/repro is declared, alive, and kind-true.
    report = lint_paths([SRC_TREE], select=["RF013"])
    assert report.ok, "\n" + report.format()


# ---------------------------------------------------------------------------
# RF014: unjoined threads / unclosed pools


def test_rf014_flags_attribute_pool_without_shutdown():
    src = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._pool = ThreadPoolExecutor()\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF014"])
    assert len(vs) == 1 and "self._pool" in vs[0].message


def test_rf014_accepts_pool_released_in_close():
    src = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._pool = ThreadPoolExecutor()\n"
        "    def close(self):\n"
        "        self._pool.shutdown(wait=True)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF014"]) == []


def test_rf014_flags_unbound_thread():
    src = (
        "import threading\n"
        "def fire(fn):\n"
        "    threading.Thread(target=fn).start()\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF014"])
    assert len(vs) == 1 and "without binding" in vs[0].message


def test_rf014_flags_local_thread_never_joined():
    src = (
        "import threading\n"
        "def run(fn):\n"
        "    t = threading.Thread(target=fn)\n"
        "    t.start()\n"
    )
    vs = lint_source(src, modname=_SNIPPET_MOD, select=["RF014"])
    assert len(vs) == 1 and "'t'" in vs[0].message


def test_rf014_accepts_joined_local_thread():
    src = (
        "import threading\n"
        "def run(fn):\n"
        "    t = threading.Thread(target=fn)\n"
        "    t.start()\n"
        "    t.join()\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF014"]) == []


def test_rf014_accepts_context_managed_pool():
    src = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "def run(fn):\n"
        "    with ThreadPoolExecutor() as pool:\n"
        "        pool.submit(fn)\n"
    )
    assert lint_source(src, modname=_SNIPPET_MOD, select=["RF014"]) == []


# ---------------------------------------------------------------------------
# RF015: for-loops over packed columns on the hot path

_HOT_MOD = "repro.core.retrieval"


def test_rf015_flags_direct_column_iteration():
    src = "def f(view):\n    for v in view.lat:\n        print(v)\n"
    assert rule_ids(lint_source(src, modname=_HOT_MOD,
                                select=["RF015"])) == {"RF015"}


def test_rf015_flags_sliced_column_and_transparent_wrappers():
    src = (
        "def f(view, lo, hi):\n"
        "    for r in view.fused[lo:hi]:\n"
        "        pass\n"
        "    for i, t in enumerate(view.theta):\n"
        "        pass\n"
        "    for a, b in zip(view.lat, view.lng):\n"
        "        pass\n"
    )
    found = lint_source(src, modname=_HOT_MOD, select=["RF015"])
    assert len(found) == 3 and rule_ids(found) == {"RF015"}


def test_rf015_exempts_the_tolist_funnel():
    src = (
        "def f(view, ids):\n"
        "    for v in view.lat.tolist():\n"
        "        pass\n"
        "    for i in ids.tolist():\n"
        "        pass\n"
    )
    assert lint_source(src, modname=_HOT_MOD, select=["RF015"]) == []


def test_rf015_ignores_non_column_iterables():
    src = (
        "def f(queries, results):\n"
        "    for q in queries:\n"
        "        pass\n"
        "    for i in range(10):\n"
        "        pass\n"
    )
    assert lint_source(src, modname=_HOT_MOD, select=["RF015"]) == []


def test_rf015_scoped_to_hot_modules():
    src = "def f(view):\n    for v in view.lat:\n        pass\n"
    # Cold modules (persistence, traces, default snippet) may loop.
    assert lint_source(src, select=["RF015"]) == []
    assert lint_source(src, modname="repro.shard.persist",
                       select=["RF015"]) == []


# ---------------------------------------------------------------------------
# severity levels, baseline round-trip, SARIF shape


def test_severities_are_stamped_per_rule():
    report = lint_paths([CONC_FIXTURE])
    by_rule = {v.rule_id: v.severity for v in report.violations}
    assert by_rule["RF009"] == "error"
    assert by_rule["RF012"] == "warning"
    assert by_rule["RF013"] == "warning"
    assert by_rule["RF014"] == "error"


def test_baseline_round_trip(tmp_path):
    from repro.analysis import apply_baseline, load_baseline, write_baseline
    report = lint_paths([CONC_FIXTURE])
    assert report.violations
    path = tmp_path / "baseline.json"
    write_baseline(report.violations, path)
    known = load_baseline(path)
    assert apply_baseline(report.violations, known) == []
    # A brand-new finding is not absorbed.
    fresh = lint_paths([BAD_FIXTURE]).violations
    assert apply_baseline(fresh, known) == fresh


def test_baseline_is_line_number_tolerant(tmp_path):
    from dataclasses import replace
    from repro.analysis import apply_baseline, load_baseline, write_baseline
    report = lint_paths([CONC_FIXTURE])
    path = tmp_path / "baseline.json"
    write_baseline(report.violations, path)
    shifted = [replace(v, line=v.line + 7) for v in report.violations]
    assert apply_baseline(shifted, load_baseline(path)) == []


def test_baseline_counts_absorb_exactly(tmp_path):
    from repro.analysis import apply_baseline, load_baseline, write_baseline
    report = lint_paths([CONC_FIXTURE])
    one = report.violations[:1]
    path = tmp_path / "baseline.json"
    write_baseline(one, path)
    # The same fingerprint twice: only one is absorbed.
    doubled = one + one
    assert apply_baseline(doubled, load_baseline(path)) == one


def test_malformed_baseline_is_an_engine_error(tmp_path):
    from repro.analysis import BaselineError, load_baseline
    bad = tmp_path / "baseline.json"
    bad.write_text("{\"version\": 99}", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)


def test_committed_baseline_loads_and_tree_is_clean_against_it():
    from repro.analysis import apply_baseline, load_baseline
    known = load_baseline(BASELINE_FILE)
    report = lint_paths([SRC_TREE])
    assert apply_baseline(report.violations, known, root=REPO) == []


def _sarif_log_for(paths):
    from repro.analysis.engine import _run_rules, all_rules, build_project
    from repro.analysis.engine import discover_files
    from repro.analysis.sarif import to_sarif
    rules = all_rules()
    project = build_project(discover_files(paths))
    return to_sarif(_run_rules(project, rules), rules, root=REPO), rules


def test_sarif_log_structure_is_valid_2_1_0():
    # Structural validation against the SARIF 2.1.0 core: the exact
    # required properties of sarifLog, run, tool, reportingDescriptor
    # and result objects (the jsonschema package is not a test dep).
    log, rules = _sarif_log_for([CONC_FIXTURE])
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "fovlint"
    descriptors = driver["rules"]
    assert [d["id"] for d in descriptors] == [r.rule_id for r in rules]
    for d in descriptors:
        assert d["shortDescription"]["text"]
        assert d["defaultConfiguration"]["level"] in ("warning", "error")
    assert run["results"], "fixture must produce results"
    for res in run["results"]:
        assert descriptors[res["ruleIndex"]]["id"] == res["ruleId"]
        assert res["level"] in ("warning", "error")
        assert res["message"]["text"]
        (loc,) = res["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"].startswith("tests/")
        assert phys["artifactLocation"]["uriBaseId"] in \
            run["originalUriBaseIds"]
        assert phys["region"]["startLine"] >= 1
        assert phys["region"]["startColumn"] >= 1


def test_sarif_validates_against_vendored_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (REPO / "tools" / "analysis" / "sarif-2.1.0-subset.schema.json")
        .read_text(encoding="utf-8"))
    log, _ = _sarif_log_for([CONC_FIXTURE])
    jsonschema.validate(instance=log, schema=schema)
    clean_log, _ = _sarif_log_for([SRC_TREE / "analysis"])
    jsonschema.validate(instance=clean_log, schema=schema)


def test_sarif_is_deterministic_json():
    from repro.analysis.engine import all_rules
    from repro.analysis.sarif import sarif_json
    log, rules = _sarif_log_for([CONC_FIXTURE])
    del log
    a = sarif_json(lint_paths([CONC_FIXTURE]).violations, all_rules())
    b = sarif_json(lint_paths([CONC_FIXTURE]).violations, all_rules())
    assert a == b and json.loads(a)["version"] == "2.1.0"


# ---------------------------------------------------------------------------
# self-check: fovlint is clean over its own package


def test_fovlint_is_clean_over_itself():
    report = lint_paths([SRC_TREE / "analysis"])
    assert report.ok, "\n" + report.format()





def test_disable_pragma_suppresses_on_its_line():
    src = "import math\ny = math.sin(theta)  # fovlint: disable=RF001\n"
    assert lint_source(src, select=["RF001"]) == []


def test_disable_pragma_is_rule_specific():
    src = "import math\ny = math.sin(theta)  # fovlint: disable=RF005\n"
    assert rule_ids(lint_source(src, select=["RF001"])) == {"RF001"}


def test_module_pragma_must_start_the_line():
    # Mentioning the pragma inside prose/docstrings must not rebind the
    # module name (the engine's own docstring does exactly that).
    src = (
        '"""Docs say ``# fovlint: module=repro.core.x`` here."""\n'
        "import time\na = time.time()\n"
    )
    assert lint_source(src, modname="repro.eval.bench",
                       select=["RF005"]) == []


# ---------------------------------------------------------------------------
# acceptance: the seeded fixture and the shipped tree


def test_bad_fixture_triggers_every_per_file_rule():
    report = lint_paths([BAD_FIXTURE])
    assert not report.ok
    assert rule_ids(report.violations) == {
        "RF001", "RF002", "RF003", "RF004", "RF005", "RF006", "RF007",
        "RF008",
    }


def test_concurrency_fixture_triggers_every_whole_program_rule():
    report = lint_paths([CONC_FIXTURE])
    assert not report.ok
    assert rule_ids(report.violations) == {
        "RF009", "RF010", "RF011", "RF012", "RF013", "RF014",
    }


def test_hotloop_fixture_triggers_rf015():
    report = lint_paths([HOT_FIXTURE])
    assert not report.ok
    found = [v for v in report.violations if v.rule_id == "RF015"]
    assert rule_ids(report.violations) == {"RF015"}
    assert len(found) == 3                 # the funnel loop stays quiet


def test_shipped_tree_is_clean():
    # Clean modulo the committed baseline: the only raw findings are
    # the two deliberate RF015 scalar-funnel loops it pins.
    from repro.analysis import apply_baseline, load_baseline
    report = lint_paths([SRC_TREE])
    assert report.files_checked > 80
    assert rule_ids(report.violations) <= {"RF015"}
    fresh = apply_baseline(report.violations,
                           load_baseline(BASELINE_FILE), root=REPO)
    assert fresh == [], "\n" + report.format()


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([SRC_TREE], select=["RF999"])


# ---------------------------------------------------------------------------
# CLI and standalone shim


def test_cli_lint_exit_codes():
    from repro.cli import main
    assert main(["lint", str(SRC_TREE),
                 "--baseline", str(BASELINE_FILE)]) == 0
    assert main(["lint", str(BAD_FIXTURE)]) == 1
    assert main(["lint", str(REPO / "no_such_dir")]) == 2


def test_cli_lint_select(capsys):
    from repro.cli import main
    assert main(["lint", str(BAD_FIXTURE), "--select", "RF004"]) == 1
    out = capsys.readouterr().out
    assert "RF004" in out and "RF001" not in out


def test_cli_severity_threshold_gates_exit_code(capsys):
    from repro.cli import main
    # RF012 findings are warnings: reported, but below an error threshold.
    assert main(["lint", str(CONC_FIXTURE), "--select", "RF012"]) == 1
    assert main(["lint", str(CONC_FIXTURE), "--select", "RF012",
                 "--severity-threshold", "error"]) == 0
    out = capsys.readouterr().out
    assert "RF012" in out          # still reported, just not failing


def test_cli_sarif_and_json_formats(capsys):
    from repro.cli import main
    assert main(["lint", str(CONC_FIXTURE), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0" and log["runs"][0]["results"]
    assert main(["lint", str(CONC_FIXTURE), "--format", "json"]) == 1
    rows = json.loads(capsys.readouterr().out)
    assert {r["rule"] for r in rows} >= {"RF009", "RF014"}


def test_cli_baseline_workflow(tmp_path, capsys):
    from repro.cli import main
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(CONC_FIXTURE),
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(CONC_FIXTURE),
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    bad = tmp_path / "garbage.json"
    bad.write_text("not json", encoding="utf-8")
    assert main(["lint", str(CONC_FIXTURE), "--baseline", str(bad)]) == 2


def test_standalone_shim_runs_without_pythonpath():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "analysis" / "fovlint.py"),
         str(BAD_FIXTURE)],
        capture_output=True, text=True, cwd=REPO,
        env={"PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 1
    assert "RF001" in proc.stdout


# ---------------------------------------------------------------------------
# regression: the violations fixed when the linter first ran


def test_scalar_similarity_is_exported():
    # importlib: `import repro.core.similarity` resolves to the
    # same-named *function* re-exported by the package __init__.
    import importlib
    m = importlib.import_module("repro.core.similarity")
    assert "scalar_similarity" in m.__all__


def test_stream_segment_is_exported():
    import repro.core.segmentation as m
    assert "StreamSegment" in m.__all__


def test_rtree_all_has_no_private_names():
    import repro.spatial.rtree as m
    assert all(not name.startswith("_") for name in m.__all__)


def test_every_all_entry_resolves():
    # Cheap project-wide guard: run only RF003 over the shipped tree.
    report = lint_paths([SRC_TREE], select=["RF003"])
    assert report.ok, "\n" + report.format()


# ---------------------------------------------------------------------------
# external tools: config shipped always, execution gated on availability


def test_mypy_and_ruff_configured():
    text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in text and "strict = true" in text
    assert "[tool.ruff" in text


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(["ruff", "check", "src", "tools"],
                          capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_core():
    proc = subprocess.run(["mypy"], capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
