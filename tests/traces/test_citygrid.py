"""Unit tests for the street grid and routed trajectories."""

import numpy as np
import pytest

from repro.traces.citygrid import CityGrid, grid_route_trajectory


class TestCityGrid:
    def test_validation(self):
        with pytest.raises(ValueError):
            CityGrid(cols=1)
        with pytest.raises(ValueError):
            CityGrid(block_m=0.0)

    def test_node_positions(self):
        g = CityGrid(cols=3, rows=3, block_m=50.0)
        assert np.allclose(g.node_xy((2, 1)), [100.0, 50.0])
        assert g.extent_m == (100.0, 100.0)

    def test_graph_shape(self):
        g = CityGrid(cols=4, rows=5)
        assert g.graph.number_of_nodes() == 20
        # Grid edges: (cols-1)*rows + cols*(rows-1).
        assert g.graph.number_of_edges() == 3 * 5 + 4 * 4

    def test_random_route_min_hops(self, rng):
        g = CityGrid(cols=6, rows=6)
        for _ in range(10):
            route = g.random_route(rng, min_hops=4)
            assert len(route) >= 5
            # Consecutive nodes are grid-adjacent.
            for a, b in zip(route, route[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestGridRouteTrajectory:
    def test_follows_streets(self, rng):
        g = CityGrid(cols=5, rows=5, block_m=100.0)
        route = [(0, 0), (1, 0), (2, 0), (2, 1)]
        tr = grid_route_trajectory(g, route, speed_mps=2.0, fps=1.0)
        # Every position lies on a street (x or y a multiple of 100).
        on_street = (np.isclose(tr.xy[:, 0] % 100.0, 0.0, atol=1e-6) |
                     np.isclose(tr.xy[:, 1] % 100.0, 0.0, atol=1e-6))
        assert on_street.all()

    def test_start_and_end(self, rng):
        g = CityGrid(block_m=100.0)
        route = [(0, 0), (0, 1), (1, 1)]
        tr = grid_route_trajectory(g, route, speed_mps=2.0, fps=2.0)
        assert np.allclose(tr.xy[0], [0.0, 0.0])
        assert np.allclose(tr.xy[-1], [100.0, 100.0], atol=2.0)

    def test_camera_faces_forward(self):
        g = CityGrid(block_m=100.0)
        route = [(0, 0), (0, 1)]   # heading north
        tr = grid_route_trajectory(g, route, speed_mps=1.0, fps=1.0)
        assert np.allclose(tr.azimuth, 0.0)

    def test_camera_offset(self):
        g = CityGrid(block_m=100.0)
        route = [(0, 0), (1, 0)]   # heading east
        tr = grid_route_trajectory(g, route, speed_mps=1.0, fps=1.0,
                                   camera_offset_deg=90.0)
        assert np.allclose(tr.azimuth, 180.0)

    def test_speed(self):
        g = CityGrid(block_m=100.0)
        route = [(0, 0), (1, 0), (2, 0)]
        tr = grid_route_trajectory(g, route, speed_mps=4.0, fps=10.0)
        assert tr.duration == pytest.approx(200.0 / 4.0, rel=0.05)

    def test_short_route_rejected(self):
        g = CityGrid()
        with pytest.raises(ValueError):
            grid_route_trajectory(g, [(0, 0)])

    def test_bad_speed_rejected(self):
        g = CityGrid()
        with pytest.raises(ValueError):
            grid_route_trajectory(g, [(0, 0), (0, 1)], speed_mps=0.0)
