"""Unit tests for citywide dataset generation."""

import numpy as np
import pytest

from repro.net.protocol import FOV_RECORD_SIZE_V2
from repro.traces.dataset import CityDataset, random_representative_fovs


class TestRandomRepresentativeFovs:
    def test_count_and_fields(self, rng):
        reps = random_representative_fovs(100, rng)
        assert len(reps) == 100
        for r in reps:
            assert r.t_end > r.t_start
            assert 0.0 <= r.theta < 360.0

    def test_zero(self, rng):
        assert random_representative_fovs(0, rng) == []

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            random_representative_fovs(-1, rng)

    def test_extent_respected(self, rng, origin):
        from repro.geo.earth import LocalProjection
        proj = LocalProjection(origin)
        reps = random_representative_fovs(200, rng, origin=origin,
                                          extent_m=1000.0)
        xy = proj.to_local_arrays([r.lat for r in reps],
                                  [r.lng for r in reps])
        assert xy.min() > -5.0 and xy.max() < 1005.0

    def test_reproducible(self, origin):
        a = random_representative_fovs(10, np.random.default_rng(3))
        b = random_representative_fovs(10, np.random.default_rng(3))
        assert [(r.lat, r.theta) for r in a] == [(r.lat, r.theta) for r in b]


class TestCityDataset:
    def test_generation(self):
        ds = CityDataset(n_providers=4, seed=0)
        assert len(ds.recordings) == 4
        assert len(ds.clients) == 4
        reps = ds.all_representatives()
        assert len(reps) >= 4
        # Every representative's segment is fetchable from its client.
        for rec in ds.recordings:
            client = ds.clients[rec.device_id]
            for rep in rec.bundle.representatives:
                seg = client.fetch_segment(rep.video_id, rep.segment_id)
                assert len(seg.records) >= 1

    def test_reproducible(self):
        a = CityDataset(n_providers=3, seed=11)
        b = CityDataset(n_providers=3, seed=11)
        ra = a.all_representatives()
        rb = b.all_representatives()
        assert [(r.lat, r.lng, r.theta) for r in ra] == \
            [(r.lat, r.lng, r.theta) for r in rb]

    def test_descriptor_bytes_accounting(self):
        ds = CityDataset(n_providers=3, seed=2)
        total = ds.total_descriptor_bytes()
        n_reps = len(ds.all_representatives())
        assert total >= n_reps * FOV_RECORD_SIZE_V2
        assert total < n_reps * FOV_RECORD_SIZE_V2 + 3 * 64  # small headers only

    def test_time_span_covers_all(self):
        ds = CityDataset(n_providers=3, seed=2)
        t0, t1 = ds.time_span()
        for rec in ds.recordings:
            assert t0 <= rec.trace.t[0] and rec.trace.t[-1] <= t1

    def test_random_query_point_near_paths(self):
        ds = CityDataset(n_providers=3, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(5):
            qp = ds.random_query_point(rng)
            xy = ds.projection.to_local_arrays([qp.lat], [qp.lng])[0]
            dmin = min(
                float(np.linalg.norm(rec.trajectory.xy - xy, axis=-1).min())
                for rec in ds.recordings)
            assert dmin <= ds.camera.radius

    def test_rejects_zero_providers(self):
        with pytest.raises(ValueError):
            CityDataset(n_providers=0)
