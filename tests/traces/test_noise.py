"""Unit tests for the sensor noise model."""

import numpy as np
import pytest

from repro.traces.noise import SensorNoiseModel
from repro.traces.walkers import straight_line


class TestSensorNoiseModel:
    def test_ideal_is_exact(self, rng, origin):
        traj = straight_line(duration_s=10.0, fps=5.0)
        trace = SensorNoiseModel.ideal().apply(traj, origin, rng)
        xy = trace.local_xy()
        assert np.allclose(xy - xy[0], traj.xy - traj.xy[0], atol=1e-5)
        assert np.allclose(trace.theta, traj.azimuth)

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            SensorNoiseModel(gps_white_m=-1.0)

    def test_noise_magnitude_sane(self, origin):
        model = SensorNoiseModel(gps_white_m=2.0, gps_walk_m=3.0,
                                 compass_white_deg=3.0, compass_bias_deg=0.0)
        traj = straight_line(duration_s=200.0, fps=1.0)
        errs = []
        for seed in range(5):
            trace = model.apply(traj, origin, np.random.default_rng(seed))
            xy = trace.local_xy()
            errs.append(np.linalg.norm((xy - xy[0]) - (traj.xy - traj.xy[0]),
                                       axis=-1))
        rms = float(np.sqrt(np.mean(np.concatenate(errs) ** 2)))
        # Combined white (2 m) + walk (3 m) error: RMS in a plausible band.
        # (Re-anchoring at the first fix adds the first sample's error too.)
        assert 1.5 < rms < 12.0

    def test_correlated_component_is_smooth(self, origin):
        model = SensorNoiseModel(gps_white_m=0.0, gps_walk_m=5.0,
                                 gps_walk_tau_s=60.0,
                                 compass_white_deg=0.0, compass_bias_deg=0.0)
        traj = straight_line(duration_s=100.0, fps=1.0, speed_mps=0.0)
        trace = model.apply(traj, origin, np.random.default_rng(0))
        xy = trace.local_xy()
        err = xy - xy[0]
        step = np.linalg.norm(np.diff(err, axis=0), axis=-1)
        # Gauss-Markov with tau=60s moves slowly between 1 Hz fixes.
        assert step.mean() < 2.0

    def test_compass_bias_constant_within_recording(self, origin):
        model = SensorNoiseModel(gps_white_m=0.0, gps_walk_m=0.0,
                                 compass_white_deg=0.0, compass_bias_deg=5.0)
        traj = straight_line(duration_s=10.0, fps=2.0)
        trace = model.apply(traj, origin, np.random.default_rng(1))
        offsets = (trace.theta - traj.azimuth + 180.0) % 360.0 - 180.0
        assert np.allclose(offsets, offsets[0])
        assert offsets[0] != 0.0

    def test_reproducible_with_seed(self, origin):
        model = SensorNoiseModel()
        traj = straight_line(duration_s=10.0, fps=5.0)
        a = model.apply(traj, origin, np.random.default_rng(42))
        b = model.apply(traj, origin, np.random.default_rng(42))
        assert np.allclose(a.lat, b.lat)
        assert np.allclose(a.theta, b.theta)

    def test_shared_projection(self, origin, projection, rng):
        model = SensorNoiseModel.ideal()
        t1 = straight_line(duration_s=5.0, fps=2.0, start_xy=(0.0, 0.0))
        t2 = straight_line(duration_s=5.0, fps=2.0, start_xy=(100.0, 0.0))
        a = model.apply(t1, origin, rng, projection=projection)
        b = model.apply(t2, origin, rng, projection=projection)
        # Different anchors would collapse both to the origin; a shared
        # projection must preserve the 100 m offset.
        dx = b.local_xy()[0, 0] + (b.projection.to_local(b[0].point)[0]
                                   - b.local_xy()[0, 0])
        assert abs(
            projection.to_local(b[0].point)[0]
            - projection.to_local(a[0].point)[0] - 100.0) < 0.01
