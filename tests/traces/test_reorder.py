"""Unit tests for the out-of-order sensor reorder buffer."""

import numpy as np
import pytest

from repro.traces.reorder import ReorderBuffer


class TestReorderBuffer:
    def test_in_order_passthrough_after_delay(self):
        buf = ReorderBuffer(max_delay_s=0.0)
        out = []
        for t in (1.0, 2.0, 3.0):
            out.extend(buf.push(t, f"e{t}"))
        # Zero delay: everything at or below the watermark releases.
        assert out == ["e1.0", "e2.0", "e3.0"]

    def test_reorders_bounded_disorder(self):
        buf = ReorderBuffer(max_delay_s=0.5)
        arrivals = [(0.0, "a"), (0.3, "c"), (0.1, "b"), (0.9, "d"),
                    (1.5, "e")]
        out = []
        for t, e in arrivals:
            out.extend(buf.push(t, e))
        out.extend(buf.flush())
        assert out == ["a", "b", "c", "d", "e"]
        assert buf.dropped == 0

    def test_drops_events_older_than_released(self):
        buf = ReorderBuffer(max_delay_s=0.1)
        out = []
        out += buf.push(0.0, "a")
        out += buf.push(5.0, "b")         # watermark 5.0 -> releases "a"
        assert out == ["a"]
        out += buf.flush()                # delivers "b"; released = 5.0
        assert out == ["a", "b"]
        assert buf.push(1.0, "stale") == []
        assert buf.dropped == 1

    def test_late_but_not_overtaken_still_delivered(self):
        # An event older than the watermark but newer than anything
        # already *released* is salvaged, not dropped.
        buf = ReorderBuffer(max_delay_s=0.1)
        assert buf.push(0.0, "a") == []
        assert buf.push(5.0, "b") == ["a"]       # released = 0.0
        assert buf.push(1.0, "salvage") == ["salvage"]

    def test_duplicate_timestamps_dropped(self):
        buf = ReorderBuffer(max_delay_s=1.0)
        buf.push(1.0, "a")
        buf.push(1.0, "dup")
        out = buf.flush()
        assert out == ["a"]
        assert buf.dropped == 1

    def test_stream_helper(self, rng):
        true_t = np.sort(rng.uniform(0, 100, 200))
        # Jitter arrival order by up to 1 s of event time.
        arrival_key = true_t + rng.uniform(0, 1.0, 200)
        order = np.argsort(arrival_key)
        buf = ReorderBuffer(max_delay_s=1.0)
        out = list(buf.stream((float(true_t[i]), float(true_t[i]))
                              for i in order))
        delivered = np.asarray(out)
        assert np.all(np.diff(delivered) > 0), "delivery must be in order"
        # Bounded disorder of 1 s with a 1 s buffer: nothing dropped.
        assert buf.dropped == 0
        assert len(out) == 200

    def test_feeds_streaming_segmenter(self, camera):
        """End to end: jittered sensor events -> buffer -> segmenter."""
        from repro import FoV, StreamingSegmenter
        from repro.traces.noise import SensorNoiseModel
        from repro.traces.scenarios import rotation_scenario
        trace = rotation_scenario(duration_s=20, fps=10,
                                  noise=SensorNoiseModel.ideal())
        records = list(trace)
        rng = np.random.default_rng(0)
        order = np.argsort(np.arange(len(records))
                           + rng.uniform(0, 3, len(records)))
        buf = ReorderBuffer(max_delay_s=0.5)
        seg = StreamingSegmenter(camera)
        closed = 0
        for rec in buf.stream((records[i].t, records[i]) for i in order):
            if seg.push(rec) is not None:
                closed += 1
        assert closed + 1 >= 2, "segmentation proceeded on reordered input"

    def test_validation(self):
        with pytest.raises(ValueError):
            ReorderBuffer(max_delay_s=-1.0)
