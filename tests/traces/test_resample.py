"""Unit tests for sensor-stream fusion."""

import numpy as np
import pytest

from repro.geometry.angles import angular_difference
from repro.traces.resample import (
    fuse_sensor_streams,
    interp_azimuths,
    interp_positions,
)


class TestInterpPositions:
    def test_midpoint(self):
        lat, lng = interp_positions([0.5], [0.0, 1.0], [40.0, 40.001],
                                    [116.0, 116.002])
        assert lat[0] == pytest.approx(40.0005)
        assert lng[0] == pytest.approx(116.001)

    def test_clamps_outside_range(self):
        lat, _ = interp_positions([-1.0, 5.0], [0.0, 1.0], [40.0, 41.0],
                                  [116.0, 116.0])
        assert lat[0] == 40.0 and lat[1] == 41.0

    def test_exact_sample_points(self):
        lat, _ = interp_positions([0.0, 1.0], [0.0, 1.0], [40.0, 41.0],
                                  [116.0, 116.0])
        assert list(lat) == [40.0, 41.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            interp_positions([0.0], [], [], [])
        with pytest.raises(ValueError):
            interp_positions([0.0], [0.0, 0.0], [40.0, 40.0], [116.0, 116.0])
        with pytest.raises(ValueError):
            interp_positions([0.0], [0.0, 1.0], [40.0], [116.0, 116.0])


class TestInterpAzimuths:
    def test_simple_midpoint(self):
        out = interp_azimuths([0.5], [0.0, 1.0], [10.0, 20.0])
        assert out[0] == pytest.approx(15.0)

    def test_shorter_arc_across_wrap(self):
        # 350 -> 10 must pass through 0, not 180.
        out = interp_azimuths([0.5], [0.0, 1.0], [350.0, 10.0])
        assert angular_difference(out[0], 0.0) < 1e-9

    def test_long_pan_tracks_continuously(self):
        # A full slow turn sampled sparsely interpolates monotonically.
        compass_t = np.arange(0.0, 10.1, 1.0)
        theta = (36.0 * compass_t) % 360.0
        frame_t = np.arange(0.0, 10.0, 0.1)
        out = interp_azimuths(frame_t, compass_t, theta)
        expected = (36.0 * frame_t) % 360.0
        assert np.allclose(out, expected, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            interp_azimuths([0.0], [0.0, 1.0], [10.0])


class TestFuseSensorStreams:
    def test_realistic_rates(self):
        """30 fps frames from 1 Hz GPS and 10 Hz compass."""
        frame_t = np.arange(0.0, 5.0, 1.0 / 30.0)
        fix_t = np.arange(0.0, 6.0, 1.0)
        lat = 40.0 + 1e-5 * fix_t
        lng = np.full_like(fix_t, 116.3)
        compass_t = np.arange(0.0, 5.5, 0.1)
        theta = (5.0 * compass_t) % 360.0
        trace = fuse_sensor_streams(frame_t, fix_t, lat, lng,
                                    compass_t, theta)
        assert len(trace) == frame_t.size
        # Interpolated values stay within sensor envelopes.
        assert trace.lat.min() >= 40.0 - 1e-12
        assert trace.lat.max() <= lat.max() + 1e-12
        assert np.allclose(trace.theta, (5.0 * frame_t) % 360.0, atol=1e-9)

    def test_fused_trace_feeds_segmentation(self, camera):
        """End to end: raw streams -> fused trace -> Algorithm 1."""
        from repro import segment_trace
        frame_t = np.arange(0.0, 30.0, 1.0 / 10.0)
        fix_t = np.arange(0.0, 31.0, 1.0)
        lat = np.full_like(fix_t, 40.0)
        lng = np.full_like(fix_t, 116.3)
        compass_t = np.arange(0.0, 30.5, 0.5)
        theta = (12.0 * compass_t) % 360.0        # the rotation scenario
        trace = fuse_sensor_streams(frame_t, fix_t, lat, lng,
                                    compass_t, theta)
        segs = segment_trace(trace, camera)
        # 12 deg/s, threshold 0.5 -> cuts every ~2.5 s.
        assert 10 <= len(segs) <= 14

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            fuse_sensor_streams([], [0.0], [40.0], [116.0], [0.0], [0.0])
