"""Unit tests for the paper's scenario presets."""

import numpy as np
import pytest

from repro.traces.noise import SensorNoiseModel
from repro.traces.scenarios import (
    bike_turn_scenario,
    drive_scenario,
    rotation_scenario,
    translation_scenario,
    walk_scenario,
)

IDEAL = SensorNoiseModel.ideal()


class TestScenarios:
    def test_rotation_holds_position(self):
        tr = rotation_scenario(duration_s=10, fps=5, noise=IDEAL)
        xy = tr.local_xy()
        assert np.allclose(xy, xy[0], atol=1e-6)
        assert tr.theta[0] != tr.theta[-1]

    def test_translation_parallel_constant_azimuth(self):
        tr = translation_scenario(theta_p=0.0, duration_s=10, fps=5,
                                  noise=IDEAL)
        assert np.allclose(tr.theta, tr.theta[0])
        xy = tr.local_xy()
        moved = np.linalg.norm(xy[-1] - xy[0])
        assert moved == pytest.approx(1.4 * 10.0, rel=0.05)

    def test_translation_perpendicular_geometry(self):
        tr = translation_scenario(theta_p=90.0, duration_s=10, fps=5,
                                  noise=IDEAL)
        xy = tr.local_xy()
        # Motion is north (heading 0), camera faces east (90).
        assert np.allclose(tr.theta, 90.0)
        assert xy[-1, 1] > 10.0 and abs(xy[-1, 0]) < 1e-6

    def test_bike_turn_sweeps_90(self):
        tr = bike_turn_scenario(fps=5, noise=IDEAL)
        assert tr.theta[0] == pytest.approx(0.0)
        assert tr.theta[-1] == pytest.approx(90.0)

    def test_walk_and_drive_run(self):
        assert len(walk_scenario(duration_s=5, fps=5, noise=IDEAL)) == 26
        assert len(drive_scenario(duration_s=5, fps=5, noise=IDEAL)) == 26

    def test_noise_defaults_applied(self):
        noisy = translation_scenario(duration_s=10, fps=5, seed=1)
        clean = translation_scenario(duration_s=10, fps=5, noise=IDEAL, seed=1)
        assert not np.allclose(noisy.theta, clean.theta)

    def test_seed_reproducibility(self):
        a = walk_scenario(duration_s=5, fps=5, seed=9)
        b = walk_scenario(duration_s=5, fps=5, seed=9)
        assert np.allclose(a.lat, b.lat) and np.allclose(a.theta, b.theta)

    def test_shared_projection_placement(self, projection):
        a = rotation_scenario(duration_s=2, fps=2, noise=IDEAL,
                              projection=projection)
        b = translation_scenario(duration_s=2, fps=2, noise=IDEAL,
                                 projection=projection)
        # Both scenarios anchor at the same city origin under a shared
        # projection, so their first fixes coincide.
        assert a[0].lat == pytest.approx(b[0].lat)
        assert a[0].lng == pytest.approx(b[0].lng)
