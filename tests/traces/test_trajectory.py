"""Unit tests for the ideal trajectory type."""

import numpy as np
import pytest

from repro.traces.trajectory import Trajectory


def make(n=5, dt=1.0):
    t = np.arange(n) * dt
    xy = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=-1)
    az = np.full(n, 90.0)
    return Trajectory(t=t, xy=xy, azimuth=az)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trajectory(t=np.array([]), xy=np.empty((0, 2)), azimuth=np.array([]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory(t=np.array([0.0, 1.0]), xy=np.zeros((2, 3)),
                       azimuth=np.zeros(2))

    def test_rejects_non_increasing_time(self):
        with pytest.raises(ValueError):
            Trajectory(t=np.array([0.0, 0.0]), xy=np.zeros((2, 2)),
                       azimuth=np.zeros(2))

    def test_azimuth_normalised(self):
        tr = Trajectory(t=np.array([0.0]), xy=np.zeros((1, 2)),
                        azimuth=np.array([-90.0]))
        assert tr.azimuth[0] == pytest.approx(270.0)


class TestDerived:
    def test_duration_and_length(self):
        tr = make(5)
        assert tr.duration == 4.0
        assert tr.path_length() == pytest.approx(4.0)

    def test_travel_headings_east(self):
        tr = make(4)
        assert np.allclose(tr.travel_headings(), 90.0)

    def test_travel_headings_single_sample(self):
        tr = make(1)
        assert tr.travel_headings().shape == (1,)

    def test_concat(self):
        a = make(3)
        b = make(3).shifted(dt=10.0, dxy=(100.0, 0.0))
        c = a.concat(b)
        assert len(c) == 6
        assert c.t[-1] == pytest.approx(12.0)

    def test_concat_requires_later_clock(self):
        a = make(3)
        with pytest.raises(ValueError):
            a.concat(make(3))

    def test_shifted(self):
        tr = make(3).shifted(dt=5.0, dxy=(1.0, 2.0))
        assert tr.t[0] == 5.0
        assert np.allclose(tr.xy[0], [1.0, 2.0])


class TestToFoVTrace:
    def test_roundtrip_geometry(self, origin):
        tr = make(10)
        fov_trace = tr.to_fov_trace(origin)
        assert len(fov_trace) == 10
        xy = fov_trace.local_xy()
        # Same shape as the source, re-anchored at the first point.
        assert np.allclose(xy - xy[0], tr.xy - tr.xy[0], atol=1e-5)
        assert np.allclose(fov_trace.theta, tr.azimuth)
