"""Unit tests for the motion generators."""

import numpy as np
import pytest

from repro.geometry.angles import angular_difference
from repro.traces.walkers import (
    bike_ride_with_turn,
    random_waypoint,
    rotate_in_place,
    straight_line,
)


class TestStraightLine:
    def test_speed_and_heading(self):
        tr = straight_line(speed_mps=2.0, duration_s=10.0, fps=10.0,
                           heading_deg=90.0)
        assert tr.path_length() == pytest.approx(20.0, rel=1e-6)
        assert np.allclose(tr.travel_headings(), 90.0)

    def test_camera_offset(self):
        tr = straight_line(heading_deg=0.0, camera_offset_deg=90.0,
                           duration_s=2.0, fps=5.0)
        assert np.allclose(tr.azimuth, 90.0)

    def test_frame_count(self):
        tr = straight_line(duration_s=3.0, fps=30.0)
        assert len(tr) == 91  # 3 s at 30 fps, inclusive endpoints

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            straight_line(duration_s=0.0)
        with pytest.raises(ValueError):
            straight_line(fps=0.0)


class TestRotateInPlace:
    def test_position_fixed(self):
        tr = rotate_in_place(duration_s=5.0, fps=10.0, position=(3.0, 4.0))
        assert np.allclose(tr.xy, [3.0, 4.0])

    def test_rotation_rate(self):
        tr = rotate_in_place(rate_deg_s=10.0, duration_s=9.0, fps=1.0,
                             start_azimuth_deg=0.0)
        assert tr.azimuth[0] == 0.0
        assert tr.azimuth[-1] == pytest.approx(90.0)

    def test_wraps_past_360(self):
        tr = rotate_in_place(rate_deg_s=90.0, duration_s=8.0, fps=1.0)
        assert np.all(tr.azimuth < 360.0)


class TestBikeRide:
    def test_three_phases(self):
        tr = bike_ride_with_turn(speed_mps=4.0, leg_s=10.0, turn_s=2.0,
                                 turn_deg=90.0, fps=10.0, heading_deg=0.0)
        # Before the turn: heading 0; after: heading 90.
        assert np.allclose(tr.azimuth[: 10 * 10], 0.0)
        assert np.allclose(tr.azimuth[-(10 * 10 - 5):], 90.0)

    def test_turn_is_smooth(self):
        tr = bike_ride_with_turn(leg_s=5.0, turn_s=2.0, fps=30.0)
        steps = np.abs(np.diff(np.unwrap(np.radians(tr.azimuth))))
        # No single inter-frame jump exceeds the turn rate (45 deg/s at 30 fps).
        assert np.degrees(steps).max() < 2.0

    def test_path_length_matches_speed(self):
        tr = bike_ride_with_turn(speed_mps=4.0, leg_s=10.0, turn_s=2.0, fps=30.0)
        assert tr.path_length() == pytest.approx(4.0 * tr.duration, rel=1e-3)

    def test_displacement_turns_the_corner(self):
        tr = bike_ride_with_turn(speed_mps=4.0, leg_s=10.0, turn_s=1.0,
                                 fps=10.0, heading_deg=0.0, turn_deg=90.0)
        end = tr.xy[-1]
        assert end[1] > 30.0   # went north first
        assert end[0] > 30.0   # then east

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            bike_ride_with_turn(leg_s=0.0)


class TestRandomWaypoint:
    def test_stays_in_area(self, rng):
        tr = random_waypoint(rng, area_m=200.0, duration_s=300.0, fps=1.0)
        assert np.all(tr.xy >= -1e-9) and np.all(tr.xy <= 200.0 + 1e-9)

    def test_speed_bounded(self, rng):
        tr = random_waypoint(rng, area_m=500.0, speed_range=(1.0, 2.0),
                             pause_range=(0.0, 0.0), duration_s=120.0, fps=1.0)
        step = np.linalg.norm(np.diff(tr.xy, axis=0), axis=-1)
        assert step.max() <= 2.0 + 1e-9

    def test_reproducible(self):
        a = random_waypoint(np.random.default_rng(7), duration_s=60.0)
        b = random_waypoint(np.random.default_rng(7), duration_s=60.0)
        assert np.allclose(a.xy, b.xy)
        assert np.allclose(a.azimuth, b.azimuth)

    def test_camera_tracks_travel(self, rng):
        tr = random_waypoint(rng, pause_range=(0.0, 0.0), duration_s=120.0,
                             fps=1.0, camera_offset_deg=0.0)
        # While moving, the azimuth matches the direction of travel.
        d = np.diff(tr.xy, axis=0)
        moving = np.linalg.norm(d, axis=-1) > 1e-9
        heading = np.degrees(np.arctan2(d[moving, 0], d[moving, 1]))
        assert np.all(np.asarray(
            angular_difference(heading, tr.azimuth[:-1][moving])) < 1.0)
