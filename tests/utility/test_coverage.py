"""Unit tests for the Section VII utility model."""

import numpy as np
import pytest

from repro import CameraModel, Query, RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.utility.coverage import (
    fov_utility_rectangles,
    global_utility,
    marginal_utility,
    set_utility,
    single_utility,
)

P = GeoPoint(40.0, 116.3)


def rep(theta=0.0, t0=0.0, t1=10.0, sid=0):
    return RepresentativeFoV(lat=40.0, lng=116.3, theta=theta,
                             t_start=t0, t_end=t1, video_id="v", segment_id=sid)


def query(t0=0.0, t1=100.0):
    return Query(t_start=t0, t_end=t1, center=P, radius=50.0)


class TestRectangles:
    def test_global_utility(self, camera):
        assert global_utility(query(0, 100)) == 36000.0

    def test_simple_rectangle(self, camera):
        rects = fov_utility_rectangles(rep(theta=90.0), camera, query())
        assert len(rects) == 1
        a_lo, t_lo, a_hi, t_hi = rects[0]
        assert (a_lo, a_hi) == (60.0, 120.0)
        assert (t_lo, t_hi) == (0.0, 10.0)

    def test_wrapping_splits_in_two(self, camera):
        rects = fov_utility_rectangles(rep(theta=10.0), camera, query())
        assert len(rects) == 2
        total = sum((r[2] - r[0]) for r in rects)
        assert total == pytest.approx(camera.viewing_angle)

    def test_outside_window_empty(self, camera):
        assert fov_utility_rectangles(rep(t0=200, t1=210), camera,
                                      query(0, 100)) == []

    def test_clipped_to_window(self, camera):
        rects = fov_utility_rectangles(rep(theta=90.0, t0=-5.0, t1=5.0),
                                       camera, query(0, 100))
        assert rects[0][1] == 0.0 and rects[0][3] == 5.0


class TestSetUtility:
    def test_single(self, camera):
        # 60 deg aperture x 10 s = 600 utility units.
        assert single_utility(rep(theta=90.0), camera, query()) == 600.0

    def test_never_exceeds_global(self, camera, rng):
        reps = [rep(theta=float(rng.uniform(0, 360)),
                    t0=float(rng.uniform(0, 90)),
                    t1=float(rng.uniform(90, 100)), sid=i)
                for i in range(12)]
        assert set_utility(reps, camera, query()) <= global_utility(query())

    def test_disjoint_adds(self, camera):
        a = rep(theta=90.0, t0=0, t1=10)
        b = rep(theta=90.0, t0=20, t1=30)
        assert set_utility([a, b], camera, query()) == pytest.approx(1200.0)

    def test_duplicates_count_once(self, camera):
        a = rep(theta=90.0)
        assert set_utility([a, a, a], camera, query()) == pytest.approx(600.0)

    def test_monotone(self, camera, rng):
        reps = [rep(theta=float(rng.uniform(0, 360)),
                    t0=float(rng.uniform(0, 50)),
                    t1=float(rng.uniform(50, 100)), sid=i)
                for i in range(8)]
        values = [set_utility(reps[:k], camera, query())
                  for k in range(len(reps) + 1)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_submodular(self, camera, rng):
        """Marginal gains shrink as the selected set grows."""
        reps = [rep(theta=float(rng.uniform(0, 360)),
                    t0=float(rng.uniform(0, 50)),
                    t1=float(rng.uniform(50, 100)), sid=i)
                for i in range(7)]
        new = rep(theta=45.0, t0=10, t1=60, sid=99)
        q = query()
        small = reps[:2]
        large = reps[:6]
        gain_small = marginal_utility(new, small, camera, q)
        gain_large = marginal_utility(new, large, camera, q)
        assert gain_large <= gain_small + 1e-9

    def test_empty_set_zero(self, camera):
        assert set_utility([], camera, query()) == 0.0
