"""Unit tests for the budgeted incentive mechanism."""

import numpy as np
import pytest

from repro import CameraModel, Query, RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.utility.incentive import (
    PricedVideo,
    brute_force_selection,
    greedy_budgeted_selection,
    random_selection,
)

P = GeoPoint(40.0, 116.3)
QUERY = Query(t_start=0.0, t_end=60.0, center=P, radius=50.0)


def pv(theta, t0, t1, cost, sid=0):
    return PricedVideo(
        fov=RepresentativeFoV(lat=40.0, lng=116.3, theta=theta,
                              t_start=t0, t_end=t1, video_id="v",
                              segment_id=sid),
        cost=cost,
    )


def random_candidates(rng, n):
    return [pv(float(rng.uniform(0, 360)), float(rng.uniform(0, 40)),
               float(rng.uniform(40, 60)), float(rng.uniform(1, 5)), sid=i)
            for i in range(n)]


class TestPricedVideo:
    def test_rejects_free_items(self):
        with pytest.raises(ValueError):
            pv(0.0, 0.0, 10.0, cost=0.0)


class TestGreedy:
    def test_respects_budget(self, camera, rng):
        cands = random_candidates(rng, 12)
        res = greedy_budgeted_selection(cands, budget=6.0, camera=camera,
                                        query=QUERY)
        assert res.spent <= 6.0
        assert res.utility >= 0.0

    def test_rejects_bad_budget(self, camera):
        with pytest.raises(ValueError):
            greedy_budgeted_selection([], budget=0.0, camera=camera,
                                      query=QUERY)

    def test_empty_candidates(self, camera):
        res = greedy_budgeted_selection([], budget=5.0, camera=camera,
                                        query=QUERY)
        assert res.chosen == () and res.utility == 0.0

    def test_prefers_cheap_coverage(self, camera):
        # Same coverage, different price: greedy must take the cheap one.
        cheap = pv(90.0, 0.0, 30.0, cost=1.0, sid=0)
        pricey = pv(90.0, 0.0, 30.0, cost=4.0, sid=1)
        res = greedy_budgeted_selection([pricey, cheap], budget=1.5,
                                        camera=camera, query=QUERY)
        assert res.chosen == (cheap,)

    def test_single_item_safeguard(self, camera):
        # Many tiny-utility cheap items vs one big exclusive item whose
        # cost consumes the whole budget: the safeguard must compare.
        big = pv(90.0, 0.0, 60.0, cost=10.0, sid=0)       # covers a lot
        smalls = [pv(90.0, float(i), float(i) + 0.2, cost=1.0, sid=i + 1)
                  for i in range(5)]
        res = greedy_budgeted_selection([big, *smalls], budget=10.0,
                                        camera=camera, query=QUERY)
        assert res.utility >= 60.0 * 60.0 * 0.9  # close to the big item's area

    def test_guarantee_vs_brute_force(self, camera, rng):
        """Greedy achieves >= (1 - 1/e)/2 of optimal (usually much more)."""
        bound = (1.0 - 1.0 / np.e) / 2.0
        for trial in range(5):
            cands = random_candidates(np.random.default_rng(trial), 8)
            budget = 8.0
            opt = brute_force_selection(cands, budget, camera, QUERY)
            greedy = greedy_budgeted_selection(cands, budget, camera, QUERY)
            if opt.utility > 0:
                assert greedy.utility >= bound * opt.utility - 1e-9

    def test_beats_random_on_average(self, camera):
        rng = np.random.default_rng(9)
        cands = random_candidates(rng, 14)
        budget = 10.0
        greedy = greedy_budgeted_selection(cands, budget, camera, QUERY)
        rand_utils = [
            random_selection(cands, budget, camera, QUERY,
                             np.random.default_rng(s)).utility
            for s in range(10)]
        assert greedy.utility >= np.mean(rand_utils) - 1e-9


class TestBruteForce:
    def test_exact_on_tiny_instance(self, camera):
        a = pv(90.0, 0.0, 30.0, cost=2.0, sid=0)     # 60 x 30
        b = pv(90.0, 30.0, 60.0, cost=2.0, sid=1)    # 60 x 30 disjoint time
        c = pv(90.0, 0.0, 60.0, cost=3.9, sid=2)     # 60 x 60 alone
        res = brute_force_selection([a, b, c], budget=4.0, camera=camera,
                                    query=QUERY)
        assert res.utility == pytest.approx(3600.0)

    def test_size_cap(self, camera, rng):
        with pytest.raises(ValueError):
            brute_force_selection(random_candidates(rng, 17), 5.0, camera,
                                  QUERY)


class TestRandomSelection:
    def test_budget_respected(self, camera, rng):
        cands = random_candidates(rng, 10)
        res = random_selection(cands, 5.0, camera, QUERY, rng)
        assert res.spent <= 5.0
