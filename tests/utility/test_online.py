"""Tests for the online (zero arrival-departure) incentive mechanism."""

import numpy as np
import pytest

from repro import CameraModel, Query
from repro.core.fov import RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.utility.incentive import PricedVideo, greedy_budgeted_selection
from repro.utility.online import OnlineSelection, online_threshold_selection

CAMERA = CameraModel()
QUERY = Query(t_start=0.0, t_end=120.0, center=GeoPoint(40.0, 116.3),
              radius=50.0)


def pv(theta, t0, t1, cost, sid=0):
    return PricedVideo(
        fov=RepresentativeFoV(lat=40.0, lng=116.3, theta=theta,
                              t_start=t0, t_end=t1, video_id="v",
                              segment_id=sid),
        cost=cost,
    )


def random_arrivals(rng, n):
    return [pv(float(rng.uniform(0, 360)), float(rng.uniform(0, 80)),
               float(rng.uniform(80, 120)), float(rng.uniform(1, 5)), sid=i)
            for i in range(n)]


class TestOnlineSelection:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineSelection(budget=0.0, camera=CAMERA, query=QUERY,
                            density_threshold=1.0)
        with pytest.raises(ValueError):
            OnlineSelection(budget=1.0, camera=CAMERA, query=QUERY,
                            density_threshold=-1.0)

    def test_budget_never_exceeded(self, rng):
        state = OnlineSelection(budget=6.0, camera=CAMERA, query=QUERY,
                                density_threshold=0.0)
        for cand in random_arrivals(rng, 30):
            state.offer(cand)
        assert state.spent <= 6.0

    def test_zero_threshold_accepts_affordable(self):
        state = OnlineSelection(budget=10.0, camera=CAMERA, query=QUERY,
                                density_threshold=0.0)
        assert state.offer(pv(90.0, 0.0, 60.0, cost=4.0))
        assert state.utility > 0

    def test_high_threshold_rejects_everything(self, rng):
        state = OnlineSelection(budget=100.0, camera=CAMERA, query=QUERY,
                                density_threshold=1e9)
        for cand in random_arrivals(rng, 10):
            assert not state.offer(cand)
        assert state.result().utility == 0.0

    def test_duplicate_arrivals_rejected_by_marginal_gain(self):
        # Same rectangle twice: the second has zero marginal utility.
        state = OnlineSelection(budget=100.0, camera=CAMERA, query=QUERY,
                                density_threshold=1.0)
        first = pv(90.0, 0.0, 60.0, cost=2.0, sid=0)
        dup = pv(90.0, 0.0, 60.0, cost=2.0, sid=1)
        assert state.offer(first)
        assert not state.offer(dup)


class TestOnlineThresholdSelection:
    def test_empty_arrivals(self):
        out = online_threshold_selection([], 10.0, CAMERA, QUERY)
        assert out.utility == 0.0 and out.chosen == ()

    def test_adaptive_threshold_spends(self, rng):
        arrivals = random_arrivals(rng, 40)
        out = online_threshold_selection(arrivals, 15.0, CAMERA, QUERY)
        assert out.spent <= 15.0
        assert out.utility > 0.0, "the sampled threshold must admit buys"

    def test_competitive_with_offline_greedy(self):
        """Across random arrival orders, the online mechanism achieves a
        reasonable fraction of the offline greedy's utility."""
        base_rng = np.random.default_rng(5)
        cands = random_arrivals(base_rng, 30)
        budget = 12.0
        offline = greedy_budgeted_selection(cands, budget, CAMERA, QUERY)
        assert offline.utility > 0
        ratios = []
        for seed in range(8):
            order = np.random.default_rng(seed).permutation(len(cands))
            arrivals = [cands[i] for i in order]
            online = online_threshold_selection(arrivals, budget, CAMERA,
                                                QUERY)
            ratios.append(online.utility / offline.utility)
        assert float(np.mean(ratios)) > 0.35, (
            f"online/offline mean ratio too low: {np.mean(ratios):.2f}")

    def test_explicit_threshold_respected(self, rng):
        arrivals = random_arrivals(rng, 20)
        strict = online_threshold_selection(arrivals, 20.0, CAMERA, QUERY,
                                            density_threshold=1e9)
        assert strict.utility == 0.0
        loose = online_threshold_selection(arrivals, 20.0, CAMERA, QUERY,
                                           density_threshold=0.0)
        assert loose.utility > 0.0
