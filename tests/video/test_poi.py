"""Unit tests for POI discovery over harvested coverage."""

import numpy as np
import pytest

from repro.core.camera import CameraModel
from repro.core.fov import RepresentativeFoV
from repro.geo.coords import GeoPoint
from repro.geo.earth import LocalProjection
from repro.video import POICell, discover_pois

ORIGIN = GeoPoint(lat=40.003, lng=116.326)
PROJ = LocalProjection(ORIGIN)


def fov_at(x, y, theta, t0=0.0, t1=10.0, vid="v0", sid=0):
    p = PROJ.to_geo(float(x), float(y))
    return RepresentativeFoV(lat=p.lat, lng=p.lng, theta=float(theta),
                             t_start=t0, t_end=t1, video_id=vid,
                             segment_id=sid)


@pytest.fixture
def camera():
    return CameraModel(half_angle=30.0, radius=100.0)


class TestDiscoverPois:
    def test_empty_input(self, camera):
        assert discover_pois([], camera) == []

    def test_converging_gazes_make_the_hotspot(self, camera):
        # Four observers on a ring, all looking at the centre: the
        # centre cell is seen by all four, the periphery by fewer.
        ring = [fov_at(0, -60, 0.0, vid="a"), fov_at(0, 60, 180.0, vid="b"),
                fov_at(-60, 0, 90.0, vid="c"), fov_at(60, 0, 270.0, vid="d")]
        cells = discover_pois(ring, camera, projection=PROJ, cell_m=20.0,
                              top_k=3)
        assert cells and isinstance(cells[0], POICell)
        best = cells[0]
        assert best.observers == 4
        # The hotspot cell centre is near the ring centre (0, 0).
        assert abs(best.x) <= 20.0 and abs(best.y) <= 20.0
        # Counts are non-increasing down the ranking.
        counts = [c.observers for c in cells]
        assert counts == sorted(counts, reverse=True)

    def test_utility_rewards_angular_diversity(self, camera):
        # Equal observer counts, but one crowd watches from diverse
        # angles and the other from a single direction: the paper's
        # Section VII utility must rank the diverse crowd higher.
        diverse = [fov_at(0, -60, 0.0, vid="a"), fov_at(0, 60, 180.0, vid="b"),
                   fov_at(-60, 0, 90.0, vid="c"), fov_at(60, 0, 270.0, vid="d")]
        aligned = [fov_at(-5 * k, -60, 0.0, vid=f"v{k}") for k in range(4)]
        u_div = discover_pois(diverse, camera, projection=PROJ,
                              cell_m=20.0, top_k=1)[0]
        u_ali = discover_pois(aligned, camera, projection=PROJ,
                              cell_m=20.0, top_k=1)[0]
        assert u_div.observers == u_ali.observers == 4
        assert u_div.utility > u_ali.utility
        assert 0.0 <= u_ali.utility <= u_div.utility <= 1.0

    def test_time_window_filters_observers(self, camera):
        fovs = [fov_at(0, -60, 0.0, t0=0.0, t1=10.0, vid="early"),
                fov_at(0, 60, 180.0, t0=100.0, t1=110.0, vid="late")]
        early = discover_pois(fovs, camera, projection=PROJ,
                              t_window=(0.0, 50.0), top_k=1)
        assert early and early[0].observers == 1
        none = discover_pois(fovs, camera, projection=PROJ,
                             t_window=(500.0, 600.0))
        assert none == []

    def test_top_k_bounds_output(self, camera):
        rng = np.random.default_rng(5)
        fovs = [fov_at(x, y, th, vid=f"v{i}")
                for i, (x, y, th) in enumerate(zip(
                    rng.uniform(-200, 200, 30), rng.uniform(-200, 200, 30),
                    rng.uniform(0, 360, 30)))]
        assert len(discover_pois(fovs, camera, projection=PROJ,
                                 top_k=4)) <= 4
        with pytest.raises(ValueError):
            discover_pois(fovs, camera, top_k=0)

    def test_deterministic(self, camera):
        rng = np.random.default_rng(9)
        fovs = [fov_at(x, y, th, vid=f"v{i}")
                for i, (x, y, th) in enumerate(zip(
                    rng.uniform(-150, 150, 20), rng.uniform(-150, 150, 20),
                    rng.uniform(0, 360, 20)))]
        a = discover_pois(fovs, camera, projection=PROJ, top_k=5)
        b = discover_pois(fovs, camera, projection=PROJ, top_k=5)
        assert a == b

    def test_geo_and_local_coordinates_agree(self, camera):
        cells = discover_pois([fov_at(0, 0, 0.0)], camera, projection=PROJ,
                              top_k=1)
        cell = cells[0]
        x, y = PROJ.to_local(GeoPoint(cell.lat, cell.lng))
        assert x == pytest.approx(cell.x, abs=1e-6)
        assert y == pytest.approx(cell.y, abs=1e-6)
