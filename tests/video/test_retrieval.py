"""Integration tests for the video-to-video retrieval pipeline."""

import numpy as np
import pytest

from repro.core.camera import CameraModel
from repro.core.server import CloudServer
from repro.shard import ShardedCloudServer
from repro.traces.dataset import random_video_trajectories
from repro.traces.scenarios import CITY_ORIGIN
from repro.video import VideoQuery, retrieve_videos


@pytest.fixture(scope="module")
def workload():
    """A dense 400-video city: every query trajectory has neighbours."""
    rng = np.random.default_rng(7)
    return random_video_trajectories(400, 8, rng, extent_m=800.0,
                                     horizon_s=4000.0)


def video_query_for(records, video_id, **overrides):
    segs = tuple(sorted((r for r in records if r.video_id == video_id),
                        key=lambda r: r.segment_id))
    params = dict(t_start=min(r.t_start for r in records),
                  t_end=max(r.t_end for r in records),
                  radius=120.0, top_k=5, sim_threshold=0.15,
                  per_segment_top_n=64, exclude=frozenset({video_id}))
    params.update(overrides)
    return VideoQuery(segments=segs, **params)


def summary(result):
    return [(m.video_id, m.score, m.lcv) for m in result.ranked]


class TestVideoQueryValidation:
    def test_needs_segments(self):
        with pytest.raises(ValueError):
            VideoQuery(segments=(), t_start=0.0, t_end=1.0)

    def test_rejects_unknown_scorer(self, workload):
        with pytest.raises(ValueError):
            video_query_for(workload, "vid-00012", scorer="lcs")

    def test_rejects_bad_threshold(self, workload):
        with pytest.raises(ValueError):
            video_query_for(workload, "vid-00012", sim_threshold=1.5)

    def test_hashable_frozen(self, workload):
        vq = video_query_for(workload, "vid-00012")
        assert hash(vq) == hash(video_query_for(workload, "vid-00012"))


class TestRetrieval:
    def test_finds_overlapping_videos(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=0)
        server.ingest(workload)
        result = server.query_video(video_query_for(workload, "vid-00012"))
        assert result.ranked, "dense workload must surface neighbours"
        assert result.videos_considered >= len(result.ranked)
        assert result.segments_harvested == len(result.harvested)
        assert result.elapsed_s > 0.0
        # Canonical total order (-score, video_id).
        keys = [(-m.score, m.video_id) for m in result.ranked]
        assert keys == sorted(keys)
        # Leave-one-out: the query video never ranks itself.
        assert "vid-00012" not in result.keys()
        assert all(f.video_id != "vid-00012" for f in result.harvested)

    def test_top_k_truncates(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=0)
        server.ingest(workload)
        full = server.query_video(
            video_query_for(workload, "vid-00012", top_k=100))
        two = server.query_video(video_query_for(workload, "vid-00012",
                                                 top_k=2))
        assert summary(two) == summary(full)[:2]

    def test_scorers_disagree_but_share_harvest(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=0)
        server.ingest(workload)
        lcv = server.query_video(video_query_for(workload, "vid-00012"))
        dtw = server.query_video(
            video_query_for(workload, "vid-00012", scorer="dtw"))
        assert lcv.harvested == dtw.harvested
        assert all(0.0 <= m.score <= 1.0 for m in lcv.ranked + dtw.ranked)
        # LCV evidence is reported identically under both scorers.
        lcv_runs = {m.video_id: m.lcv for m in lcv.ranked}
        for m in dtw.ranked:
            if m.video_id in lcv_runs:
                assert m.lcv == lcv_runs[m.video_id]

    def test_dynamic_packed_sharded_parity(self, workload):
        vq = video_query_for(workload, "vid-00012")
        camera = CameraModel()
        dynamic = CloudServer(camera, engine="dynamic", cache_size=0)
        packed = CloudServer(camera, engine="packed", cache_size=0)
        dynamic.ingest(workload)
        packed.ingest(workload)
        base = dynamic.query_video(vq)
        assert summary(packed.query_video(vq)) == summary(base)
        assert packed.query_video(vq).harvested == base.harvested
        for n_shards in (1, 2, 4, 8):
            fleet = ShardedCloudServer(camera, n_shards=n_shards,
                                       origin=CITY_ORIGIN, cache_size=0)
            fleet.ingest(workload)
            sharded = fleet.query_video(vq)
            assert summary(sharded) == summary(base)
            assert sharded.harvested == base.harvested

    def test_engine_agnostic_function_form(self, workload):
        """retrieve_videos accepts any query_many callable directly."""
        camera = CameraModel()
        server = CloudServer(camera, engine="packed", cache_size=0)
        server.ingest(workload)
        vq = video_query_for(workload, "vid-00012")
        direct = retrieve_videos(vq, server.query_many, camera)
        assert summary(direct) == summary(server.query_video(vq))


class TestCachingAndStats:
    def test_cache_hit_on_repeat(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=16)
        server.ingest(workload)
        vq = video_query_for(workload, "vid-00012")
        first = server.query_video(vq)
        second = server.query_video(vq)
        assert second is first  # served from the epoch-tagged cache
        assert server.video_stats.queries == 2
        assert server.video_stats.cache_hits == 1
        assert server.video_stats.cache_misses == 1

    def test_ingest_invalidates_cache(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=16)
        server.ingest(workload[:3000])
        vq = video_query_for(workload, "vid-00012")
        first = server.query_video(vq)
        server.ingest(workload[3000:])  # epoch bump
        second = server.query_video(vq)
        assert second is not first
        assert server.video_stats.cache_hits == 0
        assert server.video_stats.cache_misses == 2

    def test_sharded_cache_and_stats(self, workload):
        fleet = ShardedCloudServer(CameraModel(), n_shards=4,
                                   origin=CITY_ORIGIN, cache_size=16)
        fleet.ingest(workload)
        vq = video_query_for(workload, "vid-00012")
        first = fleet.query_video(vq)
        assert fleet.query_video(vq) is first
        assert fleet.video_stats.cache_hits == 1
        assert fleet.video_stats.segments_harvested == first.segments_harvested

    def test_video_metrics_live_on_server_registry(self, workload):
        server = CloudServer(CameraModel(), engine="packed", cache_size=0)
        server.ingest(workload)
        server.query_video(video_query_for(workload, "vid-00012"))
        reg = server.obs.registry
        assert reg.get("video.queries").value == 1
        assert reg.get("video.segments_harvested").value > 0


class TestTracing:
    def test_span_tree_covers_pipeline(self, workload):
        from repro.obs import Observability
        obs = Observability.tracing()
        server = CloudServer(CameraModel(), engine="packed", cache_size=0,
                             obs=obs)
        server.ingest(workload)
        server.query_video(video_query_for(workload, "vid-00012"))
        trace = obs.span_tracer.last_trace()
        names = {span.name for _, span in trace.walk()}
        assert {"video.query", "video.harvest", "video.score",
                "video.rank"} <= names
