"""Unit tests for the sequence scorers (LCV and DTW alignment)."""

import numpy as np
import pytest

from repro.video.scoring import (alignment_score, alignment_score_ref,
                                 lcv_run_length, lcv_run_length_ref,
                                 lcv_score)


class TestLCV:
    def test_identity_matrix_has_full_diagonal_run(self):
        assert lcv_run_length(np.eye(5), 0.5) == 5

    def test_empty_matrix(self):
        assert lcv_run_length(np.zeros((0, 0)), 0.5) == 0
        assert lcv_run_length(np.zeros((3, 0)), 0.5) == 0

    def test_nothing_clears_threshold(self):
        assert lcv_run_length(np.full((4, 4), 0.1), 0.5) == 0

    def test_run_is_diagonal_not_row(self):
        # A full row above threshold is still a run of 1: the common
        # view must advance through BOTH videos in lockstep.
        sim = np.zeros((3, 4))
        sim[1, :] = 0.9
        assert lcv_run_length(sim, 0.5) == 1

    def test_off_main_diagonal_run_found(self):
        # A run starting at (0, 2): videos aligned with a lag.
        sim = np.zeros((4, 6))
        for k in range(3):
            sim[k, k + 2] = 0.8
        assert lcv_run_length(sim, 0.5) == 3

    def test_broken_run_restarts(self):
        diag = np.diag([0.9, 0.9, 0.1, 0.9, 0.9, 0.9])
        assert lcv_run_length(diag, 0.5) == 3

    def test_threshold_is_inclusive(self):
        assert lcv_run_length([[0.5]], 0.5) == 1
        assert lcv_run_length([[0.4999]], 0.5) == 0

    def test_rectangular_both_orientations(self):
        sim = np.zeros((2, 5))
        sim[0, 3] = sim[1, 4] = 1.0
        assert lcv_run_length(sim, 0.5) == 2
        assert lcv_run_length(sim.T, 0.5) == 2

    def test_score_normalises_by_query_length(self):
        sim = np.eye(4)
        assert lcv_score(sim, 0.5) == pytest.approx(1.0)
        assert lcv_score(np.vstack([sim, np.zeros((4, 4))]), 0.5) == \
            pytest.approx(0.5)

    def test_matches_reference_on_random_matrices(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            n, m = rng.integers(1, 12, size=2)
            sim = rng.random((n, m))
            thr = float(rng.random())
            assert lcv_run_length(sim, thr) == lcv_run_length_ref(sim, thr)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            lcv_run_length(np.zeros(4), 0.5)


class TestAlignment:
    def test_single_cell(self):
        assert alignment_score([[0.7]]) == pytest.approx(0.7)

    def test_all_ones_scores_one(self):
        # With every pair fully similar the best path is the longest
        # one -- the 2n-1-cell staircase -- so the normalised score
        # reaches exactly 1.0 (the normaliser is that path length).
        assert alignment_score(np.ones((5, 5))) == pytest.approx(1.0)
        assert alignment_score(np.ones((3, 7))) == pytest.approx(1.0)

    def test_empty_matrix(self):
        assert alignment_score(np.zeros((0, 3))) == 0.0

    def test_bounded_unit_interval(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            n, m = rng.integers(1, 10, size=2)
            s = alignment_score(rng.random((n, m)))
            assert 0.0 <= s <= 1.0

    def test_monotonic_path_cannot_skip_both_ends(self):
        # Mass off the monotone corridor is unreachable: only the
        # corner-to-corner path counts.
        sim = np.zeros((3, 3))
        sim[0, 2] = sim[2, 0] = 1.0  # anti-diagonal corners
        sim[0, 0] = sim[1, 1] = sim[2, 2] = 0.2
        assert alignment_score(sim) == pytest.approx((1.0 + 0.2 + 0.2) / 5)

    def test_bit_identical_to_reference(self):
        rng = np.random.default_rng(29)
        for _ in range(200):
            n, m = rng.integers(1, 14, size=2)
            sim = rng.random((n, m))
            assert alignment_score(sim) == alignment_score_ref(sim)

    def test_row_and_column_vectors(self):
        row = np.array([[0.5, 0.25, 0.125]])
        # Single query segment: the path must traverse the whole row.
        assert alignment_score(row) == pytest.approx((0.5 + 0.25 + 0.125) / 3)
        assert alignment_score(row.T) == alignment_score(row)
