"""Tests for the compass-vs-pixels calibration audit."""

import numpy as np
import pytest

from repro import CameraModel
from repro.vision.calibration import audit_compass
from repro.vision.camera import ColumnRenderer
from repro.vision.world import random_world

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


@pytest.fixture(scope="module")
def pan():
    """A 60-degree pan: frames + the true azimuths."""
    rng = np.random.default_rng(8)
    renderer = ColumnRenderer(random_world(rng), CAMERA, width=240, height=60)
    azimuths = np.arange(0.0, 62.0, 4.0)
    frames = np.stack([renderer.render(0.0, 0.0, float(a)) for a in azimuths])
    return frames, azimuths


class TestAuditCompass:
    def test_healthy_compass_consistent(self, pan):
        frames, az = pan
        report = audit_compass(frames, az, CAMERA)
        assert report.consistent
        assert report.mean_abs_residual_deg < 2.0
        assert report.scale == pytest.approx(1.0, abs=0.1)
        assert report.total_compass_deg == pytest.approx(
            report.total_pixel_deg, abs=8.0)

    def test_constant_bias_is_invisible_to_deltas(self, pan):
        # A pure hard-iron offset shifts every reading equally; the
        # *deltas* still match the pixels, so the audit stays green --
        # documenting exactly what this check can and cannot catch.
        frames, az = pan
        report = audit_compass(frames, az + 37.0, CAMERA)
        assert report.consistent

    def test_scaled_sensor_detected(self, pan):
        # A sensor reporting 1.5x the true rotation rate diverges.
        frames, az = pan
        report = audit_compass(frames, az * 1.5, CAMERA)
        assert not report.consistent
        assert report.scale > 1.2

    def test_jammed_sensor_detected(self, pan):
        frames, az = pan
        report = audit_compass(frames, np.full_like(az, 10.0), CAMERA)
        assert not report.consistent

    def test_noisy_sensor_raises_residuals(self, pan):
        frames, az = pan
        rng = np.random.default_rng(1)
        noisy = az + rng.normal(0.0, 6.0, az.shape)
        report = audit_compass(frames, noisy, CAMERA)
        assert report.mean_abs_residual_deg > \
            audit_compass(frames, az, CAMERA).mean_abs_residual_deg

    def test_validation(self, pan):
        frames, az = pan
        with pytest.raises(ValueError):
            audit_compass(frames[:1], az[:1], CAMERA)
        with pytest.raises(ValueError):
            audit_compass(frames, az[:-1], CAMERA)

    def test_all_steps_out_of_envelope(self, pan):
        frames, _ = pan
        # 90-degree jumps every frame: nothing to audit.
        az = np.arange(frames.shape[0]) * 90.0
        with pytest.raises(ValueError):
            audit_compass(frames, az, CAMERA)
