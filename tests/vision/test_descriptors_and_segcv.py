"""Unit tests for content descriptors, CV segmentation and cost accounting."""

import numpy as np
import pytest

from repro.vision.blockdesc import block_bytes, block_descriptor, block_similarity
from repro.vision.descriptors import measure_descriptor_costs
from repro.vision.frames import render_trajectory, subsample_indices
from repro.vision.histogram import color_histogram, histogram_bytes, histogram_similarity
from repro.vision.segmentation_cv import cv_segment_frames
from repro.vision.camera import ColumnRenderer
from repro.vision.world import random_world
from repro.traces.walkers import rotate_in_place


def noise_frame(rng, shape=(12, 16, 3)):
    return rng.integers(0, 256, shape).astype(np.uint8)


class TestHistogram:
    def test_normalised(self, rng):
        h = color_histogram(noise_frame(rng))
        assert h.sum() == pytest.approx(1.0)
        assert h.shape == (512,)

    def test_self_similarity_one(self, rng):
        f = noise_frame(rng)
        h = color_histogram(f)
        assert histogram_similarity(h, h) == pytest.approx(1.0)

    def test_disjoint_colors_zero(self):
        dark = np.zeros((8, 8, 3), dtype=np.uint8)
        bright = np.full((8, 8, 3), 255, dtype=np.uint8)
        s = histogram_similarity(color_histogram(dark), color_histogram(bright))
        assert s == 0.0

    def test_bins_validation(self, rng):
        with pytest.raises(ValueError):
            color_histogram(noise_frame(rng), bins=1)

    def test_bytes(self):
        assert histogram_bytes(bins=8) == 8**3 * 4


class TestBlockDescriptor:
    def test_shape(self, rng):
        d = block_descriptor(noise_frame(rng), grid=4)
        assert d.shape == (4 * 4 * 3,)

    def test_solid_frame_exact(self):
        f = np.full((16, 16, 3), 77, dtype=np.uint8)
        d = block_descriptor(f, grid=4)
        assert np.allclose(d, 77.0)

    def test_similarity_bounds(self, rng):
        a = block_descriptor(noise_frame(rng))
        b = block_descriptor(noise_frame(rng))
        assert 0.0 <= block_similarity(a, b) <= 1.0
        assert block_similarity(a, a) == 1.0

    def test_grid_validation(self, rng):
        with pytest.raises(ValueError):
            block_descriptor(noise_frame(rng), grid=0)

    def test_bytes(self):
        assert block_bytes(grid=8) == 8 * 8 * 3 * 4


class TestSubsample:
    def test_short_sequence_untouched(self):
        assert np.array_equal(subsample_indices(5, 10), np.arange(5))

    def test_even_spacing(self):
        idx = subsample_indices(100, 10)
        assert idx[0] == 0 and idx[-1] == 99
        assert len(idx) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            subsample_indices(0, 5)
        with pytest.raises(ValueError):
            subsample_indices(5, 0)


class TestCvSegmentation:
    def test_static_sequence_one_segment(self):
        frames = np.broadcast_to(
            np.full((6, 8, 3), 50, dtype=np.uint8), (10, 6, 8, 3)).copy()
        assert cv_segment_frames(frames, threshold=0.9) == [(0, 10)]

    def test_hard_cut_detected(self):
        a = np.full((5, 6, 8, 3), 0, dtype=np.uint8)
        b = np.full((5, 6, 8, 3), 255, dtype=np.uint8)
        frames = np.concatenate([a, b])
        segs = cv_segment_frames(frames, threshold=0.5)
        assert segs == [(0, 5), (5, 10)]

    def test_partition(self, camera, rng):
        world = random_world(rng)
        r = ColumnRenderer(world, camera, width=32, height=24)
        traj = rotate_in_place(rate_deg_s=30, duration_s=12, fps=2)
        frames, _ = render_trajectory(r, traj)
        segs = cv_segment_frames(frames, threshold=0.97)
        assert segs[0][0] == 0 and segs[-1][1] == frames.shape[0]
        for (a, b), (c, d) in zip(segs, segs[1:]):
            assert b == c

    def test_threshold_validated(self):
        frames = np.zeros((3, 4, 4, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            cv_segment_frames(frames, threshold=0.0)


class TestDescriptorCosts:
    def test_orderings_match_paper_claims(self, camera, rng):
        world = random_world(rng)
        r = ColumnRenderer(world, camera, width=64, height=48)
        traj = rotate_in_place(rate_deg_s=30, duration_s=2, fps=2)
        frames, _ = render_trajectory(r, traj)
        costs = {c.name: c for c in measure_descriptor_costs(frames, camera,
                                                             reps=3)}
        # FoV is the smallest descriptor by a wide margin...
        assert costs["fov"].bytes_per_frame < costs["histogram"].bytes_per_frame
        assert costs["fov"].bytes_per_frame < costs["block"].bytes_per_frame
        assert costs["fov"].bytes_per_frame * 100 < costs["frame-diff"].bytes_per_frame
        # ...and its extraction needs no pixels at all.
        assert costs["fov"].extract_us < costs["histogram"].extract_us
        assert costs["fov"].extract_us < costs["block"].extract_us

    def test_requires_two_frames(self, camera):
        with pytest.raises(ValueError):
            measure_descriptor_costs(np.zeros((1, 4, 4, 3), dtype=np.uint8),
                                     camera)
