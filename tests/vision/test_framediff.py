"""Unit tests for frame differencing and friends."""

import numpy as np
import pytest

from repro.vision.framediff import (
    frame_difference_similarity,
    pairwise_frame_similarity,
    sequential_frame_similarity,
)


def solid(value, shape=(8, 10, 3)):
    return np.full(shape, value, dtype=np.uint8)


class TestFrameDifference:
    def test_identical_is_one(self):
        f = solid(100)
        assert frame_difference_similarity(f, f) == 1.0

    def test_opposite_is_zero(self):
        assert frame_difference_similarity(solid(0), solid(255)) == 0.0

    def test_midway(self):
        s = frame_difference_similarity(solid(0), solid(51))
        assert s == pytest.approx(1.0 - 51.0 / 255.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (8, 10, 3)).astype(np.uint8)
        b = rng.integers(0, 256, (8, 10, 3)).astype(np.uint8)
        assert frame_difference_similarity(a, b) == \
            frame_difference_similarity(b, a)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            frame_difference_similarity(solid(0), solid(0, (8, 11, 3)))

    def test_dtype_checked(self):
        with pytest.raises(ValueError):
            frame_difference_similarity(solid(0).astype(float), solid(0))

    def test_no_uint8_wraparound(self):
        # |0 - 255| must be 255, not 1 (int16 promotion inside).
        assert frame_difference_similarity(solid(0), solid(255)) == 0.0


class TestSequential:
    def test_reference_frame_scores_one(self):
        frames = np.stack([solid(0), solid(100), solid(200)])
        out = sequential_frame_similarity(frames)
        assert out[0] == 1.0
        assert out[1] == pytest.approx(1.0 - 100 / 255)

    def test_custom_anchor(self):
        frames = np.stack([solid(0), solid(100)])
        out = sequential_frame_similarity(frames, anchor=1)
        assert out[1] == 1.0

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            sequential_frame_similarity(solid(0))


class TestPairwise:
    def test_matches_scalar(self):
        rng = np.random.default_rng(1)
        frames = rng.integers(0, 256, (7, 6, 5, 3)).astype(np.uint8)
        M = pairwise_frame_similarity(frames, block=3)
        for i in range(7):
            for j in range(7):
                assert M[i, j] == pytest.approx(
                    frame_difference_similarity(frames[i], frames[j]))

    def test_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(2)
        frames = rng.integers(0, 256, (9, 4, 4, 3)).astype(np.uint8)
        M = pairwise_frame_similarity(frames, block=4)
        assert np.allclose(M, M.T)
        assert np.allclose(np.diag(M), 1.0)
