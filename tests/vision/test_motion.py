"""Unit tests for pixel-based rotation estimation."""

import numpy as np
import pytest

from repro import CameraModel
from repro.vision.camera import ColumnRenderer
from repro.vision.motion import (
    column_profile,
    estimate_rotation_deg,
    estimate_shift_px,
)
from repro.vision.world import random_world

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


class TestColumnProfile:
    def test_shape(self):
        frame = np.zeros((10, 32, 3), dtype=np.uint8)
        assert column_profile(frame).shape == (32,)

    def test_luminance_weighting(self):
        green = np.zeros((4, 4, 3), dtype=np.uint8)
        green[..., 1] = 255
        red = np.zeros((4, 4, 3), dtype=np.uint8)
        red[..., 0] = 255
        assert column_profile(green).mean() > column_profile(red).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            column_profile(np.zeros((4, 4), dtype=np.uint8))


class TestEstimateShift:
    def test_zero_shift(self, rng):
        p = rng.uniform(0, 255, 64)
        assert estimate_shift_px(p, p) == 0

    def test_known_shift(self, rng):
        p = rng.uniform(0, 255, 128)
        for s in (3, 10, -7):
            shifted = np.roll(p, -s)
            got = estimate_shift_px(p, shifted, max_shift=20)
            assert got == s

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_shift_px(np.zeros(8), np.zeros(9))


class TestEstimateRotation:
    @pytest.fixture
    def renderer(self, rng):
        return ColumnRenderer(random_world(rng), CAMERA, width=240,
                              height=60)

    def test_no_rotation(self, renderer):
        a = renderer.render(0.0, 0.0, 45.0)
        assert abs(estimate_rotation_deg(a, a, CAMERA)) < 0.5

    @pytest.mark.parametrize("true_rot", [5.0, 12.0, -8.0, 15.0])
    def test_recovers_rotation(self, renderer, true_rot):
        a = renderer.render(0.0, 0.0, 90.0)
        b = renderer.render(0.0, 0.0, 90.0 + true_rot)
        est = estimate_rotation_deg(a, b, CAMERA)
        assert est == pytest.approx(true_rot, abs=1.5)

    def test_cross_validates_compass(self, renderer):
        """Pixel-estimated rotation tracks the compass-reported azimuth
        change over a panning sequence -- the FoV/CV consistency check."""
        azimuths = [0.0, 7.0, 15.0, 24.0, 30.0]
        frames = [renderer.render(0.0, 0.0, a) for a in azimuths]
        for (a0, f0), (a1, f1) in zip(zip(azimuths, frames),
                                      zip(azimuths[1:], frames[1:])):
            est = estimate_rotation_deg(f0, f1, CAMERA)
            assert est == pytest.approx(a1 - a0, abs=2.0)

    def test_shape_mismatch_rejected(self, renderer):
        a = renderer.render(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            estimate_rotation_deg(a, a[:, :100], CAMERA)
