"""Unit tests for line-of-sight and occlusion-aware coverage."""

import numpy as np
import pytest

from repro import CameraModel
from repro.vision.occlusion import line_of_sight, visible_coverage
from repro.vision.world import Landmark, World

CAMERA = CameraModel(half_angle=30.0, radius=100.0)


def wall_world():
    """One fat pillar at (0, 50)."""
    return World([Landmark(0.0, 50.0, 5.0, (100, 100, 100), height=20.0)])


class TestLineOfSight:
    def test_empty_world_clear(self):
        assert line_of_sight(World([]), (0, 0), (0, 100))

    def test_blocked_by_pillar(self):
        assert not line_of_sight(wall_world(), (0.0, 0.0), (0.0, 100.0))

    def test_clear_around_pillar(self):
        assert line_of_sight(wall_world(), (0.0, 0.0), (30.0, 100.0))

    def test_target_in_front_of_pillar_visible(self):
        assert line_of_sight(wall_world(), (0.0, 0.0), (0.0, 40.0))

    def test_target_behind_pillar_blocked(self):
        assert not line_of_sight(wall_world(), (0.0, 0.0), (0.0, 60.0))

    def test_target_on_landmark_surface_visible(self):
        # Endpoint inside the landmark does not count as blocked.
        assert line_of_sight(wall_world(), (0.0, 0.0), (0.0, 46.0))

    def test_camera_next_to_wall_sees_along(self):
        assert line_of_sight(wall_world(), (0.0, 47.0), (0.0, 10.0))

    def test_zero_length_segment(self):
        assert line_of_sight(wall_world(), (0.0, 50.0), (0.0, 50.0))

    def test_clearance_widens_obstacles(self):
        # Ray passing 6 m from the pillar centre: clear at radius 5,
        # blocked with 2 m clearance.
        assert line_of_sight(wall_world(), (6.0, 0.0), (6.0, 100.0))
        assert not line_of_sight(wall_world(), (6.0, 0.0), (6.0, 100.0),
                                 clearance=2.0)

    def test_symmetry(self, rng):
        world = World([
            Landmark(float(x), float(y), 2.0, (50, 50, 50))
            for x, y in rng.uniform(-50, 50, (20, 2))
        ])
        for _ in range(20):
            a = rng.uniform(-60, 60, 2)
            b = rng.uniform(-60, 60, 2)
            assert line_of_sight(world, a, b) == line_of_sight(world, b, a)


class TestVisibleCoverage:
    def test_occlusion_subset_of_geometry(self, rng):
        from repro.geometry.sector import sector_contains_points
        from repro.vision.world import random_world
        world = random_world(rng, n_landmarks=60, extent_m=200.0)
        apexes = rng.uniform(-80, 80, (6, 2))
        azimuths = rng.uniform(0, 360, 6)
        points = rng.uniform(-80, 80, (15, 2))
        vis = visible_coverage(world, apexes, azimuths, CAMERA, points)
        geo = sector_contains_points(apexes, azimuths, CAMERA.half_angle,
                                     CAMERA.radius, points)
        assert np.all(~vis | geo), "visible implies geometrically covered"

    def test_blocked_pair_excluded(self):
        world = wall_world()
        apex = np.array([[0.0, 0.0]])
        az = np.array([0.0])
        pts = np.array([[0.0, 80.0],    # behind the pillar: blocked
                        [20.0, 60.0]])  # off to the side: visible
        vis = visible_coverage(world, apex, az, CAMERA, pts)
        assert not vis[0, 0]
        assert vis[0, 1]

    def test_groundtruth_world_parameter(self, camera):
        """Occlusion-aware relevant set is a subset of the geometric one."""
        from repro.eval.groundtruth import relevant_segments
        from repro.traces.dataset import CityDataset
        from repro.vision.world import random_world
        city = CityDataset(n_providers=6, seed=14)
        rng = np.random.default_rng(3)
        ex, ey = city.grid.extent_m
        world = random_world(rng, extent_m=max(ex, ey), n_landmarks=300,
                             center=(ex / 2, ey / 2))
        window = city.time_span()
        subset_seen = False
        for _ in range(6):
            qp = city.random_query_point(rng)
            xy = city.projection.to_local_arrays([qp.lat], [qp.lng])[0]
            geo = relevant_segments(city, xy, window)
            vis = relevant_segments(city, xy, window, world=world)
            assert vis <= geo
            if vis < geo:
                subset_seen = True
        # In a 300-pillar city at least one query should lose a segment
        # to occlusion.
        assert subset_seen
