"""Unit tests for the ray-cast column renderer."""

import numpy as np
import pytest

from repro import CameraModel
from repro.vision.camera import ColumnRenderer
from repro.vision.world import Landmark, World


def single_pillar_world(x=0.0, y=50.0, radius=3.0, color=(255, 0, 0)):
    return World([Landmark(x, y, radius, color, height=20.0)])


@pytest.fixture
def renderer(camera):
    return ColumnRenderer(single_pillar_world(), camera, width=80, height=60)


class TestColumnHits:
    def test_pillar_straight_ahead(self, renderer):
        dist, idx = renderer.column_hits(0.0, 0.0, 0.0)
        centre = renderer.width // 2
        assert idx[centre] == 0
        assert dist[centre] == pytest.approx(47.0, abs=0.5)  # 50 - radius

    def test_pillar_behind_misses(self, renderer):
        dist, idx = renderer.column_hits(0.0, 0.0, 180.0)
        assert np.all(idx == -1)
        assert np.all(np.isinf(dist))

    def test_pillar_beyond_radius_of_view(self, camera):
        w = single_pillar_world(y=150.0)   # beyond R = 100
        r = ColumnRenderer(w, camera, width=40, height=30)
        _, idx = r.column_hits(0.0, 0.0, 0.0)
        assert np.all(idx == -1)

    def test_nearest_of_two_wins(self, camera):
        w = World([
            Landmark(0.0, 80.0, 3.0, (0, 255, 0), height=20.0),
            Landmark(0.0, 40.0, 3.0, (255, 0, 0), height=20.0),
        ])
        r = ColumnRenderer(w, camera, width=40, height=30)
        dist, idx = r.column_hits(0.0, 0.0, 0.0)
        centre = r.width // 2
        assert idx[centre] == 1   # the nearer red pillar

    def test_camera_inside_landmark_not_hit_backwards(self, camera):
        # Entry distance must be positive: looking away from a pillar
        # whose circle is behind the apex must not register.
        w = single_pillar_world(y=-10.0)
        r = ColumnRenderer(w, camera, width=20, height=16)
        _, idx = r.column_hits(0.0, 0.0, 0.0)
        assert np.all(idx == -1)


class TestRender:
    def test_shape_and_dtype(self, renderer):
        frame = renderer.render(0.0, 0.0, 0.0)
        assert frame.shape == (60, 80, 3)
        assert frame.dtype == np.uint8

    def test_pillar_paints_red(self, renderer):
        frame = renderer.render(0.0, 0.0, 0.0)
        centre_col = frame[:, 40, :]
        reds = centre_col[:, 0].astype(int) - centre_col[:, 1].astype(int)
        assert reds.max() > 50   # strongly red somewhere in the column

    def test_rotation_shifts_content(self, renderer):
        a = renderer.render(0.0, 0.0, 0.0)
        b = renderer.render(0.0, 0.0, 15.0)
        assert not np.array_equal(a, b)

    def test_same_pose_deterministic(self, renderer):
        assert np.array_equal(renderer.render(1.0, 2.0, 3.0),
                              renderer.render(1.0, 2.0, 3.0))

    def test_approaching_grows_pillar(self, camera):
        w = single_pillar_world(y=80.0)
        r = ColumnRenderer(w, camera, width=60, height=60)
        far = r.render(0.0, 0.0, 0.0)
        near = r.render(0.0, 50.0, 0.0)

        def red_pixels(f):
            return int(np.sum(f[..., 0].astype(int) - f[..., 1] > 40))

        assert red_pixels(near) > red_pixels(far) > 0

    def test_empty_world_is_background(self, camera):
        r = ColumnRenderer(World([]), camera, width=20, height=16)
        frame = r.render(0.0, 0.0, 0.0)
        # Top rows are sky-ish blue: B > R.
        assert (frame[0, :, 2] > frame[0, :, 0]).all()

    def test_minimum_size_enforced(self, camera):
        with pytest.raises(ValueError):
            ColumnRenderer(World([]), camera, width=4, height=100)
