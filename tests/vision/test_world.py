"""Unit tests for the synthetic world."""

import numpy as np
import pytest

from repro.vision.world import Landmark, World, random_world


class TestLandmark:
    def test_validation(self):
        with pytest.raises(ValueError):
            Landmark(0, 0, radius=0.0, color=(1, 2, 3))
        with pytest.raises(ValueError):
            Landmark(0, 0, radius=1.0, color=(1, 2, 3), height=0.0)
        with pytest.raises(ValueError):
            Landmark(0, 0, radius=1.0, color=(300, 0, 0))
        with pytest.raises(ValueError):
            Landmark(0, 0, radius=1.0, color=(1, 2))


class TestWorld:
    def test_columnar_arrays(self):
        w = World([Landmark(1, 2, 3, (10, 20, 30), height=5.0)])
        assert len(w) == 1
        assert np.allclose(w.centers, [[1, 2]])
        assert np.allclose(w.radii, [3])
        assert np.allclose(w.colors, [[10, 20, 30]])
        assert np.allclose(w.heights, [5.0])

    def test_empty_world_supported(self):
        w = World([])
        assert len(w) == 0
        assert w.centers.shape == (0, 2)


class TestRandomWorld:
    def test_count_and_bounds(self, rng):
        w = random_world(rng, extent_m=100.0, n_landmarks=50,
                         center=(10.0, -5.0))
        assert len(w) == 50
        assert np.all(np.abs(w.centers - [10.0, -5.0]) <= 50.0)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            random_world(rng, n_landmarks=0)

    def test_reproducible(self):
        a = random_world(np.random.default_rng(5), n_landmarks=10)
        b = random_world(np.random.default_rng(5), n_landmarks=10)
        assert np.allclose(a.centers, b.centers)
        assert np.allclose(a.colors, b.colors)
