#!/usr/bin/env python3
"""Diff freshly-generated ``BENCH_*.json`` summaries against HEAD.

The benchmark suite writes one trajectory file per figure at the repo
root (``benchmarks/conftest.py::bench_export``); CI regenerates them
and this script compares each metric against the committed values,
emitting a GitHub ``::warning`` annotation for any that moved more
than the threshold in the *bad* direction.  The direction comes from
the naming convention the exports already follow:

* keys ending ``_s`` are durations -- lower is better;
* keys ending ``_x`` are speedups/ratios-over-baseline -- higher is
  better;
* keys ending in a rate suffix (``_mb_s``, ``_bundles_s``) are
  throughputs -- higher is better, despite the trailing ``_s``;
* keys ending ``_p50`` / ``_p99`` / ``_p999`` are latency percentiles
  (the city-scale harness exports) -- lower is better;
* everything else (counts, workload shape, schema stamps) is
  informational and never warned about.

The script is advisory by design: benchmark machines are noisy, so a
regression prints a warning on the PR and **always exits 0** -- the
hard perf gates live inside the benchmarks themselves.  Exit 2 is
reserved for operational errors (not a git checkout, unreadable
JSON), which should fail the step loudly rather than masquerade as a
clean diff.

Usage::

    python tools/analysis/bench_diff.py                  # all BENCH_*.json
    python tools/analysis/bench_diff.py --threshold 0.3 BENCH_foo.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

# Suffix -> (direction, human label).  Longest matching suffix wins,
# independent of table order, so the rate suffixes (whose names still
# end in "_s", units per second) can never be misread as durations by
# a reordered check.  Keys matching no suffix -- bare counters like
# ``faulty_retries`` or ``bundles`` -- are informational and skipped.
SUFFIX_RULES: dict[str, tuple[str, str]] = {
    "_s": ("lower", "slower"),
    "_x": ("higher", "less speedup"),
    "_mb_s": ("higher", "lower throughput"),
    "_bundles_s": ("higher", "lower throughput"),
    "_records_s": ("higher", "lower throughput"),
    # Latency percentiles: longest-suffix precedence keeps these
    # unambiguous ("x_p999" does not end with "_p99").
    "_p50": ("lower", "slower (p50)"),
    "_p99": ("lower", "slower (p99)"),
    "_p999": ("lower", "slower (p999)"),
}


def classify_key(key: str) -> tuple[str, str] | None:
    """``(direction, regression label)`` for a metric key, or ``None``
    when the key carries no perf direction (counts, stamps, strings).

    Precedence is by suffix *length*: ``decode_mb_s`` matches both
    ``_mb_s`` and ``_s``, and the longer, more specific rate suffix
    wins no matter how the table is ordered.
    """
    best: tuple[str, str] | None = None
    best_len = 0
    for suffix, rule in SUFFIX_RULES.items():
        if key.endswith(suffix) and len(suffix) > best_len:
            best, best_len = rule, len(suffix)
    return best


def committed_version(path: Path) -> dict | None:
    """The file's JSON content at HEAD, or None when new/untracked."""
    rel = path.resolve().relative_to(_REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "-C", str(_REPO_ROOT), "show", f"HEAD:{rel}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def regressions(old: dict, new: dict, threshold: float
                ) -> list[tuple[str, float, float, float]]:
    """``(key, old, new, fractional change for the worse)`` rows."""
    out: list[tuple[str, float, float, float]] = []
    for key, new_value in sorted(new.items()):
        if not isinstance(new_value, (int, float)) or isinstance(
                new_value, bool):
            continue
        old_value = old.get(key)
        if not isinstance(old_value, (int, float)) or isinstance(
                old_value, bool) or old_value == 0:
            continue
        rule = classify_key(key)
        if rule is None:
            continue
        direction, _label = rule
        if direction == "higher":
            worse = (old_value - new_value) / old_value
        else:
            worse = (new_value - old_value) / old_value
        if worse > threshold:
            out.append((key, float(old_value), float(new_value), worse))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff",
        description="warn (never fail) on BENCH_*.json perf regressions "
                    "versus the committed values at HEAD")
    parser.add_argument("files", nargs="*", metavar="BENCH_JSON",
                        help="summary files to diff "
                             "(default: BENCH_*.json at the repo root)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        metavar="FRAC",
                        help="fractional change for the worse that "
                             "triggers a warning (default: 0.20)")
    args = parser.parse_args(argv)

    paths = ([Path(f) for f in args.files] if args.files
             else sorted(_REPO_ROOT.glob("BENCH_*.json")))
    if not paths:
        print("bench_diff: no BENCH_*.json summaries found")
        return 0

    warned = 0
    for path in paths:
        try:
            new = json.loads(path.read_text(encoding="utf-8"))
            old = committed_version(path)
        except (OSError, ValueError) as exc:
            print(f"bench_diff: error: {path}: {exc}")
            return 2
        if old is None:
            print(f"bench_diff: {path.name}: no committed baseline "
                  f"(new file?), skipping")
            continue
        rows = regressions(old, new, args.threshold)
        for key, old_value, new_value, worse in rows:
            _direction, label = classify_key(key)
            print(f"::warning file={path.name}::{path.name}: {key} "
                  f"{old_value:.6g} -> {new_value:.6g} "
                  f"({worse * 100.0:.0f}% {label})")
        warned += len(rows)
        if not rows:
            print(f"bench_diff: {path.name}: within "
                  f"{args.threshold * 100.0:.0f}% of HEAD")
    print(f"bench_diff: {warned} metric(s) regressed beyond "
          f"{args.threshold * 100.0:.0f}% across {len(paths)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
