#!/usr/bin/env python3
"""Standalone launcher for the FoV domain lint rules (RF001-RF015).

The real engine lives in :mod:`repro.analysis` (inside ``src/``), where
it is importable, typed, and unit-tested; this shim only bootstraps
``sys.path`` so the linter runs from a bare checkout without an
editable install::

    python tools/analysis/fovlint.py src/repro
    python tools/analysis/fovlint.py --select RF009 --select RF010 src
    python tools/analysis/fovlint.py --baseline tools/analysis/baseline.json \
        --format sarif src/repro > fovlint.sarif

Exit codes: 0 clean, 1 findings at/above the severity threshold,
2 usage/parse error.  Equivalent to ``repro-fov lint`` once the
package is installed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and delegate to :func:`repro.analysis.run_lint`."""
    parser = argparse.ArgumentParser(
        prog="fovlint",
        description="Domain-aware static analysis for the FoV retrieval "
                    "codebase: per-file rules (degree/radian misuse, "
                    "lat/lng order, __all__ drift, mutable defaults, "
                    "nondeterminism, scalar/array normalisation, wire "
                    "unpacking, metric-name literals) plus whole-program "
                    "concurrency rules (lock discipline, lock-order "
                    "cycles, epoch protocol, blocking-under-lock, "
                    "instrument-catalog drift, unjoined workers) and the "
                    "hot-path vectorisation ratchet.",
    )
    parser.add_argument("paths", nargs="*", default=[str(_SRC / "repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--select", action="append", metavar="RFxxx",
                        help="run only these rule ids (repeatable)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="lint_format",
                        help="report format (sarif for CI annotation)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="subtract known findings recorded in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        dest="write_baseline",
                        help="snapshot current findings to FILE and exit 0")
    parser.add_argument("--severity-threshold",
                        choices=("warning", "error"), default="warning",
                        dest="severity_threshold",
                        help="exit 1 only for findings at or above this "
                             "severity (default: warning)")
    args = parser.parse_args(argv)

    from repro.analysis import run_lint
    return run_lint(args.paths, select=args.select,
                    output_format=args.lint_format,
                    baseline=args.baseline,
                    write_baseline_to=args.write_baseline,
                    severity_threshold=args.severity_threshold,
                    root=_REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
