#!/usr/bin/env python3
"""Standalone launcher for the FoV domain lint rules (RF001-RF006).

The real engine lives in :mod:`repro.analysis` (inside ``src/``), where
it is importable, typed, and unit-tested; this shim only bootstraps
``sys.path`` so the linter runs from a bare checkout without an
editable install::

    python tools/analysis/fovlint.py src/repro
    python tools/analysis/fovlint.py --select RF001 --select RF005 src

Exit codes: 0 clean, 1 violations found, 2 usage/parse error.
Equivalent to ``repro-fov lint`` once the package is installed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and delegate to :func:`repro.analysis.run_lint`."""
    parser = argparse.ArgumentParser(
        prog="fovlint",
        description="Domain-aware static analysis for the FoV retrieval "
                    "codebase (degree/radian misuse, lat/lng order, "
                    "__all__ drift, mutable defaults, nondeterminism, "
                    "scalar/array normalisation).",
    )
    parser.add_argument("paths", nargs="*", default=[str(_SRC / "repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--select", action="append", metavar="RFxxx",
                        help="run only these rule ids (repeatable)")
    args = parser.parse_args(argv)

    from repro.analysis import run_lint
    return run_lint(args.paths, select=args.select)


if __name__ == "__main__":
    raise SystemExit(main())
